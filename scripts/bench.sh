#!/usr/bin/env bash
# Benchmark runner: criterion micro benches plus the hot-path JSON baseline.
#
# Usage:
#   scripts/bench.sh [criterion-args...]
#   scripts/bench.sh --quick
#
# Examples:
#   scripts/bench.sh                       # all benches + BENCH_hotpath.json
#   scripts/bench.sh micro_hotpath         # only benchmarks matching the filter
#   scripts/bench.sh --quick               # CI gate: quick-scale hotpath JSON
#                                          # to a temp file + schema validation
#                                          # + end-to-end regression tolerance
#                                          # vs the committed baseline
#   CRITERION_JSON=out.ndjson scripts/bench.sh   # also dump raw ndjson records
#
# Environment:
#   LSQCA_BENCH_TOLERANCE   fractional end-to-end regression allowed by
#                           --quick before failing (default 0.25, i.e. >25%
#                           slower than BENCH_hotpath.json fails). The gate is
#                           machine-independent: both the baseline and the
#                           fresh report carry a calibration measurement (the
#                           frozen legacy BFS) taken in the same run, and the
#                           comparison is on ns_per_instruction/calibration
#                           *ratios*, so a slower CI runner shifts both sides
#                           equally. If the baseline predates the calibration
#                           field, the gate falls back to absolute
#                           ns/instruction with a warning.
#
# Outputs:
#   BENCH_hotpath.json   stable-schema (lsqca-bench-hotpath-v1) baseline with
#                        legacy-vs-optimized speedups and absolute simulator
#                        throughput, written at the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

# Benchmarks measure simulation, so the crash-safe result store must not short
# circuit it: a warm store would turn every timed sweep into a disk read and
# report nonsense speedups. The workload cache stays on — compilation is not
# what the benches time.
export LSQCA_NO_STORE=1

# Validates that a hotpath JSON document carries the lsqca-bench-hotpath-v1
# schema with every expected comparison and end-to-end section.
validate_hotpath_json() {
  local file="$1"
  local ok=0
  for needle in \
    '"schema": "lsqca-bench-hotpath-v1"' \
    '"comparisons"' \
    '"end_to_end"' \
    '"operand_extraction"' \
    '"residence_lookup"' \
    '"nearest_vacant"' \
    '"relocate"' \
    '"ring_removal"' \
    '"vacant_path"' \
    '"latency_class"' \
    '"trace_lowering"' \
    '"trace_dispatch"' \
    '"snapshot_fork"' \
    '"snapshot_fork_scaling"' \
    '"calibration_ns_per_op"' \
    '"ns_per_instruction"'; do
    if ! grep -qF "$needle" "$file"; then
      echo "error: $file is missing $needle (schema lsqca-bench-hotpath-v1)" >&2
      ok=1
    fi
  done
  return "$ok"
}

# Validates that a metrics document carries the lsqca-metrics-v1 schema with
# the core lifecycle counters (compile, lower, warm, fork, execute, store).
validate_metrics_json() {
  local file="$1"
  local ok=0
  for needle in \
    '"schema": "lsqca-metrics-v1"' \
    '"counters"' \
    '"gauges"' \
    '"histograms"' \
    '"trace.lowered"' \
    '"sim.warmed"' \
    '"sim.forked"' \
    '"sim.runs"' \
    '"workload_cache.compiled"' \
    '"result_store.computed"'; do
    if ! grep -qF "$needle" "$file"; then
      echo "error: $file is missing $needle (schema lsqca-metrics-v1)" >&2
      ok=1
    fi
  done
  return "$ok"
}

# Extracts `<floorplan>\t<ns_per_instruction>` lines from a hotpath JSON
# document's end_to_end section (the pretty-printed lsqca-json layout).
extract_end_to_end() {
  awk '
    /"floorplan":/ {
      line = $0
      sub(/.*"floorplan": *"/, "", line)
      sub(/".*/, "", line)
      floorplan = line
    }
    /"ns_per_instruction":/ {
      line = $0
      sub(/.*"ns_per_instruction": */, "", line)
      sub(/,.*/, "", line)
      if (floorplan != "") {
        printf "%s\t%s\n", floorplan, line
        floorplan = ""
      }
    }
  ' "$1"
}

# Extracts the same-machine calibration measurement from a hotpath JSON
# document; empty when the document predates the field.
extract_calibration() {
  awk '
    /"calibration_ns_per_op":/ {
      line = $0
      sub(/.*"calibration_ns_per_op": */, "", line)
      sub(/,.*/, "", line)
      print line
      exit
    }
  ' "$1"
}

# Asserts the copy-on-write fork contract: the snapshot_fork_scaling
# comparison times the same fork on a 64x smaller machine (its "legacy" side)
# and on the large one (its "optimized" side), so the reported speedup must
# sit near 1.0 — fork cost is O(pages), independent of qubit count and grid
# size. The bounds are generous to absorb timer noise on sub-microsecond
# operations.
check_fork_scaling() {
  local file="$1"
  local speedup
  speedup="$(awk '
    /"name": "snapshot_fork_scaling"/ { found = 1 }
    found && /"speedup":/ {
      line = $0
      sub(/.*"speedup": */, "", line)
      sub(/,.*/, "", line)
      print line
      exit
    }
  ' "$file")"
  if [[ -z "$speedup" ]]; then
    echo "error: $file is missing the snapshot_fork_scaling comparison" >&2
    return 1
  fi
  if awk -v s="$speedup" 'BEGIN { exit !(s < 0.2 || s > 5.0) }'; then
    echo "error: snapshot_fork_scaling ratio ${speedup} outside [0.2, 5.0]: fork cost scales with machine size" >&2
    return 1
  fi
  echo "  snapshot_fork_scaling: small/large fork ratio ${speedup} in [0.2, 5.0] (fork is O(1)) OK"
}

# Fails if any end-to-end measurement in $2 regressed more than the tolerance
# fraction against the committed baseline $1. Both reports carry a
# calibration measurement taken in the same run, and the gate compares
# ns_per_instruction/calibration ratios, so the result does not depend on the
# absolute speed of the machine the baseline was recorded on.
check_regression() {
  local baseline="$1" fresh="$2"
  local tolerance="${LSQCA_BENCH_TOLERANCE:-0.25}"
  local ok=0
  local base_cal fresh_cal
  base_cal="$(extract_calibration "$baseline")"
  fresh_cal="$(extract_calibration "$fresh")"
  if [[ -z "$base_cal" || -z "$fresh_cal" ]]; then
    echo "warning: calibration missing from baseline; falling back to absolute ns/instruction" >&2
    base_cal=1
    fresh_cal=1
  else
    echo "  calibration: fresh ${fresh_cal} ns/op vs baseline ${base_cal} ns/op (gating on ratios)"
  fi
  while IFS=$'\t' read -r floorplan base_ns; do
    local fresh_ns
    fresh_ns="$(extract_end_to_end "$fresh" | awk -F'\t' -v fp="$floorplan" '$1 == fp { print $2 }')"
    if [[ -z "$fresh_ns" ]]; then
      echo "error: fresh report is missing end-to-end entry for '$floorplan'" >&2
      ok=1
      continue
    fi
    if awk -v base="$base_ns" -v fresh="$fresh_ns" \
         -v bcal="$base_cal" -v fcal="$fresh_cal" -v tol="$tolerance" \
         'BEGIN { exit !((fresh / fcal) > (base / bcal) * (1 + tol)) }'; then
      echo "error: end-to-end regression on '$floorplan': ${fresh_ns} ns/instruction (calibration ${fresh_cal}) vs baseline ${base_ns} (calibration ${base_cal}, tolerance ${tolerance})" >&2
      ok=1
    else
      echo "  ${floorplan}: ${fresh_ns} ns/instruction (baseline ${base_ns}) OK"
    fi
  done < <(extract_end_to_end "$baseline")
  return "$ok"
}

if [[ "${1:-}" == "--quick" ]]; then
  # CI gate mode: build, emit the quick-scale hotpath report to a temp file
  # (the committed BENCH_hotpath.json baseline is left untouched), validate
  # its schema, and fail on an end-to-end throughput regression beyond the
  # tolerance.
  echo "== building (release, quick gate) =="
  cargo build --release -p lsqca-bench
  out="$(mktemp /tmp/lsqca-hotpath-XXXXXX.json)"
  metrics="$(mktemp /tmp/lsqca-metrics-XXXXXX.json)"
  echo "== quick-scale hotpath report =="
  # `--metrics-out` exports the registry without enabling spans or beat
  # attribution, so the timed end-to-end section below still measures the
  # disabled-telemetry path — the regression gate against the committed
  # baseline therefore doubles as the telemetry-overhead gate: if the
  # disabled path stopped being free, Point #SAM=1 ns/instruction drifts
  # past the tolerance and this script fails.
  ./target/release/experiments hotpath --json --metrics-out "$metrics" > "$out"
  validate_hotpath_json "$out"
  echo "schema lsqca-bench-hotpath-v1 OK: $out"
  echo "== metrics artifact schema =="
  validate_metrics_json "$metrics"
  echo "schema lsqca-metrics-v1 OK: $metrics"
  echo "== snapshot-fork O(1) gate =="
  check_fork_scaling "$out"
  if [[ -f BENCH_hotpath.json ]]; then
    echo "== end-to-end regression gate (tolerance ${LSQCA_BENCH_TOLERANCE:-0.25}) =="
    if ! check_regression BENCH_hotpath.json "$out"; then
      # Shared runners see CPU-contention bursts long enough to poison a
      # whole median-of-samples window. A genuine regression reproduces on a
      # fresh measurement; a burst almost never spans two full runs.
      echo "== regression reported; re-measuring once to rule out a noise burst =="
      retry="$(mktemp /tmp/lsqca-hotpath-XXXXXX.json)"
      ./target/release/experiments hotpath --json > "$retry"
      validate_hotpath_json "$retry"
      check_regression BENCH_hotpath.json "$retry"
    fi
  else
    echo "warning: no committed BENCH_hotpath.json baseline; skipping regression gate" >&2
  fi
  exit 0
fi

echo "== building (release) =="
cargo build --release --workspace

echo "== criterion micro benches =="
# Forward any arguments (e.g. a name filter) to the bench harness.
cargo bench -p lsqca-bench "$@"

echo "== hot-path baseline =="
# Validate into a temp file first so a schema regression cannot clobber the
# committed baseline.
tmp="$(mktemp /tmp/lsqca-hotpath-XXXXXX.json)"
./target/release/experiments hotpath --json > "$tmp"
validate_hotpath_json "$tmp"
check_fork_scaling "$tmp"
mv "$tmp" BENCH_hotpath.json
echo "wrote BENCH_hotpath.json:"
./target/release/experiments hotpath
