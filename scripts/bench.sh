#!/usr/bin/env bash
# Benchmark runner: criterion micro benches plus the hot-path JSON baseline.
#
# Usage:
#   scripts/bench.sh [criterion-args...]
#   scripts/bench.sh --quick
#
# Examples:
#   scripts/bench.sh                       # all benches + BENCH_hotpath.json
#   scripts/bench.sh micro_hotpath         # only benchmarks matching the filter
#   scripts/bench.sh --quick               # CI smoke: quick-scale hotpath JSON
#                                          # to a temp file + schema validation
#   CRITERION_JSON=out.ndjson scripts/bench.sh   # also dump raw ndjson records
#
# Outputs:
#   BENCH_hotpath.json   stable-schema (lsqca-bench-hotpath-v1) baseline with
#                        legacy-vs-optimized speedups and absolute simulator
#                        throughput, written at the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

# Validates that a hotpath JSON document carries the lsqca-bench-hotpath-v1
# schema with every expected comparison and end-to-end section.
validate_hotpath_json() {
  local file="$1"
  local ok=0
  for needle in \
    '"schema": "lsqca-bench-hotpath-v1"' \
    '"comparisons"' \
    '"end_to_end"' \
    '"operand_extraction"' \
    '"residence_lookup"' \
    '"nearest_vacant"' \
    '"relocate"' \
    '"vacant_path"' \
    '"latency_class"' \
    '"ns_per_instruction"'; do
    if ! grep -qF "$needle" "$file"; then
      echo "error: $file is missing $needle (schema lsqca-bench-hotpath-v1)" >&2
      ok=1
    fi
  done
  return "$ok"
}

if [[ "${1:-}" == "--quick" ]]; then
  # CI smoke mode: build, emit the quick-scale hotpath report to a temp file
  # (the committed BENCH_hotpath.json baseline is left untouched), and
  # validate its schema.
  echo "== building (release, quick smoke) =="
  cargo build --release -p lsqca-bench
  out="$(mktemp /tmp/lsqca-hotpath-XXXXXX.json)"
  echo "== quick-scale hotpath report =="
  ./target/release/experiments hotpath --json > "$out"
  validate_hotpath_json "$out"
  echo "schema lsqca-bench-hotpath-v1 OK: $out"
  exit 0
fi

echo "== building (release) =="
cargo build --release --workspace

echo "== criterion micro benches =="
# Forward any arguments (e.g. a name filter) to the bench harness.
cargo bench -p lsqca-bench "$@"

echo "== hot-path baseline =="
# Validate into a temp file first so a schema regression cannot clobber the
# committed baseline.
tmp="$(mktemp /tmp/lsqca-hotpath-XXXXXX.json)"
./target/release/experiments hotpath --json > "$tmp"
validate_hotpath_json "$tmp"
mv "$tmp" BENCH_hotpath.json
echo "wrote BENCH_hotpath.json:"
./target/release/experiments hotpath
