#!/usr/bin/env bash
# Benchmark runner: criterion micro benches plus the hot-path JSON baseline.
#
# Usage:
#   scripts/bench.sh [criterion-args...]
#
# Examples:
#   scripts/bench.sh                       # all benches + BENCH_hotpath.json
#   scripts/bench.sh micro_hotpath         # only benchmarks matching the filter
#   CRITERION_JSON=out.ndjson scripts/bench.sh   # also dump raw ndjson records
#
# Outputs:
#   BENCH_hotpath.json   stable-schema (lsqca-bench-hotpath-v1) baseline with
#                        legacy-vs-optimized speedups and absolute simulator
#                        throughput, written at the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --release --workspace

echo "== criterion micro benches =="
# Forward any arguments (e.g. a name filter) to the bench harness.
cargo bench -p lsqca-bench "$@"

echo "== hot-path baseline =="
./target/release/experiments hotpath --json > BENCH_hotpath.json
echo "wrote BENCH_hotpath.json:"
./target/release/experiments hotpath
