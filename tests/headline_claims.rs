//! Shape checks for the paper's headline claims.
//!
//! The substrate here is a from-scratch simulator, not the authors' testbed, so
//! exact numbers are not expected to match — but the qualitative shape must:
//! LSQCA reaches ~85–100% memory density (vs the 50% baseline) while the
//! execution-time overhead stays small whenever a magic-state bottleneck exists.

use lsqca::experiment::{ExperimentConfig, HotSetStrategy, Workload};
use lsqca::prelude::*;
use lsqca::workloads::{select_heisenberg, shift_add_multiplier, MultiplierConfig, SelectConfig};

/// Multiplier claim (Sec. VI-B): line SAM with one bank reaches ≈87% density
/// (the paper computes 400/462) at a modest execution-time overhead with a
/// single magic-state factory.
#[test]
fn multiplier_line_sam_headline_density_and_overhead() {
    // Full 400-qubit register file; the partial-product cap shortens the
    // circuit without changing the density accounting or the access structure.
    let config = MultiplierConfig {
        operand_bits: 100,
        partial_products: Some(20),
    };
    let workload = Workload::from_circuit(shift_add_multiplier(config));
    let lsqca_cfg = ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 1);
    let (lsqca, baseline) = workload.run_with_baseline(&lsqca_cfg);

    // Density: the paper reports 400/462 ≈ 86.6%.
    assert!(
        (lsqca.memory_density - 400.0 / 462.0).abs() < 0.02,
        "multiplier line-SAM density {:.3} should be ≈ 0.866",
        lsqca.memory_density
    );
    assert!((baseline.memory_density - 0.5).abs() < 1e-9);

    // Overhead: the paper reports ≈6%; allow a generous band for the rebuilt
    // substrate but insist it stays clearly below the Clifford-only penalties.
    let overhead = lsqca.overhead_vs(&baseline);
    assert!(overhead >= 1.0);
    assert!(
        overhead < 1.35,
        "multiplier line-SAM overhead {overhead:.2}x should stay modest"
    );
}

/// SELECT claim (Fig. 15): with the control and temporal registers pinned into
/// a conventional region, the hybrid point SAM reaches ≈92% density at a small
/// overhead for the width-21 instance.
#[test]
fn select_hybrid_point_sam_headline_density_and_overhead() {
    let mut select_cfg = SelectConfig::for_width(21);
    // Cap the number of iterated terms to keep the test fast; register widths
    // (and therefore density) are unchanged, and the access structure repeats.
    select_cfg.max_terms = Some(300);
    let fraction = (select_cfg.control_bits() + select_cfg.temporal_bits()) as f64
        / select_cfg.total_qubits() as f64;
    let workload = Workload::from_circuit(select_heisenberg(select_cfg));

    let hybrid_cfg = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
        .with_hybrid_fraction(fraction)
        .with_hot_set(HotSetStrategy::ByRole(vec![
            RegisterRole::Control,
            RegisterRole::Temporal,
        ]));
    let (hybrid, baseline) = workload.run_with_baseline(&hybrid_cfg);

    assert!(
        hybrid.memory_density > 0.88 && hybrid.memory_density < 1.0,
        "hybrid point-SAM density {:.3} should be ≈ 0.92",
        hybrid.memory_density
    );
    let overhead = hybrid.overhead_vs(&baseline);
    assert!(overhead >= 1.0);
    assert!(
        overhead < 1.30,
        "hybrid point-SAM overhead {overhead:.2}x should stay small"
    );
}

/// The density limit argument of Sec. III: every LSQCA floorplan beats the 50%
/// ceiling of unit-access floorplans for the paper-sized register files.
#[test]
fn lsqca_breaks_the_half_density_ceiling_for_every_paper_register_file() {
    use lsqca::arch::MemorySystem;
    for qubits in [60u32, 127, 143, 260, 280, 400, 433] {
        for floorplan in [
            FloorplanKind::PointSam { banks: 1 },
            FloorplanKind::PointSam { banks: 2 },
            FloorplanKind::LineSam { banks: 1 },
            FloorplanKind::LineSam { banks: 2 },
            FloorplanKind::LineSam { banks: 4 },
        ] {
            let arch = ArchConfig::new(floorplan, 1);
            let memory = MemorySystem::new(&arch, qubits, &[]);
            assert!(
                memory.memory_density() > 0.5,
                "{floorplan:?} with {qubits} qubits has density {:.2}",
                memory.memory_density()
            );
        }
    }
}

/// Magic-state demand outpaces a single factory for the arithmetic benchmarks
/// (Sec. III-B: one magic state every ≈2.1 beats for the multiplier vs one per
/// 15 beats from a single factory) — the bottleneck that hides LSQCA's latency.
#[test]
fn magic_state_demand_outpaces_a_single_factory() {
    let workload = Workload::from_circuit(Benchmark::Multiplier.reduced_instance());
    let ideal = workload.run(&ExperimentConfig::baseline(1).with_infinite_magic());
    let demand_interval = ideal.total_beats.as_f64() / ideal.stats.magic_states.max(1) as f64;
    assert!(
        demand_interval < 15.0,
        "multiplier demands a magic state every {demand_interval:.1} beats, \
         which should be faster than one factory's 15-beat production"
    );

    // Consequently the realistic single-factory run is much slower than the
    // idealized one — the execution is magic-state bound, not memory bound.
    let real = workload.run(&ExperimentConfig::baseline(1));
    assert!(real.total_beats.as_f64() > 2.0 * ideal.total_beats.as_f64());
}
