//! Merge determinism of sharded sweeps: any partition of a sweep into k
//! shards (k ∈ 1..=8), with arbitrary kill-points per shard followed by a
//! resume, must audit cleanly and merge to a report byte-identical to the
//! k = 1 uninterrupted run.
//!
//! The shards here are driven sequentially in one process over one
//! fault-injected [`FaultyIo`] backend — what matters to the merge is the
//! per-shard journal/record state left on "disk", which is the same whether
//! the shards ran as processes or loops. Process-level supervision (restart,
//! backoff, quarantine) is exercised by the CI smoke against the real binary.

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca::workloads::InstanceSize;
use lsqca_bench::{stored_run_in, supervisor::owning_shard};
use lsqca_store::{merge_audit, FaultPlan, FaultyIo, MergeError, ResultStore};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn sweep_workloads() -> Vec<Workload> {
    [Benchmark::Ghz, Benchmark::Cat]
        .iter()
        .map(|b| Workload::from_circuit(b.config(InstanceSize::Reduced).build()))
        .collect()
}

fn sweep_configs() -> Vec<ExperimentConfig> {
    vec![
        ExperimentConfig::baseline(1),
        ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1),
        ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 2),
    ]
}

/// Every sweep point, in sweep order: `(workload index, config)` plus its
/// result key (the partition domain).
fn sweep_points(workloads: &[Workload]) -> Vec<(usize, ExperimentConfig, String)> {
    let mut points = Vec::new();
    for (w, workload) in workloads.iter().enumerate() {
        for config in sweep_configs() {
            let key = workload.result_key(&config);
            points.push((w, config, key));
        }
    }
    points
}

fn store_labeled(io: &Arc<FaultyIo>, label: &str) -> ResultStore {
    let mut store = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
    store.set_shard_label(label).expect("test labels are valid");
    store
}

/// The merged report: every point rendered through `store`, in sweep order.
fn report(store: &ResultStore, workloads: &[Workload]) -> String {
    let mut out = String::new();
    for (w, config, key) in sweep_points(workloads) {
        let result = stored_run_in(store, &workloads[w], &config);
        out.push_str(&format!(
            "{key} beats={} cpi={:.6} density={:.6}\n",
            result.total_beats.as_u64(),
            result.cpi,
            result.memory_density,
        ));
    }
    out
}

proptest! {
    /// Partition → per-shard kill → resume → merge equals the clean run,
    /// byte for byte, and the merge audit finds nothing missing or corrupt.
    #[test]
    fn any_partition_with_kills_merges_to_the_clean_report(
        shards in 1u32..9,
        kills in proptest::collection::vec((proptest::bool::ANY, 5u64..150), 8..9),
    ) {
        let workloads = sweep_workloads();

        // Reference: the k = 1 uninterrupted run on its own pristine backend.
        let clean_io = Arc::new(FaultyIo::reliable());
        let clean = report(&store_labeled(&clean_io, "0"), &workloads);

        // Sharded run: all shards publish into one shared backend, each under
        // its own journal label, computing only the points it owns. A shard
        // marked for killing loses its volatile tail mid-pass, then a fresh
        // store (the restarted worker) resumes it through the journal.
        let io = Arc::new(FaultyIo::reliable());
        let points = sweep_points(&workloads);
        for k in 0..shards {
            let label = k.to_string();
            let (kill, offset) = kills[k as usize];
            if kill {
                io.set_plan(FaultPlan {
                    kill_at_op: Some(io.op_count() + offset),
                    ..FaultPlan::default()
                });
            }
            let store = store_labeled(&io, &label);
            for (w, config, key) in &points {
                if owning_shard(key, shards) == k {
                    stored_run_in(&store, &workloads[*w], config);
                }
            }
            // The worker dies (volatile state is lost) and is restarted:
            // journaled records replay as hits, the lost tail recomputes.
            io.crash();
            io.revive();
            let resumed = store_labeled(&io, &label);
            for (w, config, key) in &points {
                if owning_shard(key, shards) == k {
                    stored_run_in(&resumed, &workloads[*w], config);
                }
            }
        }

        // The cross-shard audit accepts the store: every journaled record is
        // on disk and verifies, and no journals conflict.
        let audit = merge_audit(io.as_ref(), Path::new("/store"))
            .unwrap_or_else(|err| panic!("merge refused: {err}"));
        prop_assert_eq!(audit.missing, 0);
        prop_assert_eq!(audit.corrupt, 0);
        prop_assert_eq!(audit.verified, audit.journaled);
        prop_assert!(audit.quarantined_points.is_empty());

        // The merged render (a fresh process over the shared store) is
        // byte-identical to the clean single-process run.
        let merged = report(&store_labeled(&io, "merge"), &workloads);
        prop_assert_eq!(&merged, &clean);
    }
}

/// Conflicting shard journals must refuse to merge: if two shards journal
/// different checksums for the same record file, the audit is a hard error
/// rather than a silent pick-one.
#[test]
fn conflicting_shards_refuse_to_merge() {
    let workloads = sweep_workloads();
    let io = Arc::new(FaultyIo::reliable());
    let store = store_labeled(&io, "0");
    let (w, config, key) = sweep_points(&workloads).remove(0);
    stored_run_in(&store, &workloads[w], &config);

    // A rogue shard claims a different content hash for the same record.
    let file = store
        .path_for(&key)
        .unwrap()
        .file_name()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    lsqca_store::ShardJournal::new(io.clone(), Path::new("/store"), "1")
        .append(&lsqca_store::JournalEntry {
            checksum: "1234567890abcdef".to_string(),
            file,
        })
        .unwrap();

    let err = merge_audit(io.as_ref(), Path::new("/store")).unwrap_err();
    assert!(matches!(err, MergeError::ChecksumConflict { .. }), "{err}");
}
