//! Checks that the paper-sized benchmark instances have exactly the logical
//! qubit counts reported in Sec. VI-B and Fig. 15, and that their compiled
//! programs are well-formed.

use lsqca::prelude::*;
use lsqca::workloads::{paper_qubit_count, SelectConfig};

#[test]
fn paper_benchmark_qubit_counts_match_section_vi() {
    // adder 433, bv 280, cat 260, ghz 127, multiplier 400, square_root 60,
    // SELECT (11x11) 143.
    for benchmark in Benchmark::ALL {
        let circuit = benchmark.paper_instance();
        assert_eq!(
            circuit.num_qubits(),
            paper_qubit_count(benchmark),
            "{benchmark} has the wrong paper qubit count"
        );
    }
}

#[test]
fn select_instance_sizes_match_figure_15() {
    let expected = [
        (21u32, 467u32),
        (41, 1711),
        (61, 3753),
        (81, 6595),
        (101, 10235),
    ];
    for (width, qubits) in expected {
        assert_eq!(
            SelectConfig::for_width(width).total_qubits(),
            qubits,
            "SELECT width {width}"
        );
    }
}

#[test]
fn paper_instances_compile_and_validate() {
    // The cheap benchmarks are compiled at paper scale here; the expensive ones
    // (multiplier, SELECT, adder) are covered by the reduced-instance pipeline
    // test and by the experiments binary.
    for benchmark in [
        Benchmark::Ghz,
        Benchmark::Cat,
        Benchmark::Bv,
        Benchmark::SquareRoot,
    ] {
        let circuit = benchmark.paper_instance();
        let compiled = compile(&circuit, CompilerConfig::default());
        assert!(
            compiled.program.validate().is_ok(),
            "{benchmark} paper instance fails validation"
        );
        assert_eq!(compiled.num_qubits, paper_qubit_count(benchmark));
    }
}

#[test]
fn clifford_benchmarks_consume_no_magic_states() {
    for benchmark in [Benchmark::Ghz, Benchmark::Cat, Benchmark::Bv] {
        let circuit = benchmark.paper_instance();
        let compiled = compile(&circuit, CompilerConfig::default());
        assert_eq!(
            compiled.program.stats().magic_state_count,
            0,
            "{benchmark} should be Clifford-only"
        );
    }
}

#[test]
fn arithmetic_benchmarks_are_magic_state_hungry() {
    let benchmark = Benchmark::SquareRoot;
    let circuit = benchmark.paper_instance();
    let compiled = compile(&circuit, CompilerConfig::default());
    let stats = compiled.program.stats();
    assert!(
        stats.magic_state_count > 100,
        "{benchmark} should consume many magic states, got {}",
        stats.magic_state_count
    );
}
