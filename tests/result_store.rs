//! End-to-end tests of the crash-safe result store: a warm store serves a full
//! sweep with zero simulation, a sweep killed mid-run resumes to a byte-
//! identical report, and tampered records are quarantined, never served.

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca::sim::simulation_count;
use lsqca::workloads::InstanceSize;
use lsqca_bench::stored_run_in;
use lsqca_json::ToJson;
use lsqca_store::{FaultPlan, FaultyIo, ResultStore, StoreEvent};
use std::sync::{Arc, Mutex, MutexGuard};

/// `simulation_count()` is process-global, so tests that assert on its deltas
/// must not interleave with other simulating tests in this binary.
static SIMS: Mutex<()> = Mutex::new(());

fn sim_lock() -> MutexGuard<'static, ()> {
    SIMS.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_store(tag: &str) -> ResultStore {
    let dir = std::env::temp_dir().join(format!("lsqca-itest-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultStore::at(dir)
}

fn sweep_workloads() -> Vec<Workload> {
    [Benchmark::Ghz, Benchmark::Cat]
        .iter()
        .map(|b| Workload::from_circuit(b.config(InstanceSize::Reduced).build()))
        .collect()
}

fn sweep_configs() -> Vec<ExperimentConfig> {
    vec![
        ExperimentConfig::baseline(1),
        ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1),
        ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 2),
    ]
}

/// The report a sweep driver would merge: every point's rendered result, in
/// sweep order. Byte-compared across interrupted/resumed/clean runs.
fn merged_report(store: &ResultStore, workloads: &[Workload]) -> String {
    let mut report = String::new();
    for workload in workloads {
        for config in sweep_configs() {
            let result = stored_run_in(store, workload, &config);
            report.push_str(&format!(
                "{} beats={} cpi={:.6} density={:.6}\n",
                workload.result_key(&config),
                result.total_beats.as_u64(),
                result.cpi,
                result.memory_density,
            ));
        }
    }
    report
}

/// The acceptance criterion of the result store: once the store is warm,
/// re-running a whole sweep simulates nothing — the simulation counter stays
/// exactly flat while every point is still reported identically.
#[test]
fn warm_store_sweep_performs_zero_simulation() {
    let _serial = sim_lock();
    let store = temp_store("sweep");
    let workloads = sweep_workloads();

    let cold = merged_report(&store, &workloads);
    let sims_after_cold = simulation_count();

    // Same directory, fresh process state: everything must come off disk.
    let warm_store = ResultStore::at(store.dir().unwrap());
    let warm = merged_report(&warm_store, &workloads);
    assert_eq!(
        simulation_count(),
        sims_after_cold,
        "the warm-store sweep must perform zero simulation"
    );
    assert_eq!(cold, warm, "store-served results must render identically");
    let stats = warm_store.stats();
    assert_eq!(stats.hits, 6);
    assert_eq!(stats.computed, 0);
    assert_eq!(stats.quarantined, 0);
}

/// A sweep killed at an arbitrary backend operation and then resumed over the
/// surviving (durable) image produces the same merged report as a never-
/// interrupted run, and the resume audit accounts for every journaled point.
#[test]
fn killed_sweep_resumes_to_an_identical_report() {
    let _serial = sim_lock();
    let workloads = sweep_workloads();

    // Reference: clean, uninterrupted, store-free run.
    let clean = merged_report(&ResultStore::disabled(), &workloads);

    for kill_at_op in [3, 7, 13, 29] {
        let io = Arc::new(FaultyIo::with_plan(FaultPlan {
            kill_at_op: Some(kill_at_op),
            ..FaultPlan::default()
        }));
        let dir = std::path::PathBuf::from("/store");
        let store = ResultStore::with_io(Some(dir.clone()), io.clone());

        // The killed process: backend ops start failing mid-sweep, the store
        // degrades to memory, and the report still comes out right.
        let interrupted = merged_report(&store, &workloads);
        assert_eq!(interrupted, clean, "kill at op {kill_at_op}");

        // SIGKILL: volatile state is gone, only synced records survive.
        io.crash();
        io.revive();

        let resumed_store = ResultStore::with_io(Some(dir), io.clone());
        let audit = resumed_store.verify_resume();
        assert_eq!(
            audit.missing, 0,
            "journaled-and-synced records must survive the crash (kill at op {kill_at_op})"
        );
        let resumed = merged_report(&resumed_store, &workloads);
        assert_eq!(
            resumed, clean,
            "resumed report must be byte-identical (kill at op {kill_at_op})"
        );
        let stats = resumed_store.stats();
        assert_eq!(stats.hits + stats.computed, 6);
        assert_eq!(stats.quarantined, 0);
    }
}

/// A record whose payload was altered on disk fails its checksum, is moved
/// aside, and the point is recomputed — a tampered store can slow a sweep
/// down but never change its numbers.
#[test]
fn tampered_records_are_quarantined_and_recomputed() {
    let _serial = sim_lock();
    let store = temp_store("tamper");
    let workload = &sweep_workloads()[0];
    let config = ExperimentConfig::baseline(1);
    let pristine = stored_run_in(&store, workload, &config);

    // Corrupt the payload of the single record in the store.
    let dir = store.dir().unwrap().to_path_buf();
    let record = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("the run above stored one record");
    let text = std::fs::read_to_string(&record).unwrap();
    let beats = format!("\"total_beats\": {}", pristine.total_beats.as_u64());
    assert!(text.contains(&beats), "fixture drift: {text}");
    std::fs::write(&record, text.replace(&beats, "\"total_beats\": 1")).unwrap();

    let reopened = ResultStore::at(&dir);
    let key = workload.result_key(&config);
    let (_, event) = reopened.load_or_compute(&key, || workload.run(&config).stats.to_json());
    assert!(
        matches!(event, StoreEvent::Quarantined(_)),
        "checksum must catch the edit: {event:?}"
    );
    let recomputed = stored_run_in(&reopened, workload, &config);
    assert_eq!(recomputed.total_beats, pristine.total_beats);
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.path().to_string_lossy().ends_with(".quarantined")),
        "the bad record must be preserved for inspection"
    );
}
