//! Integration tests for the Sec. III-B locality observations and for the ISA
//! round trip of compiled workloads.

use lsqca::analysis::{hot_set_by_access_count, AccessLocalityReport};
use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::isa::asm::{format_program, parse_program};
use lsqca::prelude::*;
use lsqca::workloads::{select_heisenberg, SelectConfig};

#[test]
fn select_control_and_temporal_registers_are_the_hot_set() {
    // Sec. III-B: "a few logical qubits in the control and temporal registers
    // are referred to much more frequently than those in the system register."
    let circuit = select_heisenberg(SelectConfig::for_width(4));
    let registers = circuit.registers().clone();
    let workload = Workload::from_circuit(circuit);
    let hot = hot_set_by_access_count(
        &workload.compiled().program,
        (registers.by_name("control").unwrap().len()
            + registers.by_name("temporal").unwrap().len())
            / 2,
    );
    for qubit in hot {
        let role = registers
            .role_of(qubit.0)
            .expect("hot qubit has a register");
        assert!(
            matches!(role, RegisterRole::Control | RegisterRole::Temporal),
            "hot qubit {qubit:?} unexpectedly belongs to the {role} register"
        );
    }
}

#[test]
fn select_and_multiplier_traces_show_temporal_locality() {
    for benchmark in [Benchmark::Select, Benchmark::Multiplier] {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        let result = workload.run(
            &ExperimentConfig::baseline(1)
                .with_trace()
                .with_infinite_magic(),
        );
        let report = AccessLocalityReport::from_trace(&result.trace, None);
        assert!(
            report.short_period_fraction > 0.3,
            "{benchmark}: only {:.0}% of reference periods are short",
            100.0 * report.short_period_fraction
        );
        // The period distribution has a long tail: the maximum period is much
        // larger than the median (many short periods, a few long ones).
        let median = report.reference_periods.median().unwrap_or(0);
        let max = report.reference_periods.quantile(1.0).unwrap_or(0);
        assert!(
            max >= 5 * median.max(1),
            "{benchmark}: period distribution has no long tail (median {median}, max {max})"
        );
    }
}

#[test]
fn multiplier_trace_shows_sequential_access() {
    let workload = Workload::from_circuit(Benchmark::Multiplier.reduced_instance());
    let result = workload.run(
        &ExperimentConfig::baseline(1)
            .with_trace()
            .with_infinite_magic(),
    );
    let report = AccessLocalityReport::from_trace(&result.trace, None);
    assert!(
        report.sequential_fraction > 0.25,
        "multiplier sequential fraction {:.2} is too low",
        report.sequential_fraction
    );
}

#[test]
fn compiled_workloads_round_trip_through_assembly_text() {
    for benchmark in [Benchmark::Ghz, Benchmark::SquareRoot, Benchmark::Select] {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        let program = &workload.compiled().program;
        let text = format_program(program);
        let parsed = parse_program(program.name(), &text).expect("assembly parses");
        assert_eq!(
            &parsed, program,
            "{benchmark}: assembly round trip changed the program"
        );
    }
}

#[test]
fn compiled_t_gate_counts_match_the_magic_state_demand() {
    for benchmark in [
        Benchmark::SquareRoot,
        Benchmark::Multiplier,
        Benchmark::Adder,
    ] {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        let compiled = workload.compiled();
        assert_eq!(
            compiled.t_gates,
            compiled.program.stats().magic_state_count,
            "{benchmark}: every T gate should consume exactly one magic state"
        );
    }
}

#[test]
fn in_memory_compilation_reduces_explicit_loads_and_stores() {
    // The in-memory optimization (Sec. V-C) should eliminate essentially all
    // explicit LD/ST instructions relative to the load/store-only ablation.
    let circuit = Benchmark::SquareRoot.reduced_instance();
    let in_memory = compile(&circuit, CompilerConfig::default());
    let load_store = compile(
        &circuit,
        CompilerConfig {
            use_in_memory_ops: false,
            ..CompilerConfig::default()
        },
    );
    let ldst = |p: &Program| {
        let stats = p.stats();
        stats
            .kind_counts
            .get(&lsqca::isa::InstructionKind::Memory)
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(ldst(&in_memory.program), 0);
    assert!(ldst(&load_store.program) > 100);

    // And the in-memory program runs faster on a point SAM.
    let arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
    let fast = simulate(
        &in_memory.program,
        in_memory.num_qubits,
        &arch,
        &[],
        SimConfig::default(),
    );
    let slow = simulate(
        &load_store.program,
        load_store.num_qubits,
        &arch,
        &[],
        SimConfig::default(),
    );
    assert!(fast.stats.total_beats <= slow.stats.total_beats);
}
