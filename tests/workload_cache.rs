//! End-to-end tests of the compiled-workload artifact subsystem: a warm cache
//! serves a full sweep with zero compilation, and every corruption/staleness
//! mode forces recompilation instead of serving a stale artifact.

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca::workloads::{compile_count, CacheEvent, InstanceSize};
use lsqca_bench::{fig13, Scale};
use std::sync::{Mutex, MutexGuard};

/// `compile_count()` is process-global, so tests that assert on its deltas
/// (or compile at all) must not interleave with each other.
static COMPILES: Mutex<()> = Mutex::new(());

fn compile_lock() -> MutexGuard<'static, ()> {
    COMPILES.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_cache(tag: &str) -> WorkloadCache {
    let dir = std::env::temp_dir().join(format!("lsqca-itest-cache-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    WorkloadCache::at(dir)
}

/// The acceptance criterion of the artifact subsystem: once the cache is warm,
/// re-running a whole multi-configuration sweep compiles nothing — the compile
/// counter stays exactly flat while every configuration still simulates.
#[test]
fn warm_cache_sweep_performs_zero_compilation() {
    let _serial = compile_lock();
    let cache = temp_cache("sweep");
    let compiler = CompilerConfig::default();
    let benchmarks = [Benchmark::Ghz, Benchmark::SquareRoot, Benchmark::Cat];

    let run_sweep = |cache: &WorkloadCache| -> Vec<u64> {
        let mut beats = Vec::new();
        for benchmark in benchmarks {
            let cfg = benchmark.config(InstanceSize::Reduced);
            let (artifact, _) = cache.load_or_compile(&cfg.descriptor(), compiler, || cfg.build());
            let workload = Workload::from_artifact(artifact);
            // The paper's access pattern: one compile, many configurations.
            for floorplan in [
                FloorplanKind::Conventional,
                FloorplanKind::PointSam { banks: 1 },
                FloorplanKind::LineSam { banks: 1 },
            ] {
                let result = workload.run(&ExperimentConfig::new(floorplan, 1));
                beats.push(result.total_beats.as_u64());
            }
        }
        beats
    };

    let cold = run_sweep(&cache);
    let compiles_after_cold = compile_count();

    let warm = run_sweep(&cache);
    assert_eq!(
        compile_count(),
        compiles_after_cold,
        "the warm-cache sweep must perform zero workload compilation"
    );
    assert_eq!(
        cold, warm,
        "cache-served artifacts must simulate identically"
    );
    let stats = cache.stats();
    assert_eq!(stats.compiled, benchmarks.len() as u64);
    assert_eq!(stats.hits, benchmarks.len() as u64);
    assert_eq!(stats.invalidated, 0);
}

/// The `experiments` sweep drivers go through the shared process cache, so
/// generating the same figure twice compiles each workload at most once.
#[test]
fn figure_generators_reuse_cached_artifacts_across_invocations() {
    let _serial = compile_lock();
    // First generation warms the cache (either this call compiles, or an
    // earlier run of the suite already left valid artifacts on disk).
    let first = fig13::generate(Scale::Quick, &[Benchmark::Ghz], &[1]);
    let compiles_after_first = compile_count();
    // The second generation must be served entirely from the cache.
    let second = fig13::generate(Scale::Quick, &[Benchmark::Ghz], &[1]);
    assert_eq!(
        compile_count(),
        compiles_after_first,
        "regenerating fig13 with a warm cache must not compile"
    );
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.beats, b.beats, "{}/{}", a.benchmark, a.floorplan);
    }
}

/// Every tamper mode recompiles rather than serving the stale artifact.
#[test]
fn tampered_cache_entries_are_never_served() {
    let _serial = compile_lock();
    let cache = temp_cache("tamper");
    let compiler = CompilerConfig::default();
    let cfg = Benchmark::Ghz.config(InstanceSize::Reduced);
    let (pristine, event) = cache.load_or_compile(&cfg.descriptor(), compiler, || cfg.build());
    assert_eq!(event, CacheEvent::Compiled);
    let path = cache.path_for(&cfg.descriptor(), &compiler).unwrap();

    // Truncation (simulated torn write).
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 3]).unwrap();
    let (artifact, event) = cache.load_or_compile(&cfg.descriptor(), compiler, || cfg.build());
    assert!(matches!(event, CacheEvent::Invalidated(_)), "{event:?}");
    assert_eq!(artifact, pristine);

    // Stale ISA version.
    let text = std::fs::read_to_string(&path).unwrap();
    let stale = text.replace("\"isa_version\": ", "\"isa_version\": 99");
    std::fs::write(&path, stale).unwrap();
    let (artifact, event) = cache.load_or_compile(&cfg.descriptor(), compiler, || cfg.build());
    assert!(matches!(event, CacheEvent::Invalidated(_)), "{event:?}");
    assert_eq!(artifact, pristine);

    // After the recompile-and-rewrite, the entry serves hits again.
    let (_, event) = cache.load_or_compile(&cfg.descriptor(), compiler, || cfg.build());
    assert_eq!(event, CacheEvent::Hit);
}

/// A mutated generator configuration hashes to a different key, so the old
/// artifact is never consulted for it.
#[test]
fn mutated_config_gets_its_own_artifact() {
    let _serial = compile_lock();
    let cache = temp_cache("mutated-config");
    let compiler = CompilerConfig::default();
    let small = lsqca::workloads::BenchmarkConfig::Ghz(lsqca::workloads::GhzConfig { qubits: 8 });
    let large = lsqca::workloads::BenchmarkConfig::Ghz(lsqca::workloads::GhzConfig { qubits: 9 });
    cache.load_or_compile(&small.descriptor(), compiler, || small.build());
    let (artifact, event) = cache.load_or_compile(&large.descriptor(), compiler, || large.build());
    assert_eq!(
        event,
        CacheEvent::Compiled,
        "one changed parameter = new key"
    );
    assert_eq!(artifact.num_qubits, 9);
}
