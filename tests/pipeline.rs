//! End-to-end pipeline tests: every benchmark goes through circuit generation,
//! compilation, validation, and simulation on every floorplan, and the results
//! respect the qualitative relationships the paper establishes.

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;

fn floorplans() -> Vec<FloorplanKind> {
    vec![
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::PointSam { banks: 2 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::LineSam { banks: 2 },
        FloorplanKind::LineSam { banks: 4 },
        FloorplanKind::Conventional,
    ]
}

#[test]
fn every_benchmark_compiles_validates_and_simulates_on_every_floorplan() {
    for benchmark in Benchmark::ALL {
        let circuit = benchmark.reduced_instance();
        let workload = Workload::from_circuit(circuit);
        assert!(
            workload.compiled().program.validate().is_ok(),
            "{benchmark}: compiled program does not validate"
        );
        let baseline = workload.run(&ExperimentConfig::baseline(1));
        assert!(
            baseline.total_beats.as_u64() > 0,
            "{benchmark}: baseline run is empty"
        );
        for floorplan in floorplans() {
            let result = workload.run(&ExperimentConfig::new(floorplan, 1));
            // The conventional baseline is an optimistic lower bound on time.
            assert!(
                result.total_beats >= baseline.total_beats,
                "{benchmark} on {floorplan:?} finished before the ideal baseline"
            );
            // Multi-bank SAMs only amortize their CR overhead on larger register
            // files, so the density claim is checked for single-bank floorplans
            // (the paper-sized instances are covered in headline_claims.rs).
            if floorplan.bank_count() == 1 {
                assert!(
                    result.memory_density > baseline.memory_density,
                    "{benchmark} on {floorplan:?} does not improve memory density"
                );
            }
        }
    }
}

#[test]
fn clifford_only_benchmarks_pay_the_largest_lsqca_penalty() {
    // bv/cat/ghz have no magic-state bottleneck to hide behind, so their
    // overhead on a single-bank point SAM is larger than the multiplier's
    // (Sec. VI-B's main qualitative finding).
    let overhead = |benchmark: Benchmark| {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
        let (lsqca, baseline) = workload.run_with_baseline(&config);
        lsqca.overhead_vs(&baseline)
    };
    let ghz = overhead(Benchmark::Ghz);
    let cat = overhead(Benchmark::Cat);
    let multiplier = overhead(Benchmark::Multiplier);
    let square_root = overhead(Benchmark::SquareRoot);
    assert!(
        ghz > multiplier,
        "ghz ({ghz:.2}x) should suffer more than the multiplier ({multiplier:.2}x)"
    );
    assert!(
        cat > square_root,
        "cat ({cat:.2}x) should suffer more than square_root ({square_root:.2}x)"
    );
}

#[test]
fn more_factories_never_slow_execution_down() {
    for benchmark in [
        Benchmark::Multiplier,
        Benchmark::Select,
        Benchmark::SquareRoot,
    ] {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        for floorplan in [
            FloorplanKind::LineSam { banks: 1 },
            FloorplanKind::Conventional,
        ] {
            let one = workload.run(&ExperimentConfig::new(floorplan, 1));
            let four = workload.run(&ExperimentConfig::new(floorplan, 4));
            assert!(
                four.total_beats <= one.total_beats,
                "{benchmark} on {floorplan:?}: 4 factories slower than 1"
            );
        }
    }
}

#[test]
fn multi_bank_sam_is_not_slower_than_single_bank() {
    for benchmark in [Benchmark::Multiplier, Benchmark::Adder] {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        let single = workload.run(&ExperimentConfig::new(
            FloorplanKind::LineSam { banks: 1 },
            4,
        ));
        let quad = workload.run(&ExperimentConfig::new(
            FloorplanKind::LineSam { banks: 4 },
            4,
        ));
        assert!(
            quad.total_beats <= single.total_beats,
            "{benchmark}: 4-bank line SAM slower than 1 bank"
        );
        assert!(quad.memory_density <= single.memory_density);
    }
}

#[test]
fn line_sam_is_not_slower_than_point_sam() {
    // The line SAM trades density for latency, so with equal bank counts it
    // should never be slower on memory-bound workloads.
    for benchmark in [Benchmark::Ghz, Benchmark::Cat, Benchmark::Adder] {
        let workload = Workload::from_circuit(benchmark.reduced_instance());
        let point = workload.run(&ExperimentConfig::new(
            FloorplanKind::PointSam { banks: 1 },
            1,
        ));
        let line = workload.run(&ExperimentConfig::new(
            FloorplanKind::LineSam { banks: 1 },
            1,
        ));
        assert!(
            line.total_beats <= point.total_beats,
            "{benchmark}: line SAM ({}) slower than point SAM ({})",
            line.total_beats,
            point.total_beats
        );
        assert!(line.memory_density <= point.memory_density);
    }
}

#[test]
fn hybrid_fraction_interpolates_between_lsqca_and_the_baseline() {
    let workload = Workload::from_circuit(Benchmark::Select.reduced_instance());
    let baseline = workload.run(&ExperimentConfig::baseline(1));
    let floorplan = FloorplanKind::PointSam { banks: 1 };
    let mut previous_density = f64::INFINITY;
    for step in 0..=4 {
        let fraction = step as f64 * 0.25;
        let result =
            workload.run(&ExperimentConfig::new(floorplan, 1).with_hybrid_fraction(fraction));
        assert!(
            result.memory_density <= previous_density + 1e-9,
            "density should not increase with f"
        );
        previous_density = result.memory_density;
        if step == 4 {
            // f = 1 is exactly the conventional baseline.
            assert!((result.memory_density - 0.5).abs() < 1e-9);
            assert!((result.overhead_vs(&baseline) - 1.0).abs() < 1e-9);
        }
    }
}
