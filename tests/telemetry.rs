//! Telemetry-layer contracts, from the outside in: span traces stay properly
//! nested over arbitrary sweep shapes, enabling instrumentation never changes
//! simulation results, and the `lsqca-metrics-v1` artifact survives a
//! round-trip through its own JSON text.
//!
//! Span enablement and the metrics registry are process-global, so every test
//! here serializes on one mutex — the assertions count and drain global state
//! and would race under the default parallel test runner.

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca_sim::{Simulator, TelemetryConfig};
use lsqca_telemetry::{HistogramSnapshot, MetricsSnapshot, SpanRecord};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// All tests toggle or drain process-global telemetry state; run them one at
/// a time (poison-tolerant: an assertion failure must not cascade).
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn sweep_workload(which: bool) -> Workload {
    let benchmark = if which {
        Benchmark::Ghz
    } else {
        Benchmark::Cat
    };
    Workload::from_circuit(benchmark.reduced_instance())
}

fn sweep_config(line_sam: bool, banks: u32, factories: u32) -> ExperimentConfig {
    let floorplan = if line_sam {
        FloorplanKind::LineSam { banks }
    } else {
        FloorplanKind::PointSam { banks }
    };
    ExperimentConfig::new(floorplan, factories)
}

/// Asserts stack discipline per recording thread: any two same-thread spans
/// are either disjoint or one contains the other. `take_spans` returns them
/// sorted by `(start_ns, Reverse(end_ns))`, so a single pass with an
/// end-time stack suffices.
fn assert_balanced_nesting(spans: &[SpanRecord]) {
    let mut by_tid: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        assert!(
            span.start_ns <= span.end_ns,
            "span `{}` ends before it starts ({} > {})",
            span.name,
            span.start_ns,
            span.end_ns
        );
        by_tid.entry(span.tid).or_default().push(span);
    }
    for (tid, mut spans) in by_tid {
        spans.sort_by_key(|span| (span.start_ns, Reverse(span.end_ns)));
        let mut open: Vec<&SpanRecord> = Vec::new();
        for span in spans {
            while let Some(top) = open.last() {
                if top.end_ns <= span.start_ns {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = open.last() {
                assert!(
                    span.end_ns <= top.end_ns,
                    "tid {tid}: span `{}` [{}, {}] straddles enclosing `{}` [{}, {}]",
                    span.name,
                    span.start_ns,
                    span.end_ns,
                    top.name,
                    top.start_ns,
                    top.end_ns
                );
            }
            open.push(span);
        }
    }
}

proptest! {
    /// Whatever the sweep shape, the recorded span trace is balanced — every
    /// same-thread pair of spans is disjoint or nested — and the lifecycle
    /// spans the sweep must cross are present.
    #[test]
    fn spans_nest_over_random_sweep_shapes(
        which in proptest::bool::ANY,
        shape in proptest::collection::vec(
            (proptest::bool::ANY, 1u32..3, 1u32..3),
            1..4,
        ),
    ) {
        let _serial = telemetry_lock();
        lsqca_telemetry::init_clock();
        let _drained = lsqca_telemetry::take_spans();
        lsqca_telemetry::set_spans_enabled(true);
        let workload = sweep_workload(which);
        let configs: Vec<ExperimentConfig> = shape
            .iter()
            .map(|&(line_sam, banks, factories)| sweep_config(line_sam, banks, factories))
            .collect();
        let results = workload.run_batch(&configs);
        lsqca_telemetry::set_spans_enabled(false);
        let spans = lsqca_telemetry::take_spans();

        prop_assert_eq!(results.len(), configs.len());
        assert_balanced_nesting(&spans);
        let count = |name: &str| spans.iter().filter(|span| span.name == name).count();
        // One warm per batch group and one fork + execute per point — the
        // parent stays pristine, so even a group's first point forks.
        prop_assert!(count("sim.warm") >= 1, "no sim.warm span recorded");
        prop_assert!(count("sim.warm") <= configs.len());
        prop_assert_eq!(count("point.execute"), configs.len());
        prop_assert_eq!(count("sim.fork"), configs.len());
    }
}

/// Instrumentation observes; it must not perturb. The same artifact on the
/// same architecture produces an identical outcome with spans + beat
/// attribution fully on as with everything off.
#[test]
fn instrumented_run_equals_disabled_run() {
    let _serial = telemetry_lock();
    lsqca_telemetry::init_clock();
    let workload = sweep_workload(true);
    let arch = ArchConfig::new(FloorplanKind::LineSam { banks: 2 }, 1);
    let qubits = workload
        .num_qubits()
        .max(workload.compiled().memory_footprint())
        .max(1);
    let execute = |telemetry: TelemetryConfig| {
        let mut simulator = Simulator::builder(&arch, qubits)
            .telemetry(telemetry)
            .build()
            .expect("valid simulator configuration");
        simulator
            .execute(workload.compiled())
            .expect("execution succeeds")
    };

    let plain = execute(TelemetryConfig {
        beat_attribution: false,
    });

    let before = lsqca_telemetry::snapshot();
    lsqca_telemetry::set_spans_enabled(true);
    let instrumented = execute(TelemetryConfig {
        beat_attribution: true,
    });
    lsqca_telemetry::set_spans_enabled(false);
    let spans = lsqca_telemetry::take_spans();
    let after = lsqca_telemetry::snapshot();

    assert_eq!(plain, instrumented, "telemetry changed simulation results");
    assert!(
        spans.iter().any(|span| span.name == "sim.warm"),
        "instrumented run recorded no sim.warm span"
    );
    // Beat attribution flushed into the per-kind histograms: the instrumented
    // run's beats land in `sim.beats.*`, and the bucketed total matches the
    // observation count exactly.
    let beats = |snapshot: &MetricsSnapshot| -> u64 {
        snapshot
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("sim.beats."))
            .map(|(_, histogram)| histogram.count)
            .sum()
    };
    let recorded = beats(&after) - beats(&before);
    assert!(recorded > 0, "beat attribution recorded no observations");
    for (name, histogram) in &after.histograms {
        if name.starts_with("sim.beats.") {
            let bucketed: u64 = histogram.buckets.iter().sum();
            assert_eq!(bucketed, histogram.count, "{name}: bucket total drifted");
        }
    }
}

/// The `lsqca-metrics-v1` artifact is self-describing: rendering a snapshot
/// to pretty JSON text and parsing it back yields the identical snapshot,
/// and the aggregated form (prefixed shard gauges) survives the same trip.
#[test]
fn metrics_artifact_round_trips_through_json_text() {
    let _serial = telemetry_lock();
    let mut snapshot = MetricsSnapshot::default();
    snapshot.counters.insert("trace.lowered".into(), 12);
    snapshot.counters.insert("sim.runs".into(), 0);
    snapshot.gauges.insert("shard.0.heartbeat_lag_ms".into(), 7);
    snapshot.gauges.insert("shard.1.backoff_ms".into(), -1);
    snapshot.histograms.insert(
        "sim.beats.cx".into(),
        HistogramSnapshot {
            count: 3,
            sum: 70,
            buckets: vec![0, 0, 0, 0, 1, 2],
        },
    );

    let text = snapshot.to_json().pretty() + "\n";
    let parsed = lsqca_json::parse(&text).expect("metrics artifact parses");
    let restored = MetricsSnapshot::from_json(&parsed).expect("metrics artifact validates");
    assert_eq!(restored, snapshot);

    // An aggregate (what `experiments merge --metrics-out` writes after
    // absorbing per-shard files) round-trips the same way.
    let mut total = MetricsSnapshot::default();
    total.counters.insert("trace.lowered".into(), 5);
    total.absorb(&snapshot, "shard.2.");
    let text = total.to_json().pretty() + "\n";
    let parsed = lsqca_json::parse(&text).expect("aggregated artifact parses");
    let restored = MetricsSnapshot::from_json(&parsed).expect("aggregated artifact validates");
    assert_eq!(restored, total);
    assert_eq!(restored.counters["trace.lowered"], 17);
    assert_eq!(restored.gauges["shard.2.shard.0.heartbeat_lag_ms"], 7);
}
