//! End-to-end tests of the adaptive hybrid-floorplan subsystem: the
//! `hybrid-migrate` sweep's acceptance criterion, cross-bank checkout
//! auditing through the full stack, and mixed-bank floorplan specs.

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::lattice::LatticeError;
use lsqca::prelude::*;
use lsqca_bench::{hybrid_migrate, Scale};

/// The PR's headline acceptance criterion, at the sweep level: on the
/// SELECT-Heisenberg workload, a hybrid floorplan running `FreqDecay`
/// migration reports fewer total seek cycles than the static hot-set
/// baseline — on every floorplan flavour the sweep covers.
#[test]
fn freq_decay_migration_beats_the_static_hot_set_on_select() {
    let points = hybrid_migrate::generate(Scale::Quick, &[Benchmark::Select], &[1]);
    for floorplan in hybrid_migrate::floorplans() {
        let of = |policy: &str| {
            points
                .iter()
                .find(|p| p.floorplan == floorplan.label() && p.policy == policy)
                .unwrap_or_else(|| panic!("missing {policy} on {}", floorplan.label()))
        };
        let pinned = of("static");
        let freq = of("freq-decay");
        assert!(
            freq.seek_beats < pinned.seek_beats,
            "{}: freq-decay seek cycles {} must undercut static {}",
            floorplan.label(),
            freq.seek_beats,
            pinned.seek_beats
        );
        assert!(freq.migrations > 0);
        // The migration cost the policy paid is metered, not hidden.
        assert!(freq.migration_beats > 0);
        assert_eq!(pinned.migrations, 0);
    }
}

/// A migration proposal for a checked-out qubit is the typed cross-bank
/// error all the way up through the memory system — never a silent vacancy
/// consumption in a foreign bank.
#[test]
fn cross_bank_audit_rejects_migration_of_checked_out_qubits() {
    let config = ArchConfig::new(FloorplanKind::PointSam { banks: 2 }, 1).with_hybrid_fraction(0.1);
    let hot = [QubitTag(0)];
    let mut mem = MemorySystem::new(&config, 40, &hot);
    let q = QubitTag(5);
    mem.load(q).unwrap();
    let err = mem.migrate(q, QubitTag(0)).unwrap_err();
    assert!(matches!(err, LatticeError::CrossBankCheckout { qubit, .. } if qubit == q));
    // The ledger and residence survive the rejection; the round trip settles.
    mem.store(q).unwrap();
    assert_eq!(mem.checked_out_count(), 0);
    let cost = mem.migrate(q, QubitTag(0)).unwrap();
    assert!(cost.as_u64() > 0);
}

/// A mixed floorplan spec (dual-port point + line) serves a real compiled
/// workload end to end through the memory system facade.
#[test]
fn mixed_floorplan_spec_serves_a_compiled_workload() {
    let spec = FloorplanSpec {
        banks: vec![BankKind::DualPointSam, BankKind::LineSam],
        cr_slots: 2,
        locality_aware_store: true,
    };
    let workload = Workload::from_circuit(Benchmark::Ghz.reduced_instance());
    let mut mem = MemorySystem::from_spec(&spec, workload.num_qubits().max(1), &[]);
    assert_eq!(mem.bank_count(), 2);
    // Drive every qubit through a load/store round trip.
    for q in 0..mem.num_qubits() {
        let q = QubitTag(q);
        mem.load(q).unwrap();
        assert!(mem.is_checked_out(q));
        mem.store(q).unwrap();
    }
    assert_eq!(mem.checked_out_count(), 0);
    // The toy instance is dominated by the two CR shapes (a dual-point block
    // per side plus the line columns); the SAM regions themselves stay dense.
    assert!(mem.memory_density() > 0.3);
    assert!(mem.sam_cells() < 2 * u64::from(mem.num_qubits()));
}

/// Migration-enabled experiment runs are deterministic and keep the explicit
/// instruction counters intact (migration is transparent to program text).
#[test]
fn migration_runs_are_deterministic_and_metered() {
    let workload = Workload::from_circuit(Benchmark::SquareRoot.reduced_instance());
    let base = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
        .with_hybrid_fraction(hybrid_migrate::FRACTION);
    let pinned = workload.run(&base.clone().with_migration(PolicyKind::Static));
    for policy in [PolicyKind::Lru, PolicyKind::FreqDecay] {
        let a = workload.run(&base.clone().with_migration(policy));
        let b = workload.run(&base.clone().with_migration(policy));
        assert_eq!(a.stats, b.stats, "{policy} must be deterministic");
        assert_eq!(a.stats.loads, pinned.stats.loads);
        assert_eq!(a.stats.stores, pinned.stats.stores);
        assert_eq!(a.stats.instruction_count, pinned.stats.instruction_count);
        // Whatever the policy did, its cost is visible in the stats.
        if a.stats.migrations > 0 {
            assert!(a.stats.migration_beats > lsqca::lattice::Beats::ZERO);
        }
    }
}
