//! Workspace-level package hosting the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) of the LSQCA reproduction.
//!
//! The library surface lives in the [`lsqca`] facade crate; this package only
//! re-exports it so examples and integration tests have a single dependency.

#![forbid(unsafe_code)]

pub use lsqca;
pub use lsqca_bench;
