//! Hybrid floorplans: sweep the conventional-region fraction `f` and print the
//! memory-density / execution-time trade-off curve of Fig. 14 for one
//! benchmark.
//!
//! ```text
//! cargo run --release --example hybrid_tradeoff [benchmark] [factories]
//! ```
//!
//! `benchmark` is one of `adder`, `bv`, `cat`, `ghz`, `multiplier`,
//! `square_root`, `select` (reduced instances are used so the sweep finishes in
//! seconds).

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;

fn main() {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Multiplier);
    let factories: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);

    let circuit = benchmark.reduced_instance();
    println!(
        "hybrid-floorplan sweep for `{benchmark}` ({} qubits, {} gates), {factories} MSF",
        circuit.num_qubits(),
        circuit.len()
    );
    let workload = Workload::from_circuit(circuit);
    let baseline = workload.run(&ExperimentConfig::baseline(factories));

    for floorplan in [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::LineSam { banks: 4 },
    ] {
        println!("\n{}", floorplan.label());
        println!(
            "{:>6} {:>9} {:>10} {:>12}",
            "f", "density", "overhead", "hot qubits"
        );
        let mut f: f64 = 0.0;
        while f <= 1.0 + 1e-9 {
            let result = workload
                .run(&ExperimentConfig::new(floorplan, factories).with_hybrid_fraction(f.min(1.0)));
            println!(
                "{:>6.2} {:>8.1}% {:>9.2}x {:>12}",
                f,
                100.0 * result.memory_density,
                result.overhead_vs(&baseline),
                result.hot_qubits
            );
            f += 0.1;
        }
    }

    println!(
        "\nreading the curve: f = 0 is pure LSQCA (highest density), f = 1 matches the \
         conventional baseline (50% density, 1.00x time)."
    );
}
