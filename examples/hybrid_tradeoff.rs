//! Hybrid floorplans: sweep the conventional-region fraction `f` and print the
//! memory-density / execution-time trade-off curve of Fig. 14 for one
//! benchmark, then compare the runtime hot-set migration policies (static /
//! LRU / frequency-decay) at a fixed fraction.
//!
//! ```text
//! cargo run --release --example hybrid_tradeoff [benchmark] [factories]
//! ```
//!
//! `benchmark` is one of `adder`, `bv`, `cat`, `ghz`, `multiplier`,
//! `square_root`, `select` (reduced instances are used so the sweep finishes in
//! seconds).

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;

fn main() {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Multiplier);
    let factories: u32 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);

    let circuit = benchmark.reduced_instance();
    println!(
        "hybrid-floorplan sweep for `{benchmark}` ({} qubits, {} gates), {factories} MSF",
        circuit.num_qubits(),
        circuit.len()
    );
    let workload = Workload::from_circuit(circuit);
    let baseline = workload.run(&ExperimentConfig::baseline(factories));

    for floorplan in [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::LineSam { banks: 4 },
    ] {
        println!("\n{}", floorplan.label());
        println!(
            "{:>6} {:>9} {:>10} {:>12}",
            "f", "density", "overhead", "hot qubits"
        );
        let mut f: f64 = 0.0;
        while f <= 1.0 + 1e-9 {
            let result = workload
                .run(&ExperimentConfig::new(floorplan, factories).with_hybrid_fraction(f.min(1.0)));
            println!(
                "{:>6.2} {:>8.1}% {:>9.2}x {:>12}",
                f,
                100.0 * result.memory_density,
                result.overhead_vs(&baseline),
                result.hot_qubits
            );
            f += 0.1;
        }
    }

    println!(
        "\nreading the curve: f = 0 is pure LSQCA (highest density), f = 1 matches the \
         conventional baseline (50% density, 1.00x time)."
    );

    // Runtime migration: same floorplan and hot-set budget, but the policy
    // may promote/demote qubits between the conventional region and the SAM
    // at runtime. `static` is the compile-time hot set above.
    let fraction = 0.10;
    println!("\nmigration policies at f = {fraction:.2} (Point #SAM=1 and DualPoint #SAM=1):");
    println!(
        "{:>28} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "policy", "beats", "seek beats", "migrations", "mig beats", "vs static"
    );
    for floorplan in [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::DualPointSam { banks: 1 },
    ] {
        let base = ExperimentConfig::new(floorplan, factories).with_hybrid_fraction(fraction);
        // One batch: the workload warms a single simulator for the shared
        // (floorplan, hot set) group and copy-on-write forks it per policy
        // variant instead of re-running placement for each.
        let configs = PolicyKind::ALL.map(|policy| base.clone().with_migration(policy));
        let results = workload.run_batch(&configs);
        let runs: Vec<_> = PolicyKind::ALL.into_iter().zip(results).collect();
        let pinned = &runs
            .iter()
            .find(|(policy, _)| *policy == PolicyKind::Static)
            .expect("PolicyKind::ALL contains the static baseline")
            .1;
        for (policy, result) in &runs {
            println!(
                "{:>28} {:>11} {:>11} {:>11} {:>11} {:>10.2}x",
                format!("{} {}", floorplan.label(), policy),
                result.total_beats.as_u64(),
                result.stats.memory_access_beats.as_u64(),
                result.stats.migrations,
                result.stats.migration_beats.as_u64(),
                result.total_beats.as_f64() / pinned.total_beats.as_f64().max(1.0),
            );
        }
    }
    println!(
        "\nreading the policies: `lru` promotes on every cold access (zero seeks, heavy \
         migration traffic); `freq-decay` promotes only when a decayed access-frequency \
         score overtakes the coldest pinned qubit — fewer seeks than `static` at a \
         fraction of `lru`'s migration cost."
    );
}
