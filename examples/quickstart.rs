//! Quickstart: compile a small circuit, run it on LSQCA and on the
//! conventional baseline, and compare memory density and execution time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;

fn main() {
    // 1. Describe a logical circuit: a tiny arithmetic kernel with a few
    //    T gates (magic-state consumers) and CNOTs.
    let mut circuit = Circuit::new("quickstart", 8);
    for q in 0..8 {
        circuit.prep_z(q);
        circuit.h(q);
    }
    for q in 0..7 {
        circuit.toffoli(q, q + 1, (q + 2) % 8);
    }
    for q in 0..8 {
        circuit.measure_z(q);
    }
    println!("circuit: {}", circuit.stats());

    // 2. Compile it once into the LSQCA instruction set (Table I).
    let workload = Workload::from_circuit(circuit);
    println!(
        "compiled into {} instructions using {} data qubits",
        workload.compiled().program.len(),
        workload.num_qubits()
    );

    // 3. Simulate on a point SAM and on the conventional 50%-density baseline.
    let lsqca_cfg = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
    let (lsqca, baseline) = workload.run_with_baseline(&lsqca_cfg);

    println!(
        "\n{:<28} {:>10} {:>8} {:>9}",
        "floorplan", "beats", "CPI", "density"
    );
    for result in [&baseline, &lsqca] {
        println!(
            "{:<28} {:>10} {:>8.2} {:>8.1}%",
            result.config_label,
            result.total_beats.as_u64(),
            result.cpi,
            100.0 * result.memory_density
        );
    }
    println!(
        "\nLSQCA stores the same program in {} cells instead of {} ({:+.1}% density) \
         at {:.1}% extra execution time.",
        lsqca.total_cells,
        baseline.total_cells,
        100.0 * (lsqca.memory_density - baseline.memory_density),
        100.0 * (lsqca.overhead_vs(&baseline) - 1.0)
    );
}
