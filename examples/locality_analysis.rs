//! Reproduces the Sec. III-B motivation study: collect the memory reference
//! trace of a benchmark under idealized conditions (unbounded parallelism,
//! instant magic states) and report its temporal/spatial locality and
//! magic-state demand rate — the observations that justify trading access
//! latency for memory density.
//!
//! ```text
//! cargo run --release --example locality_analysis [benchmark]
//! ```

use lsqca::analysis::AccessLocalityReport;
use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;

fn main() {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Select);
    let circuit = benchmark.reduced_instance();
    println!(
        "locality analysis for `{benchmark}` ({} qubits, {} gates)",
        circuit.num_qubits(),
        circuit.len()
    );

    let workload = Workload::from_circuit(circuit);
    // The paper's motivation-study assumptions.
    let result = workload.run(
        &ExperimentConfig::baseline(1)
            .with_trace()
            .with_infinite_magic(),
    );
    let report = AccessLocalityReport::from_trace(&result.trace, Some(result.stats.magic_states));

    println!("\n{report}");
    println!(
        "execution horizon: {} beats, {} magic states ({} beats per magic state)",
        result.total_beats.as_u64(),
        result.stats.magic_states,
        report
            .beats_per_magic_state
            .map(|b| format!("{b:.1}"))
            .unwrap_or_else(|| "-".to_string())
    );

    println!("\nreference-period cumulative distribution (log-spaced):");
    for (period, fraction) in report.reference_periods.log_spaced_points(2) {
        let bar = "#".repeat((fraction * 40.0).round() as usize);
        println!("  <= {period:>7} beats  {fraction:>6.3}  {bar}");
    }

    println!("\nhottest qubits (by reference count):");
    let mut counts: Vec<_> = result.trace.access_counts().into_iter().collect();
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));
    for (addr, count) in counts.iter().take(10) {
        let role = workload
            .registers()
            .role_of(addr.index())
            .map(|r| r.to_string())
            .unwrap_or_else(|| "?".to_string());
        println!("  {addr:>6}  {count:>8} references  ({role} register)");
    }
    println!(
        "\nA few qubits (the control/temporal registers for SELECT) absorb most references — \
         exactly the asymmetry the hybrid floorplan exploits."
    );
}
