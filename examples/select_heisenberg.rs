//! SELECT for a 2-D Heisenberg model: the paper's flagship workload.
//!
//! Synthesizes the SELECT circuit for a configurable lattice width, compiles
//! it, and compares every paper floorplan (point/line SAM × bank counts and the
//! conventional baseline) at one magic-state factory — a single column of
//! Fig. 13 plus the density numbers behind Fig. 15.
//!
//! ```text
//! cargo run --release --example select_heisenberg [lattice_width]
//! ```

use lsqca::experiment::{ExperimentConfig, HotSetStrategy, Workload};
use lsqca::prelude::*;
use lsqca::workloads::{select_heisenberg, SelectConfig};

fn main() {
    let width: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let config = SelectConfig::for_width(width);
    println!(
        "SELECT for a {width}x{width} Heisenberg model: {} Hamiltonian terms, {} logical qubits \
         (control {}, temporal {}, system {})",
        config.model.num_terms(),
        config.total_qubits(),
        config.control_bits(),
        config.temporal_bits(),
        config.model.num_sites()
    );

    let circuit = select_heisenberg(config);
    println!("synthesized circuit: {}", circuit.stats());
    let workload = Workload::from_circuit(circuit);

    let baseline = workload.run(&ExperimentConfig::baseline(1));
    println!(
        "\n{:<22} {:>10} {:>8} {:>9} {:>10}",
        "floorplan", "beats", "CPI", "density", "overhead"
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>8.1}% {:>10}",
        baseline.config_label,
        baseline.total_beats.as_u64(),
        baseline.cpi,
        100.0 * baseline.memory_density,
        "1.00x"
    );

    for floorplan in [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::PointSam { banks: 2 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::LineSam { banks: 2 },
        FloorplanKind::LineSam { banks: 4 },
    ] {
        let result = workload.run(&ExperimentConfig::new(floorplan, 1));
        println!(
            "{:<22} {:>10} {:>8.2} {:>8.1}% {:>9.2}x",
            result.config_label,
            result.total_beats.as_u64(),
            result.cpi,
            100.0 * result.memory_density,
            result.overhead_vs(&baseline)
        );
    }

    // Hybrid layout as in Fig. 15: pin the hot control/temporal registers.
    let select_cfg = SelectConfig::for_width(width);
    let fraction = (select_cfg.control_bits() + select_cfg.temporal_bits()) as f64
        / select_cfg.total_qubits() as f64;
    let hybrid = workload.run(
        &ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(fraction)
            .with_hot_set(HotSetStrategy::ByRole(vec![
                RegisterRole::Control,
                RegisterRole::Temporal,
            ])),
    );
    println!(
        "{:<22} {:>10} {:>8.2} {:>8.1}% {:>9.2}x   (control+temporal pinned)",
        "Hybrid Point #SAM=1",
        hybrid.total_beats.as_u64(),
        hybrid.cpi,
        100.0 * hybrid.memory_density,
        hybrid.overhead_vs(&baseline)
    );
}
