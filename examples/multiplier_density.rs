//! The multiplier headline claim: ≈87% memory density for a few percent of
//! execution time (line SAM, one bank, one magic-state factory).
//!
//! Runs the shift-and-add multiplier benchmark at a configurable operand width
//! (the paper uses 100-bit operands = 400 logical qubits) and prints the
//! density/overhead trade-off for every SAM design and factory count.
//!
//! ```text
//! cargo run --release --example multiplier_density [operand_bits]
//! ```

use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca::workloads::{shift_add_multiplier, MultiplierConfig};

fn main() {
    let operand_bits: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let config = MultiplierConfig {
        operand_bits,
        partial_products: None,
    };
    println!(
        "shift-and-add multiplier: {}-bit operands, {} logical qubits",
        operand_bits,
        config.total_qubits()
    );
    let circuit = shift_add_multiplier(config);
    println!("synthesized circuit: {}", circuit.stats());
    let workload = Workload::from_circuit(circuit);
    println!(
        "compiled into {} instructions, {} magic states",
        workload.compiled().program.len(),
        workload.compiled().program.stats().magic_state_count
    );

    for factories in [1u32, 2, 4] {
        let baseline = workload.run(&ExperimentConfig::baseline(factories));
        println!(
            "\n--- {factories} magic-state factor{} ---",
            if factories == 1 { "y" } else { "ies" }
        );
        println!(
            "{:<18} {:>12} {:>9} {:>10}",
            "floorplan", "beats", "density", "overhead"
        );
        println!(
            "{:<18} {:>12} {:>8.1}% {:>10}",
            "Conventional",
            baseline.total_beats.as_u64(),
            100.0 * baseline.memory_density,
            "1.00x"
        );
        for floorplan in [
            FloorplanKind::PointSam { banks: 1 },
            FloorplanKind::PointSam { banks: 2 },
            FloorplanKind::LineSam { banks: 1 },
            FloorplanKind::LineSam { banks: 2 },
            FloorplanKind::LineSam { banks: 4 },
        ] {
            let result = workload.run(&ExperimentConfig::new(floorplan, factories));
            println!(
                "{:<18} {:>12} {:>8.1}% {:>9.2}x",
                floorplan.label(),
                result.total_beats.as_u64(),
                100.0 * result.memory_density,
                result.overhead_vs(&baseline)
            );
        }
    }
}
