//! Surface-code lattice substrate for the LSQCA reproduction.
//!
//! This crate models the *logical* layer of a surface-code fault-tolerant quantum
//! computer as the LSQCA paper does: the chip is a two-dimensional grid of
//! surface-code **cells** (each cell is one code patch of distance `d`), time is
//! measured in **code beats** (`d` syndrome-measurement cycles), and computation is
//! carried out by a small set of primitive protocols — lattice surgery, patch
//! moves, expansion/contraction, transversal and deformation-based single-qubit
//! operations — each with a fixed latency in code beats (Fig. 4 of the paper).
//!
//! The crate provides:
//!
//! * [`geom`] — integer grid geometry (coordinates, rectangles, directions).
//! * [`pauli`] — single- and multi-qubit Pauli operators used to describe logical
//!   measurements.
//! * [`cell`] — cell kinds (data, auxiliary, scan, register, port, factory) and
//!   occupancy.
//! * [`cow`] — the copy-on-write [`Page`] behind O(1) simulator
//!   snapshot/fork: cloning shares storage, the first write copies.
//! * [`grid`] — the [`CellGrid`] occupancy map with path finding on
//!   vacant cells, used by the SAM models to simulate sliding-puzzle loads.
//! * [`patch`] — logical patches and boundary orientations.
//! * [`protocol`] — primitive fault-tolerant protocols and their code-beat
//!   latencies.
//! * [`query`] — the [`VacancyIndex`] and
//!   [`PathScratch`] acceleration structures behind the
//!   grid's nearest-vacant and vacant-path queries.
//! * [`timing`] — the [`Beats`] time unit.
//!
//! # Example
//!
//! ```
//! use lsqca_lattice::grid::CellGrid;
//! use lsqca_lattice::geom::Coord;
//! use lsqca_lattice::cell::QubitTag;
//!
//! // A 4x4 memory region holding one logical qubit.
//! let mut grid = CellGrid::new(4, 4);
//! grid.place(QubitTag(7), Coord::new(2, 1)).unwrap();
//! assert_eq!(grid.position_of(QubitTag(7)), Some(Coord::new(2, 1)));
//! assert_eq!(grid.occupied_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod cow;
pub mod error;
pub mod geom;
pub mod grid;
pub mod patch;
pub mod pauli;
pub mod protocol;
pub mod query;
pub mod timing;

pub use cell::{CellKind, CellState, QubitTag};
pub use cow::Page;
pub use error::LatticeError;
pub use geom::{Coord, Direction, Rect};
pub use grid::CellGrid;
pub use patch::{BoundaryOrientation, Patch, PatchId};
pub use pauli::{Pauli, PauliProduct};
pub use protocol::{PrimitiveOp, ProtocolLatencies};
pub use query::{PathScratch, VacancyIndex};
pub use timing::Beats;
