//! Integer geometry on the 2D cell grid.
//!
//! Surface-code cells are arranged on a rectangular grid; all positions are
//! addressed by non-negative integer [`Coord`]s measured in cells. The SAM
//! latency models only need Manhattan-style metrics (Chebyshev distance for
//! diagonal-capable moves, per-axis distances for scan-line seeks), which live
//! here next to the coordinate type.

use std::fmt;

/// A cell coordinate on the 2D grid: `x` grows to the right, `y` grows downward.
///
/// ```
/// use lsqca_lattice::geom::Coord;
/// let a = Coord::new(1, 2);
/// let b = Coord::new(4, 6);
/// assert_eq!(a.manhattan_distance(b), 7);
/// assert_eq!(a.chebyshev_distance(b), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Horizontal position in cells, growing to the right.
    pub x: u32,
    /// Vertical position in cells, growing downward.
    pub y: u32,
}

impl Coord {
    /// Creates a new coordinate.
    pub const fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Coord = Coord::new(0, 0);

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Chebyshev (L∞) distance to `other` — the number of king moves.
    pub fn chebyshev_distance(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }

    /// Horizontal distance (|Δx|) to `other`.
    pub fn dx(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x)
    }

    /// Vertical distance (|Δy|) to `other`.
    pub fn dy(self, other: Coord) -> u32 {
        self.y.abs_diff(other.y)
    }

    /// Returns the coordinate shifted one cell in `direction`, or `None` if the
    /// shift would leave the non-negative quadrant.
    pub fn step(self, direction: Direction) -> Option<Coord> {
        let (dx, dy) = direction.offset();
        let x = self.x.checked_add_signed(dx)?;
        let y = self.y.checked_add_signed(dy)?;
        Some(Coord::new(x, y))
    }

    /// The four edge-adjacent neighbors that remain in the non-negative quadrant.
    pub fn neighbors(self) -> impl Iterator<Item = Coord> {
        Direction::ALL.into_iter().filter_map(move |d| self.step(d))
    }

    /// True if `other` is edge-adjacent to `self`.
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan_distance(other) == 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u32, u32)> for Coord {
    fn from((x, y): (u32, u32)) -> Self {
        Coord::new(x, y)
    }
}

/// One of the four lattice directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards negative `y`.
    North,
    /// Towards positive `y`.
    South,
    /// Towards positive `x`.
    East,
    /// Towards negative `x`.
    West,
}

impl Direction {
    /// All four directions, in a fixed order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The (dx, dy) unit offset of this direction.
    pub fn offset(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::South => (0, 1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
        }
    }

    /// The direction pointing the opposite way.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// True if this direction is horizontal (east or west).
    pub fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::East => "east",
            Direction::West => "west",
        };
        f.write_str(s)
    }
}

/// An axis-aligned rectangle of cells, defined by its inclusive top-left corner
/// and its width/height in cells.
///
/// ```
/// use lsqca_lattice::geom::{Coord, Rect};
/// let r = Rect::new(Coord::new(1, 1), 3, 2);
/// assert_eq!(r.area(), 6);
/// assert!(r.contains(Coord::new(3, 2)));
/// assert!(!r.contains(Coord::new(4, 2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Top-left (minimum-x, minimum-y) corner, inclusive.
    pub origin: Coord,
    /// Width in cells (extent along x).
    pub width: u32,
    /// Height in cells (extent along y).
    pub height: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and dimensions.
    pub const fn new(origin: Coord, width: u32, height: u32) -> Self {
        Rect {
            origin,
            width,
            height,
        }
    }

    /// Number of cells covered by the rectangle.
    pub fn area(self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// True if `coord` lies inside the rectangle.
    pub fn contains(self, coord: Coord) -> bool {
        coord.x >= self.origin.x
            && coord.y >= self.origin.y
            && coord.x < self.origin.x + self.width
            && coord.y < self.origin.y + self.height
    }

    /// Iterates over every cell in the rectangle in row-major order.
    pub fn cells(self) -> impl Iterator<Item = Coord> {
        let Rect {
            origin,
            width,
            height,
        } = self;
        (0..height)
            .flat_map(move |dy| (0..width).map(move |dx| Coord::new(origin.x + dx, origin.y + dy)))
    }

    /// The exclusive maximum x coordinate.
    pub fn max_x(self) -> u32 {
        self.origin.x + self.width
    }

    /// The exclusive maximum y coordinate.
    pub fn max_y(self) -> u32 {
        self.origin.y + self.height
    }

    /// True if the two rectangles share at least one cell.
    pub fn intersects(self, other: Rect) -> bool {
        self.origin.x < other.max_x()
            && other.origin.x < self.max_x()
            && self.origin.y < other.max_y()
            && other.origin.y < self.max_y()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} at {}", self.width, self.height, self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Coord::new(2, 3);
        let b = Coord::new(5, 1);
        assert_eq!(a.manhattan_distance(b), 5);
        assert_eq!(a.chebyshev_distance(b), 3);
        assert_eq!(a.dx(b), 3);
        assert_eq!(a.dy(b), 2);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn step_stays_in_quadrant() {
        assert_eq!(Coord::ORIGIN.step(Direction::North), None);
        assert_eq!(Coord::ORIGIN.step(Direction::West), None);
        assert_eq!(Coord::ORIGIN.step(Direction::South), Some(Coord::new(0, 1)));
        assert_eq!(Coord::ORIGIN.step(Direction::East), Some(Coord::new(1, 0)));
    }

    #[test]
    fn neighbors_of_interior_cell() {
        let n: Vec<_> = Coord::new(2, 2).neighbors().collect();
        assert_eq!(n.len(), 4);
        assert!(n.contains(&Coord::new(2, 1)));
        assert!(n.contains(&Coord::new(2, 3)));
        assert!(n.contains(&Coord::new(1, 2)));
        assert!(n.contains(&Coord::new(3, 2)));
    }

    #[test]
    fn neighbors_of_origin_are_clipped() {
        let n: Vec<_> = Coord::ORIGIN.neighbors().collect();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn adjacency() {
        assert!(Coord::new(1, 1).is_adjacent(Coord::new(1, 2)));
        assert!(!Coord::new(1, 1).is_adjacent(Coord::new(2, 2)));
        assert!(!Coord::new(1, 1).is_adjacent(Coord::new(1, 1)));
    }

    #[test]
    fn direction_round_trips() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.offset();
            let (ox, oy) = d.opposite().offset();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
        assert!(Direction::East.is_horizontal());
        assert!(!Direction::North.is_horizontal());
    }

    #[test]
    fn rect_contains_and_area() {
        let r = Rect::new(Coord::new(2, 2), 3, 4);
        assert_eq!(r.area(), 12);
        assert!(r.contains(Coord::new(2, 2)));
        assert!(r.contains(Coord::new(4, 5)));
        assert!(!r.contains(Coord::new(5, 5)));
        assert!(!r.contains(Coord::new(4, 6)));
        assert!(!r.contains(Coord::new(1, 3)));
    }

    #[test]
    fn rect_cells_enumerates_all() {
        let r = Rect::new(Coord::new(1, 1), 2, 3);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], Coord::new(1, 1));
        assert_eq!(cells[5], Coord::new(2, 3));
        assert!(cells.iter().all(|&c| r.contains(c)));
    }

    #[test]
    fn rect_intersections() {
        let a = Rect::new(Coord::new(0, 0), 3, 3);
        let b = Rect::new(Coord::new(2, 2), 3, 3);
        let c = Rect::new(Coord::new(3, 0), 2, 2);
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        assert!(!a.intersects(c));
        assert!(!c.intersects(a));
    }
}
