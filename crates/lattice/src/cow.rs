//! Copy-on-write pages for O(1) snapshot/fork of simulator state.
//!
//! A [`Page`] wraps one logically-owned chunk of state (a cell map, a
//! position table, a checkout-ledger bit set, a vacancy-index ring set) in a
//! shared, versioned handle. Cloning a page is a reference-count bump, so a
//! snapshot or fork of a structure built from pages is O(pages), independent
//! of how much state the pages hold. The first mutation through
//! [`Page::make_mut`] after a clone copies that page only; every untouched
//! page stays shared with the parent for the lifetime of both.
//!
//! Reads go through `Deref`, so `page[i]`, `page.iter()`, and `&page[..]`
//! compile unchanged at call sites. Writes are explicit: `page.make_mut()`
//! returns `&mut T`, copying first only when the storage is shared. When the
//! page is uniquely owned — the steady state inside a run — `make_mut` is a
//! reference-count check and a branch, so hot loops that hoist the `&mut T`
//! out of the loop pay nothing at all.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A copy-on-write chunk of state: cheap to clone, copied on first write.
///
/// ```
/// use lsqca_lattice::Page;
/// let mut parent: Page<Vec<u32>> = Page::new(vec![1, 2, 3]);
/// let mut fork = parent.clone();           // O(1): both share one buffer
/// assert!(fork.shares_storage_with(&parent));
/// fork.make_mut()[0] = 9;                  // copies the buffer, then writes
/// assert!(!fork.shares_storage_with(&parent));
/// assert_eq!(parent[0], 1);
/// assert_eq!(fork[0], 9);
/// parent.make_mut().push(4);               // unique again: mutates in place
/// assert_eq!(*parent, vec![1, 2, 3, 4]);
/// ```
pub struct Page<T>(Arc<T>);

impl<T> Page<T> {
    /// Wraps `value` in a fresh, uniquely-owned page.
    pub fn new(value: T) -> Self {
        Page(Arc::new(value))
    }

    /// True if `self` and `other` share one underlying buffer (i.e. neither
    /// side has written since they were cloned from each other).
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T: Clone> Page<T> {
    /// Mutable access, copying the underlying value first if it is shared.
    ///
    /// The unique case — the steady state inside a simulation run — is a
    /// reference-count check and a branch; no copy, no allocation.
    pub fn make_mut(&mut self) -> &mut T {
        Arc::make_mut(&mut self.0)
    }

    /// Mutable access only if the page is uniquely owned; `None` when the
    /// storage is shared. Lets resets clear a unique buffer in place while
    /// shared buffers are replaced wholesale instead of being copied just to
    /// be overwritten. (Named to avoid shadowing `Vec::get_mut` behind the
    /// `Deref`.)
    pub fn unique_mut(&mut self) -> Option<&mut T> {
        Arc::get_mut(&mut self.0)
    }

    /// Replaces the page's content, reusing the buffer when uniquely owned
    /// and detaching from any sharers otherwise (they keep the old content).
    pub fn set(&mut self, value: T) {
        match Arc::get_mut(&mut self.0) {
            Some(slot) => *slot = value,
            None => self.0 = Arc::new(value),
        }
    }
}

impl<T> Deref for Page<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> Clone for Page<T> {
    fn clone(&self) -> Self {
        Page(Arc::clone(&self.0))
    }
}

impl<T: Default> Default for Page<T> {
    fn default() -> Self {
        Page::new(T::default())
    }
}

impl<T> From<T> for Page<T> {
    fn from(value: T) -> Self {
        Page::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Page<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        T::fmt(self, f)
    }
}

impl<T: fmt::Display> fmt::Display for Page<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        T::fmt(self, f)
    }
}

/// Content equality: two pages compare equal when their values do, shared
/// storage or not (pointer identity is an optimization, never an observable).
impl<T: PartialEq> PartialEq for Page<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || **self == **other
    }
}

impl<T: Eq> Eq for Page<T> {}

impl<T: std::hash::Hash> std::hash::Hash for Page<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_until_first_write() {
        let mut a = Page::new(vec![1u8, 2, 3]);
        let b = a.clone();
        assert!(a.shares_storage_with(&b));
        assert_eq!(a, b);
        a.make_mut()[1] = 9;
        assert!(!a.shares_storage_with(&b));
        assert_eq!(*a, vec![1, 9, 3]);
        assert_eq!(*b, vec![1, 2, 3]);
        assert_ne!(a, b);
    }

    #[test]
    fn unique_pages_mutate_in_place() {
        let mut page = Page::new(vec![0u64; 4]);
        let before = page.as_ptr();
        page.make_mut()[0] = 1;
        assert_eq!(page.as_ptr(), before, "unique make_mut must not copy");
        assert!(page.unique_mut().is_some());
        let fork = page.clone();
        assert!(page.unique_mut().is_none());
        drop(fork);
        assert!(page.unique_mut().is_some());
    }

    #[test]
    fn set_detaches_sharers() {
        let mut a = Page::new(String::from("parent"));
        let b = a.clone();
        a.set(String::from("fork"));
        assert_eq!(*a, "fork");
        assert_eq!(*b, "parent");
        // Unique set reuses the allocation path without disturbing equality.
        a.set(String::from("again"));
        assert_eq!(*a, "again");
    }

    #[test]
    fn equality_is_content_based() {
        let a = Page::new(vec![1, 2]);
        let b = Page::new(vec![1, 2]);
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "[1, 2]");
    }

    #[test]
    fn survivors_own_their_state_after_the_parent_dies() {
        let parent = Page::new(vec![7u32; 8]);
        let fork = parent.clone();
        drop(parent);
        assert_eq!(*fork, vec![7u32; 8]);
    }
}
