//! Surface-code cells: the unit tiles of an FTQC floorplan.
//!
//! Each cell is one surface-code patch worth of physical qubits. A floorplan
//! assigns every cell a role ([`CellKind`]) and tracks whether a logical qubit is
//! currently stored in it ([`CellState`]).

use std::fmt;

/// Identity of a logical data qubit stored on the lattice.
///
/// The tag is assigned by the compiler / memory controller and stays with the
/// qubit as it moves between cells, banks, and the computational register.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QubitTag(pub u32);

impl QubitTag {
    /// Returns the raw index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for QubitTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QubitTag {
    fn from(value: u32) -> Self {
        QubitTag(value)
    }
}

/// The architectural role a cell plays in a floorplan.
///
/// The LSQCA floorplans (Fig. 9, 10) use every one of these roles: SAM data
/// cells, the scan cell / scan line, CR register and auxiliary cells, ports
/// between regions, and magic-state-factory cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Stores a logical data qubit in a SAM bank or conventional floorplan.
    Data,
    /// Empty space used as routing / lattice-surgery ancilla.
    Auxiliary,
    /// The movable vacancy of a point SAM (or a cell of a line SAM's scan line).
    Scan,
    /// A register cell of the computational register that holds a loaded qubit.
    Register,
    /// A port cell connecting two regions (SAM↔CR or CR↔MSF).
    Port,
    /// A cell belonging to a magic-state factory.
    Factory,
}

impl CellKind {
    /// True if a logical data qubit may rest in this cell between operations.
    pub fn can_store_data(self) -> bool {
        matches!(
            self,
            CellKind::Data | CellKind::Register | CellKind::Port | CellKind::Scan
        )
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Data => "data",
            CellKind::Auxiliary => "auxiliary",
            CellKind::Scan => "scan",
            CellKind::Register => "register",
            CellKind::Port => "port",
            CellKind::Factory => "factory",
        };
        f.write_str(s)
    }
}

/// Occupancy state of a single cell.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellState {
    /// No logical qubit is stored here; the cell can act as surgery ancilla.
    #[default]
    Vacant,
    /// A logical qubit is stored here.
    Occupied(QubitTag),
}

impl CellState {
    /// True if the cell holds no logical qubit.
    pub fn is_vacant(self) -> bool {
        matches!(self, CellState::Vacant)
    }

    /// Returns the occupant, if any.
    pub fn occupant(self) -> Option<QubitTag> {
        match self {
            CellState::Vacant => None,
            CellState::Occupied(q) => Some(q),
        }
    }
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellState::Vacant => f.write_str("vacant"),
            CellState::Occupied(q) => write!(f, "occupied by {q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_tag_display_and_conversion() {
        let q = QubitTag::from(12u32);
        assert_eq!(q.index(), 12);
        assert_eq!(q.to_string(), "q12");
    }

    #[test]
    fn cell_kind_data_storage_rules() {
        assert!(CellKind::Data.can_store_data());
        assert!(CellKind::Register.can_store_data());
        assert!(CellKind::Port.can_store_data());
        assert!(CellKind::Scan.can_store_data());
        assert!(!CellKind::Auxiliary.can_store_data());
        assert!(!CellKind::Factory.can_store_data());
    }

    #[test]
    fn cell_state_occupancy() {
        let vacant = CellState::Vacant;
        let occupied = CellState::Occupied(QubitTag(3));
        assert!(vacant.is_vacant());
        assert!(!occupied.is_vacant());
        assert_eq!(vacant.occupant(), None);
        assert_eq!(occupied.occupant(), Some(QubitTag(3)));
        assert_eq!(CellState::default(), CellState::Vacant);
    }

    #[test]
    fn displays_are_nonempty() {
        for kind in [
            CellKind::Data,
            CellKind::Auxiliary,
            CellKind::Scan,
            CellKind::Register,
            CellKind::Port,
            CellKind::Factory,
        ] {
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(CellState::Vacant.to_string(), "vacant");
        assert_eq!(
            CellState::Occupied(QubitTag(1)).to_string(),
            "occupied by q1"
        );
    }
}
