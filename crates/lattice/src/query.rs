//! Lattice query acceleration structures.
//!
//! The SAM models ask the occupancy grid two questions on every simulated
//! memory access: *which vacant cell is nearest the bank port?* (stores and
//! in-memory two-qubit accesses) and *how far must the scan vacancy walk?*
//! (routing through empty space). Both used to cost O(cells) per query — a
//! full linear scan and a `HashMap`-frontier BFS respectively — which made
//! point-SAM simulation ~2.5× slower per instruction than line-SAM.
//!
//! This module holds the two structures that remove those costs:
//!
//! * [`VacancyIndex`] — vacant cells bucketed by Manhattan distance to a
//!   registered **anchor** (the bank port), maintained incrementally by the
//!   grid's `place`/`remove`/`relocate`. `nearest_vacant(anchor)` becomes an
//!   amortized O(1) bucket read instead of an O(cells) scan.
//! * [`PathScratch`] — a reusable dense `Vec<u32>` distance grid for the
//!   vacant-path BFS, replacing the per-query `HashMap<Coord, u32>`. Visited
//!   marks are epoch-stamped so reusing the scratch across queries costs no
//!   clearing pass.

use crate::geom::Coord;
use std::collections::VecDeque;

/// Incrementally-maintained index of vacant cells, bucketed by Manhattan
/// distance to a fixed anchor coordinate.
///
/// Cell indices inside each bucket are kept sorted ascending; since a cell
/// index is `y * width + x`, ascending index order is exactly the row-major
/// `(y, x)` tie-break of the legacy linear scan, so the index answers are
/// bit-identical to `min_by_key(|c| (manhattan, y, x))`.
#[derive(Debug, Clone)]
pub struct VacancyIndex {
    anchor: Coord,
    width: u32,
    /// `rings[d]` holds the cell indices of vacancies at distance `d` from the
    /// anchor, sorted ascending (row-major order).
    rings: Vec<Vec<u32>>,
    /// Index of the first possibly non-empty ring; maintained so that
    /// [`VacancyIndex::nearest`] is a plain bucket read.
    min_ring: usize,
    /// Total number of vacancies tracked.
    len: usize,
}

impl VacancyIndex {
    /// Builds the index for a `width × height` grid from an iterator over the
    /// currently vacant cells.
    pub fn new(
        anchor: Coord,
        width: u32,
        height: u32,
        vacancies: impl Iterator<Item = Coord>,
    ) -> Self {
        let max_distance = (width - 1 + height - 1) as usize;
        let mut index = VacancyIndex {
            anchor,
            width,
            rings: vec![Vec::new(); max_distance + 1],
            min_ring: max_distance + 1,
            len: 0,
        };
        for coord in vacancies {
            index.insert(coord);
        }
        index
    }

    /// The anchor this index accelerates queries against.
    pub fn anchor(&self) -> Coord {
        self.anchor
    }

    /// Number of vacancies currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no vacancy is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_index(&self, coord: Coord) -> u32 {
        coord.y * self.width + coord.x
    }

    fn decode(&self, index: u32) -> Coord {
        Coord::new(index % self.width, index / self.width)
    }

    /// Records that `coord` became vacant. O(ring) for the sorted insert.
    pub fn insert(&mut self, coord: Coord) {
        let d = coord.manhattan_distance(self.anchor) as usize;
        let idx = self.cell_index(coord);
        let ring = &mut self.rings[d];
        if let Err(pos) = ring.binary_search(&idx) {
            ring.insert(pos, idx);
            self.len += 1;
            self.min_ring = self.min_ring.min(d);
        }
    }

    /// Records that `coord` became occupied. O(ring) for the sorted removal,
    /// plus an amortized advance of the first-non-empty hint.
    pub fn remove(&mut self, coord: Coord) {
        let d = coord.manhattan_distance(self.anchor) as usize;
        let idx = self.cell_index(coord);
        let ring = &mut self.rings[d];
        if let Ok(pos) = ring.binary_search(&idx) {
            ring.remove(pos);
            self.len -= 1;
            while self.min_ring < self.rings.len() && self.rings[self.min_ring].is_empty() {
                self.min_ring += 1;
            }
        }
    }

    /// The vacant cell nearest the anchor, ties broken row-major — the same
    /// answer as the legacy linear scan, in O(1).
    pub fn nearest(&self) -> Option<Coord> {
        self.rings
            .get(self.min_ring)?
            .first()
            .map(|&idx| self.decode(idx))
    }

    /// Removes and returns the vacant cell nearest the anchor. Equivalent to
    /// `nearest()` followed by `remove()`, but the removal pops the front of
    /// the minimal ring directly instead of binary-searching for it.
    pub fn take_nearest(&mut self) -> Option<Coord> {
        let ring = self.rings.get_mut(self.min_ring)?;
        debug_assert!(!ring.is_empty(), "min_ring always points at a vacancy");
        let idx = ring.remove(0);
        self.len -= 1;
        while self.min_ring < self.rings.len() && self.rings[self.min_ring].is_empty() {
            self.min_ring += 1;
        }
        Some(self.decode(idx))
    }

    /// Records that `freed` became vacant and `taken` became occupied in one
    /// pass — the index update of a fused relocation. Equivalent to
    /// `insert(freed)` followed by `remove(taken)`, but when both cells sit on
    /// the same ring the first-non-empty hint needs no maintenance at all, and
    /// the hint is otherwise walked once instead of twice.
    pub fn swap(&mut self, freed: Coord, taken: Coord) {
        if freed == taken {
            return;
        }
        let d_freed = freed.manhattan_distance(self.anchor) as usize;
        let d_taken = taken.manhattan_distance(self.anchor) as usize;
        let freed_idx = self.cell_index(freed);
        let taken_idx = self.cell_index(taken);
        if d_freed == d_taken {
            // One ring gains a cell and loses another: its size (and therefore
            // `min_ring` and `len`) is unchanged.
            let ring = &mut self.rings[d_freed];
            if let Ok(pos) = ring.binary_search(&taken_idx) {
                ring.remove(pos);
            } else {
                self.len += 1;
                self.min_ring = self.min_ring.min(d_freed);
            }
            if let Err(pos) = ring.binary_search(&freed_idx) {
                ring.insert(pos, freed_idx);
            } else {
                self.len -= 1;
            }
            while self.min_ring < self.rings.len() && self.rings[self.min_ring].is_empty() {
                self.min_ring += 1;
            }
            return;
        }
        self.insert(freed);
        self.remove(taken);
    }
}

/// Reusable dense scratch space for the vacant-path BFS.
///
/// Holds a `Vec<u32>` distance grid plus an epoch-stamped visited mark per
/// cell, so one allocation serves any number of queries on grids up to the
/// largest size seen; no hash map and no per-query clearing pass.
#[derive(Debug, Clone, Default)]
pub struct PathScratch {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: VecDeque<u32>,
}

impl PathScratch {
    /// Creates an empty scratch; grows on first use.
    pub fn new() -> Self {
        PathScratch::default()
    }

    /// Prepares the scratch for a query over `cells` grid cells.
    pub(crate) fn begin(&mut self, cells: usize) {
        if self.dist.len() < cells {
            self.dist.resize(cells, 0);
            self.stamp.resize(cells, 0);
        }
        self.queue.clear();
        // A fresh epoch invalidates every previous visited mark. On wrap-around
        // the stamps are cleared so stale marks from epoch 0 cannot alias.
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// True if `cell` was visited in the current query.
    pub(crate) fn visited(&self, cell: u32) -> bool {
        self.stamp[cell as usize] == self.epoch
    }

    /// Marks `cell` at BFS distance `d` and enqueues it.
    pub(crate) fn mark(&mut self, cell: u32, d: u32) {
        self.stamp[cell as usize] = self.epoch;
        self.dist[cell as usize] = d;
        self.queue.push_back(cell);
    }

    /// Pops the next frontier cell with its distance.
    pub(crate) fn pop(&mut self) -> Option<(u32, u32)> {
        let cell = self.queue.pop_front()?;
        Some((cell, self.dist[cell as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_tracks_inserts_and_removes() {
        let mut index = VacancyIndex::new(Coord::new(0, 1), 4, 4, std::iter::empty());
        assert!(index.is_empty());
        assert_eq!(index.nearest(), None);
        index.insert(Coord::new(3, 3));
        index.insert(Coord::new(1, 1));
        assert_eq!(index.len(), 2);
        assert_eq!(index.nearest(), Some(Coord::new(1, 1)));
        index.remove(Coord::new(1, 1));
        assert_eq!(index.nearest(), Some(Coord::new(3, 3)));
        index.remove(Coord::new(3, 3));
        assert_eq!(index.nearest(), None);
    }

    #[test]
    fn ties_break_row_major() {
        // (2, 0) and (0, 2) are both at distance 2 from (1, 1); the smaller
        // (y, x) must win, matching the legacy scan order.
        let mut index = VacancyIndex::new(Coord::new(1, 1), 4, 4, std::iter::empty());
        index.insert(Coord::new(0, 2));
        index.insert(Coord::new(2, 0));
        assert_eq!(index.nearest(), Some(Coord::new(2, 0)));
    }

    #[test]
    fn duplicate_inserts_and_missing_removes_are_ignored() {
        let mut index = VacancyIndex::new(Coord::ORIGIN, 3, 3, std::iter::empty());
        index.insert(Coord::new(2, 2));
        index.insert(Coord::new(2, 2));
        assert_eq!(index.len(), 1);
        index.remove(Coord::new(1, 1));
        assert_eq!(index.len(), 1);
        assert_eq!(index.nearest(), Some(Coord::new(2, 2)));
    }

    #[test]
    fn take_nearest_pops_the_minimal_ring() {
        let mut index = VacancyIndex::new(Coord::ORIGIN, 4, 4, std::iter::empty());
        assert_eq!(index.take_nearest(), None);
        index.insert(Coord::new(3, 3));
        index.insert(Coord::new(1, 0));
        index.insert(Coord::new(0, 1));
        // Ties at distance 1 break row-major: (1,0) before (0,1).
        assert_eq!(index.take_nearest(), Some(Coord::new(1, 0)));
        assert_eq!(index.take_nearest(), Some(Coord::new(0, 1)));
        assert_eq!(index.len(), 1);
        assert_eq!(index.take_nearest(), Some(Coord::new(3, 3)));
        assert!(index.is_empty());
        assert_eq!(index.take_nearest(), None);
    }

    #[test]
    fn swap_equals_insert_then_remove() {
        let cases = [
            // Same ring (both at distance 2 from the origin).
            (Coord::new(2, 0), Coord::new(0, 2)),
            // Different rings, freed nearer.
            (Coord::new(1, 0), Coord::new(3, 3)),
            // Different rings, taken nearer.
            (Coord::new(3, 2), Coord::new(0, 1)),
        ];
        for (freed, taken) in cases {
            let vacancies = [Coord::new(0, 1), Coord::new(2, 2), taken];
            let mut fused = VacancyIndex::new(Coord::ORIGIN, 4, 4, vacancies.iter().copied());
            let mut legacy = fused.clone();
            fused.swap(freed, taken);
            legacy.insert(freed);
            legacy.remove(taken);
            assert_eq!(fused.len(), legacy.len());
            assert_eq!(fused.nearest(), legacy.nearest());
            // Drain both to compare full content.
            while let Some(a) = fused.take_nearest() {
                assert_eq!(Some(a), legacy.take_nearest());
            }
            assert!(legacy.is_empty());
        }
        // Degenerate same-cell swap is a no-op.
        let mut index = VacancyIndex::new(Coord::ORIGIN, 3, 3, std::iter::empty());
        index.insert(Coord::new(1, 1));
        index.swap(Coord::new(1, 1), Coord::new(1, 1));
        assert_eq!(index.len(), 1);
        assert_eq!(index.nearest(), Some(Coord::new(1, 1)));
    }

    #[test]
    fn scratch_epochs_isolate_queries() {
        let mut scratch = PathScratch::new();
        scratch.begin(9);
        scratch.mark(4, 0);
        assert!(scratch.visited(4));
        assert_eq!(scratch.pop(), Some((4, 0)));
        scratch.begin(9);
        assert!(!scratch.visited(4));
        assert_eq!(scratch.pop(), None);
    }
}
