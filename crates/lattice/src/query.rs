//! Lattice query acceleration structures.
//!
//! The SAM models ask the occupancy grid two questions on every simulated
//! memory access: *which vacant cell is nearest the bank port?* (stores and
//! in-memory two-qubit accesses) and *how far must the scan vacancy walk?*
//! (routing through empty space). Both used to cost O(cells) per query — a
//! full linear scan and a `HashMap`-frontier BFS respectively — which made
//! point-SAM simulation ~2.5× slower per instruction than line-SAM.
//!
//! This module holds the two structures that remove those costs:
//!
//! * [`VacancyIndex`] — vacant cells bucketed by Manhattan distance to a
//!   registered **anchor** (the bank port), maintained incrementally by the
//!   grid's `place`/`remove`/`relocate`. `nearest_vacant(anchor)` becomes an
//!   amortized O(1) bucket read instead of an O(cells) scan.
//! * [`PathScratch`] — a reusable dense `Vec<u32>` distance grid for the
//!   vacant-path BFS, replacing the per-query `HashMap<Coord, u32>`. Visited
//!   marks are epoch-stamped so reusing the scratch across queries costs no
//!   clearing pass.

use crate::geom::Coord;
use std::collections::VecDeque;

/// Incrementally-maintained index of vacant cells, bucketed by Manhattan
/// distance to a fixed anchor coordinate.
///
/// Each distance-`d` bucket is a **bitmask** over the ring's fixed slot
/// layout rather than a sorted `Vec` of cell indices: slot `2·r + side`
/// covers the cell in the ring's `r`-th row (`y = anchor.y - d + r`) on the
/// left (`x = anchor.x - rem`) or right (`x = anchor.x + rem`) flank, where
/// `rem = d - |y - anchor.y|`. Slots whose cell falls outside the grid are
/// simply never set. Ascending slot order is ascending `(y, x)` order, so
/// scanning for the lowest set bit reproduces the row-major tie-break of the
/// legacy linear scan bit-for-bit — and arbitrary insertion/removal is a
/// single O(1) bit flip instead of a binary search plus `Vec` shuffle.
#[derive(Debug, Clone)]
pub struct VacancyIndex {
    anchor: Coord,
    /// All rings' mask words, concatenated; ring `d` spans
    /// `words[offsets[d]..offsets[d + 1]]` and owns `4d + 2` slots.
    words: Vec<u64>,
    /// Per-ring start offset into `words` (`rings + 1` entries).
    offsets: Vec<u32>,
    /// Number of set bits per ring, so emptiness checks are O(1).
    counts: Vec<u32>,
    /// Index of the first non-empty ring; maintained so recomputing the
    /// nearest cache starts at the right ring.
    min_ring: usize,
    /// Total number of vacancies tracked.
    len: usize,
    /// Cached minimal `(ring, slot, coord)`: the nearest vacancy, maintained
    /// incrementally so [`VacancyIndex::nearest`] — the query every simulated
    /// store issues — is a single field read. Inserting a nearer cell
    /// replaces it in O(1); removing the cached cell rescans the minimal
    /// ring's one or two mask words.
    cached: Option<(u32, u32, Coord)>,
}

impl VacancyIndex {
    /// Builds the index for a `width × height` grid from an iterator over the
    /// currently vacant cells.
    pub fn new(
        anchor: Coord,
        width: u32,
        height: u32,
        vacancies: impl Iterator<Item = Coord>,
    ) -> Self {
        // Farthest grid cell from the anchor, not the grid diameter: rings
        // beyond it can never hold a vacancy.
        let max_distance =
            (anchor.x.max(width - 1 - anchor.x) + anchor.y.max(height - 1 - anchor.y)) as usize;
        let rings = max_distance + 1;
        let mut offsets = Vec::with_capacity(rings + 1);
        let mut total = 0u32;
        for d in 0..rings {
            offsets.push(total);
            total += Self::ring_words(d);
        }
        offsets.push(total);
        let mut index = VacancyIndex {
            anchor,
            words: vec![0; total as usize],
            offsets,
            counts: vec![0; rings],
            min_ring: rings,
            len: 0,
            cached: None,
        };
        for coord in vacancies {
            index.insert(coord);
        }
        index
    }

    /// Words needed for ring `d`'s `4d + 2` slots.
    #[inline]
    fn ring_words(d: usize) -> u32 {
        (4 * d + 2).div_ceil(64) as u32
    }

    /// The anchor this index accelerates queries against.
    pub fn anchor(&self) -> Coord {
        self.anchor
    }

    /// Number of vacancies currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no vacancy is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `(ring, slot)` coordinates of `coord` in the fixed ring layout.
    #[inline]
    fn slot_of(&self, coord: Coord) -> (u32, u32) {
        let d = coord.manhattan_distance(self.anchor);
        // `d >= |coord.y - anchor.y|`, so the row offset never underflows.
        let row = coord.y + d - self.anchor.y;
        let side = u32::from(coord.x > self.anchor.x);
        (d, 2 * row + side)
    }

    /// The cell covered by `slot` of ring `d` (only called for set slots,
    /// which always decode to in-grid cells).
    #[inline]
    fn decode(&self, d: u32, slot: u32) -> Coord {
        let row = slot / 2;
        let y = self.anchor.y + row - d;
        let rem = d - y.abs_diff(self.anchor.y);
        let x = if slot % 2 == 1 {
            self.anchor.x + rem
        } else {
            self.anchor.x - rem
        };
        Coord::new(x, y)
    }

    /// Records that `coord` became vacant. One bit set plus a cache compare,
    /// O(1).
    pub fn insert(&mut self, coord: Coord) {
        let (d, slot) = self.slot_of(coord);
        let word = &mut self.words[self.offsets[d as usize] as usize + (slot / 64) as usize];
        let bit = 1u64 << (slot % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.counts[d as usize] += 1;
            self.len += 1;
            self.min_ring = self.min_ring.min(d as usize);
            // A nearer cell (ring, then slot = row-major order) replaces the
            // cached nearest.
            match self.cached {
                Some((cd, cs, _)) if (cd, cs) <= (d, slot) => {}
                _ => self.cached = Some((d, slot, coord)),
            }
        }
    }

    /// Records that `coord` became occupied. One bit cleared, O(1), plus a
    /// rescan of the minimal ring's mask words when the cached nearest cell
    /// is the one removed.
    pub fn remove(&mut self, coord: Coord) {
        let (d, slot) = self.slot_of(coord);
        let word = &mut self.words[self.offsets[d as usize] as usize + (slot / 64) as usize];
        let bit = 1u64 << (slot % 64);
        if *word & bit != 0 {
            *word &= !bit;
            self.counts[d as usize] -= 1;
            self.len -= 1;
            if let Some((cd, cs, _)) = self.cached {
                if (cd, cs) == (d, slot) {
                    self.recompute_nearest();
                }
            }
        }
    }

    /// First set slot of ring `d`, if any.
    #[inline]
    fn first_slot(&self, d: usize) -> Option<u32> {
        let start = self.offsets[d] as usize;
        let end = self.offsets[d + 1] as usize;
        for (i, &word) in self.words[start..end].iter().enumerate() {
            if word != 0 {
                return Some((i as u32) * 64 + word.trailing_zeros());
            }
        }
        None
    }

    /// Rebuilds the cached nearest cell: advance the first-non-empty ring
    /// hint, then scan that ring's (one or two) mask words.
    fn recompute_nearest(&mut self) {
        if self.len == 0 {
            self.min_ring = self.counts.len();
            self.cached = None;
            return;
        }
        while self.min_ring < self.counts.len() && self.counts[self.min_ring] == 0 {
            self.min_ring += 1;
        }
        let d = self.min_ring as u32;
        let slot = self
            .first_slot(self.min_ring)
            .expect("min_ring points at a non-empty ring");
        self.cached = Some((d, slot, self.decode(d, slot)));
    }

    /// The vacant cell nearest the anchor, ties broken row-major — the same
    /// answer as the legacy linear scan, served from the incrementally
    /// maintained cache in O(1).
    pub fn nearest(&self) -> Option<Coord> {
        self.cached.map(|(_, _, coord)| coord)
    }

    /// Removes and returns the vacant cell nearest the anchor. Equivalent to
    /// `nearest()` followed by `remove()`.
    pub fn take_nearest(&mut self) -> Option<Coord> {
        let (d, slot, coord) = self.cached?;
        self.words[self.offsets[d as usize] as usize + (slot / 64) as usize] &=
            !(1u64 << (slot % 64));
        self.counts[d as usize] -= 1;
        self.len -= 1;
        self.recompute_nearest();
        Some(coord)
    }

    /// Records that `freed` became vacant and `taken` became occupied in one
    /// call — the index update of a fused relocation. With bitmask rings both
    /// halves are O(1) bit flips, so this is plain `insert` + `remove`.
    pub fn swap(&mut self, freed: Coord, taken: Coord) {
        if freed == taken {
            return;
        }
        self.insert(freed);
        self.remove(taken);
    }
}

/// Reusable dense scratch space for the vacant-path BFS.
///
/// Holds a `Vec<u32>` distance grid plus an epoch-stamped visited mark per
/// cell, so one allocation serves any number of queries on grids up to the
/// largest size seen; no hash map and no per-query clearing pass.
#[derive(Debug, Clone, Default)]
pub struct PathScratch {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: VecDeque<u32>,
}

impl PathScratch {
    /// Creates an empty scratch; grows on first use.
    pub fn new() -> Self {
        PathScratch::default()
    }

    /// Prepares the scratch for a query over `cells` grid cells.
    pub(crate) fn begin(&mut self, cells: usize) {
        if self.dist.len() < cells {
            self.dist.resize(cells, 0);
            self.stamp.resize(cells, 0);
        }
        self.queue.clear();
        // A fresh epoch invalidates every previous visited mark. On wrap-around
        // the stamps are cleared so stale marks from epoch 0 cannot alias.
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
    }

    /// True if `cell` was visited in the current query.
    pub(crate) fn visited(&self, cell: u32) -> bool {
        self.stamp[cell as usize] == self.epoch
    }

    /// Marks `cell` at BFS distance `d` and enqueues it.
    pub(crate) fn mark(&mut self, cell: u32, d: u32) {
        self.stamp[cell as usize] = self.epoch;
        self.dist[cell as usize] = d;
        self.queue.push_back(cell);
    }

    /// Pops the next frontier cell with its distance.
    pub(crate) fn pop(&mut self) -> Option<(u32, u32)> {
        let cell = self.queue.pop_front()?;
        Some((cell, self.dist[cell as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_tracks_inserts_and_removes() {
        let mut index = VacancyIndex::new(Coord::new(0, 1), 4, 4, std::iter::empty());
        assert!(index.is_empty());
        assert_eq!(index.nearest(), None);
        index.insert(Coord::new(3, 3));
        index.insert(Coord::new(1, 1));
        assert_eq!(index.len(), 2);
        assert_eq!(index.nearest(), Some(Coord::new(1, 1)));
        index.remove(Coord::new(1, 1));
        assert_eq!(index.nearest(), Some(Coord::new(3, 3)));
        index.remove(Coord::new(3, 3));
        assert_eq!(index.nearest(), None);
    }

    #[test]
    fn ties_break_row_major() {
        // (2, 0) and (0, 2) are both at distance 2 from (1, 1); the smaller
        // (y, x) must win, matching the legacy scan order.
        let mut index = VacancyIndex::new(Coord::new(1, 1), 4, 4, std::iter::empty());
        index.insert(Coord::new(0, 2));
        index.insert(Coord::new(2, 0));
        assert_eq!(index.nearest(), Some(Coord::new(2, 0)));
    }

    #[test]
    fn duplicate_inserts_and_missing_removes_are_ignored() {
        let mut index = VacancyIndex::new(Coord::ORIGIN, 3, 3, std::iter::empty());
        index.insert(Coord::new(2, 2));
        index.insert(Coord::new(2, 2));
        assert_eq!(index.len(), 1);
        index.remove(Coord::new(1, 1));
        assert_eq!(index.len(), 1);
        assert_eq!(index.nearest(), Some(Coord::new(2, 2)));
    }

    #[test]
    fn take_nearest_pops_the_minimal_ring() {
        let mut index = VacancyIndex::new(Coord::ORIGIN, 4, 4, std::iter::empty());
        assert_eq!(index.take_nearest(), None);
        index.insert(Coord::new(3, 3));
        index.insert(Coord::new(1, 0));
        index.insert(Coord::new(0, 1));
        // Ties at distance 1 break row-major: (1,0) before (0,1).
        assert_eq!(index.take_nearest(), Some(Coord::new(1, 0)));
        assert_eq!(index.take_nearest(), Some(Coord::new(0, 1)));
        assert_eq!(index.len(), 1);
        assert_eq!(index.take_nearest(), Some(Coord::new(3, 3)));
        assert!(index.is_empty());
        assert_eq!(index.take_nearest(), None);
    }

    #[test]
    fn swap_equals_insert_then_remove() {
        let cases = [
            // Same ring (both at distance 2 from the origin).
            (Coord::new(2, 0), Coord::new(0, 2)),
            // Different rings, freed nearer.
            (Coord::new(1, 0), Coord::new(3, 3)),
            // Different rings, taken nearer.
            (Coord::new(3, 2), Coord::new(0, 1)),
        ];
        for (freed, taken) in cases {
            let vacancies = [Coord::new(0, 1), Coord::new(2, 2), taken];
            let mut fused = VacancyIndex::new(Coord::ORIGIN, 4, 4, vacancies.iter().copied());
            let mut legacy = fused.clone();
            fused.swap(freed, taken);
            legacy.insert(freed);
            legacy.remove(taken);
            assert_eq!(fused.len(), legacy.len());
            assert_eq!(fused.nearest(), legacy.nearest());
            // Drain both to compare full content.
            while let Some(a) = fused.take_nearest() {
                assert_eq!(Some(a), legacy.take_nearest());
            }
            assert!(legacy.is_empty());
        }
        // Degenerate same-cell swap is a no-op.
        let mut index = VacancyIndex::new(Coord::ORIGIN, 3, 3, std::iter::empty());
        index.insert(Coord::new(1, 1));
        index.swap(Coord::new(1, 1), Coord::new(1, 1));
        assert_eq!(index.len(), 1);
        assert_eq!(index.nearest(), Some(Coord::new(1, 1)));
    }

    #[test]
    fn scratch_epochs_isolate_queries() {
        let mut scratch = PathScratch::new();
        scratch.begin(9);
        scratch.mark(4, 0);
        assert!(scratch.visited(4));
        assert_eq!(scratch.pop(), Some((4, 0)));
        scratch.begin(9);
        assert!(!scratch.visited(4));
        assert_eq!(scratch.pop(), None);
    }
}
