//! Occupancy grid of surface-code cells.
//!
//! [`CellGrid`] tracks which cell each logical qubit currently occupies within one
//! rectangular region (a SAM bank, a conventional floorplan, ...). The SAM models
//! use it to simulate the sliding-puzzle load procedure: moving a target cell
//! requires vacant neighbours, and the scan cell is the vacancy that walks around
//! the grid. The grid therefore exposes vacancy-aware path finding in addition to
//! plain placement bookkeeping.

use crate::cell::{CellState, QubitTag};
use crate::error::LatticeError;
use crate::geom::Coord;
use crate::query::{PathScratch, VacancyIndex};
use std::fmt;

/// A rectangular grid of surface-code cells with logical-qubit occupancy.
///
/// Coordinates are local to the grid: `(0, 0)` is the top-left cell and the grid
/// spans `width × height` cells.
///
/// ```
/// use lsqca_lattice::{CellGrid, Coord, QubitTag};
/// let mut grid = CellGrid::new(3, 3);
/// grid.place(QubitTag(0), Coord::new(0, 0)).unwrap();
/// grid.place(QubitTag(1), Coord::new(1, 0)).unwrap();
/// assert_eq!(grid.vacant_count(), 7);
/// assert_eq!(grid.position_of(QubitTag(1)), Some(Coord::new(1, 0)));
/// grid.remove(QubitTag(0)).unwrap();
/// assert_eq!(grid.occupied_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CellGrid {
    width: u32,
    height: u32,
    cells: Vec<CellState>,
    /// Position per qubit tag, indexed directly by `QubitTag::index()` (tags
    /// are dense). Grown on demand; `None` for tags not on this grid. This
    /// replaces the former `HashMap<QubitTag, Coord>` so hot-path position
    /// lookups are single array reads. May carry trailing `None`s from
    /// removals; equality compares the canonical (trimmed) content.
    positions: Vec<Option<Coord>>,
    /// Number of occupied cells (`Some` entries in `positions`).
    occupied: usize,
    /// Distance-bucketed vacancy indices, one per registered anchor (bank
    /// port). Single-port banks register one; multi-port banks (the dual-port
    /// point SAM) register one per port. Derived acceleration state: excluded
    /// from equality, kept in sync by `place`/`remove`/`relocate`.
    vacancy: Vec<VacancyIndex>,
}

impl PartialEq for CellGrid {
    fn eq(&self, other: &Self) -> bool {
        fn canonical(positions: &[Option<Coord>]) -> &[Option<Coord>] {
            let mut len = positions.len();
            while len > 0 && positions[len - 1].is_none() {
                len -= 1;
            }
            &positions[..len]
        }
        self.width == other.width
            && self.height == other.height
            && self.cells == other.cells
            && canonical(&self.positions) == canonical(&other.positions)
    }
}

impl Eq for CellGrid {}

impl CellGrid {
    /// Creates an empty grid of `width × height` vacant cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        CellGrid {
            width,
            height,
            cells: vec![CellState::Vacant; (width * height) as usize],
            positions: Vec::new(),
            occupied: 0,
            vacancy: Vec::new(),
        }
    }

    /// Registers `anchor` (typically the bank port) and builds the
    /// [`VacancyIndex`] that makes `nearest_vacant(anchor)` amortized O(1).
    /// Re-registering replaces every previously registered anchor; use
    /// [`CellGrid::register_anchors`] for multi-port banks.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::OutOfBounds`] if `anchor` is outside the grid.
    pub fn register_anchor(&mut self, anchor: Coord) -> Result<(), LatticeError> {
        self.register_anchors(&[anchor])
    }

    /// Registers one vacancy index per anchor (one per bank port), replacing
    /// any previously registered set. Duplicate coordinates collapse to one
    /// index. Every anchor's `nearest_vacant` query becomes an O(1) ring
    /// read; mutations update all indices (multi-port banks register two).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::OutOfBounds`] if any anchor is outside the
    /// grid; nothing is registered in that case.
    pub fn register_anchors(&mut self, anchors: &[Coord]) -> Result<(), LatticeError> {
        for &anchor in anchors {
            self.check_bounds(anchor)?;
        }
        self.vacancy.clear();
        for &anchor in anchors {
            if self.vacancy.iter().any(|index| index.anchor() == anchor) {
                continue;
            }
            self.vacancy.push(VacancyIndex::new(
                anchor,
                self.width,
                self.height,
                self.vacant_cells(),
            ));
        }
        Ok(())
    }

    /// The first registered anchor, if any.
    pub fn anchor(&self) -> Option<Coord> {
        self.vacancy.first().map(VacancyIndex::anchor)
    }

    /// Every registered anchor, in registration order.
    pub fn anchors(&self) -> impl Iterator<Item = Coord> + '_ {
        self.vacancy.iter().map(VacancyIndex::anchor)
    }

    /// The vacancy index registered for `target`, if any.
    fn index_for(&self, target: Coord) -> Option<&VacancyIndex> {
        self.vacancy.iter().find(|index| index.anchor() == target)
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Number of occupied cells.
    pub fn occupied_count(&self) -> usize {
        self.occupied
    }

    /// Number of vacant cells.
    pub fn vacant_count(&self) -> usize {
        self.cell_count() as usize - self.occupied
    }

    /// True if `coord` lies inside the grid.
    pub fn in_bounds(&self, coord: Coord) -> bool {
        coord.x < self.width && coord.y < self.height
    }

    fn index(&self, coord: Coord) -> usize {
        (coord.y * self.width + coord.x) as usize
    }

    fn check_bounds(&self, coord: Coord) -> Result<(), LatticeError> {
        if self.in_bounds(coord) {
            Ok(())
        } else {
            Err(LatticeError::OutOfBounds {
                coord,
                width: self.width,
                height: self.height,
            })
        }
    }

    /// The state of the cell at `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::OutOfBounds`] if the coordinate is outside the grid.
    pub fn state(&self, coord: Coord) -> Result<CellState, LatticeError> {
        self.check_bounds(coord)?;
        Ok(self.cells[self.index(coord)])
    }

    /// True if the cell at `coord` exists and is vacant.
    pub fn is_vacant(&self, coord: Coord) -> bool {
        self.in_bounds(coord) && self.cells[self.index(coord)].is_vacant()
    }

    /// The occupant of `coord`, if the cell exists and is occupied.
    pub fn occupant(&self, coord: Coord) -> Option<QubitTag> {
        if !self.in_bounds(coord) {
            return None;
        }
        self.cells[self.index(coord)].occupant()
    }

    /// The current position of `qubit`, if it is on this grid.
    pub fn position_of(&self, qubit: QubitTag) -> Option<Coord> {
        self.positions.get(qubit.0 as usize).copied().flatten()
    }

    /// True if the qubit is stored on this grid.
    pub fn contains(&self, qubit: QubitTag) -> bool {
        self.position_of(qubit).is_some()
    }

    /// Places `qubit` on the vacant cell at `coord`.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::OutOfBounds`] if `coord` is outside the grid.
    /// * [`LatticeError::CellOccupied`] if the target cell already holds a qubit.
    /// * [`LatticeError::QubitAlreadyPlaced`] if the qubit is already on the grid.
    pub fn place(&mut self, qubit: QubitTag, coord: Coord) -> Result<(), LatticeError> {
        self.check_bounds(coord)?;
        if let Some(at) = self.position_of(qubit) {
            return Err(LatticeError::QubitAlreadyPlaced { qubit, at });
        }
        let idx = self.index(coord);
        if let Some(occupant) = self.cells[idx].occupant() {
            return Err(LatticeError::CellOccupied { coord, occupant });
        }
        self.cells[idx] = CellState::Occupied(qubit);
        for index in &mut self.vacancy {
            index.remove(coord);
        }
        self.set_position(qubit, Some(coord));
        Ok(())
    }

    fn set_position(&mut self, qubit: QubitTag, coord: Option<Coord>) {
        let idx = qubit.0 as usize;
        if idx >= self.positions.len() {
            if coord.is_none() {
                return;
            }
            self.positions.resize(idx + 1, None);
        }
        match (self.positions[idx], coord) {
            (None, Some(_)) => self.occupied += 1,
            (Some(_), None) => self.occupied -= 1,
            _ => {}
        }
        // Trailing `None`s are left in place — removals stay O(1) and
        // `PartialEq` compares the canonical content regardless; call
        // `canonicalize` to shrink the table explicitly.
        self.positions[idx] = coord;
    }

    /// Drops trailing `None` entries from the position table so its length
    /// reflects logical content rather than growth history. Equality already
    /// ignores the trailing entries; this only reclaims their memory.
    pub fn canonicalize(&mut self) {
        while self.positions.last() == Some(&None) {
            self.positions.pop();
        }
    }

    /// Removes `qubit` from the grid and returns the cell it occupied.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not on the grid.
    pub fn remove(&mut self, qubit: QubitTag) -> Result<Coord, LatticeError> {
        let coord = self
            .position_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })?;
        self.set_position(qubit, None);
        let idx = self.index(coord);
        self.cells[idx] = CellState::Vacant;
        for index in &mut self.vacancy {
            index.insert(coord);
        }
        Ok(coord)
    }

    /// Moves `qubit` to the vacant cell at `to`.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitNotPresent`] if the qubit is not on the grid.
    /// * [`LatticeError::OutOfBounds`] / [`LatticeError::CellOccupied`] for the target.
    pub fn relocate(&mut self, qubit: QubitTag, to: Coord) -> Result<(), LatticeError> {
        self.check_bounds(to)?;
        let from = self
            .position_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })?;
        if from == to {
            return Ok(());
        }
        let to_idx = self.index(to);
        if let Some(occupant) = self.cells[to_idx].occupant() {
            return Err(LatticeError::CellOccupied {
                coord: to,
                occupant,
            });
        }
        let from_idx = self.index(from);
        self.cells[from_idx] = CellState::Vacant;
        self.cells[to_idx] = CellState::Occupied(qubit);
        for index in &mut self.vacancy {
            index.insert(from);
            index.remove(to);
        }
        self.positions[qubit.0 as usize] = Some(to);
        Ok(())
    }

    /// Moves `qubit` into the vacant cell nearest `target` (Manhattan metric,
    /// ties broken row-major), treating the qubit's own cell as vacant, and
    /// returns `(from, to)`. Equivalent to `remove` → `nearest_vacant` →
    /// `place` but performed in a single pass: the position table is written
    /// once (the occupied count never moves), and the vacancy rings see one
    /// fused [`VacancyIndex::swap`] — or no update at all when the qubit
    /// already sits on the nearest vacancy-to-be, instead of the legacy
    /// insert/read/remove triple.
    ///
    /// When `target` is the registered anchor the candidate comes from the
    /// vacancy index in O(1); otherwise an outward ring search is used.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::QubitNotPresent`] if the qubit is not on the grid.
    pub fn relocate_into_nearest_vacancy(
        &mut self,
        qubit: QubitTag,
        target: Coord,
    ) -> Result<(Coord, Coord), LatticeError> {
        let from = self
            .position_of(qubit)
            .ok_or(LatticeError::QubitNotPresent { qubit })?;
        let key = |c: Coord| (c.manhattan_distance(target), c.y, c.x);
        let candidate = match self.index_for(target) {
            Some(index) => index.nearest(),
            None => self.ring_search(target, |c, cell| cell.is_vacant() || c == from),
        };
        // The qubit's own cell counts as vacant: removing it always leaves at
        // least one vacancy, so the destination always exists.
        let to = match candidate {
            Some(c) if key(c) < key(from) => c,
            _ => from,
        };
        if to == from {
            return Ok((from, from));
        }
        let from_idx = self.index(from);
        let to_idx = self.index(to);
        debug_assert!(self.cells[to_idx].is_vacant());
        self.cells[from_idx] = CellState::Vacant;
        self.cells[to_idx] = CellState::Occupied(qubit);
        for index in &mut self.vacancy {
            index.swap(from, to);
        }
        self.positions[qubit.0 as usize] = Some(to);
        Ok((from, to))
    }

    /// Places `qubit` (not currently on the grid) into the vacant cell nearest
    /// `target`, returning the chosen cell. Equivalent to `nearest_vacant` →
    /// `place` but fused: when `target` is a registered anchor the destination
    /// comes straight from that anchor's ring mask (an O(1) bit scan), and
    /// every registered index sees one O(1) bit clear.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::QubitAlreadyPlaced`] if the qubit is already on the grid.
    /// * [`LatticeError::GridFull`] if no vacant cell exists.
    pub fn place_at_nearest_vacancy(
        &mut self,
        qubit: QubitTag,
        target: Coord,
    ) -> Result<Coord, LatticeError> {
        if let Some(at) = self.position_of(qubit) {
            return Err(LatticeError::QubitAlreadyPlaced { qubit, at });
        }
        // Single-anchor fast path (every single-port bank): pop the cached
        // nearest cell straight off the one index instead of reading it and
        // then removing it by coordinate.
        if let [index] = self.vacancy.as_mut_slice() {
            if index.anchor() == target {
                let dest = index.take_nearest().ok_or(LatticeError::GridFull)?;
                let idx = self.index(dest);
                debug_assert!(self.cells[idx].is_vacant());
                self.cells[idx] = CellState::Occupied(qubit);
                self.set_position(qubit, Some(dest));
                return Ok(dest);
            }
        }
        let dest = match self.index_for(target) {
            Some(index) => index.nearest(),
            None => self.ring_search(target, |_, cell| cell.is_vacant()),
        }
        .ok_or(LatticeError::GridFull)?;
        let idx = self.index(dest);
        debug_assert!(self.cells[idx].is_vacant());
        self.cells[idx] = CellState::Occupied(qubit);
        for index in &mut self.vacancy {
            index.remove(dest);
        }
        self.set_position(qubit, Some(dest));
        Ok(dest)
    }

    /// Iterates over all `(qubit, position)` pairs in ascending tag order.
    pub fn iter(&self) -> impl Iterator<Item = (QubitTag, Coord)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (QubitTag(i as u32), c)))
    }

    /// Iterates over all vacant cell coordinates in row-major order.
    pub fn vacant_cells(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.height).flat_map(move |y| {
            (0..self.width)
                .map(move |x| Coord::new(x, y))
                .filter(move |&c| self.cells[self.index(c)].is_vacant())
        })
    }

    /// Finds the vacant cell closest (Manhattan metric) to `target`, breaking ties
    /// by row-major order. Returns `None` if the grid is full.
    ///
    /// When `target` is a registered anchor (see [`CellGrid::register_anchor`]
    /// / [`CellGrid::register_anchors`]) this is an amortized O(1) read of
    /// that anchor's [`VacancyIndex`]; otherwise it is an outward ring search
    /// that visits O(ring) cells per distance instead of scanning every cell.
    pub fn nearest_vacant(&self, target: Coord) -> Option<Coord> {
        match self.index_for(target) {
            Some(index) => index.nearest(),
            None => self.ring_search(target, |_, cell| cell.is_vacant()),
        }
    }

    /// Finds the occupied cell closest (Manhattan metric) to `target` by the
    /// same outward ring search, ties broken row-major.
    pub fn nearest_occupied(&self, target: Coord) -> Option<Coord> {
        self.ring_search(target, |_, cell| !cell.is_vacant())
    }

    /// Expanding ring search around `target`: visits cells in ascending
    /// `(manhattan, y, x)` order and returns the first one matching `pred`,
    /// so the answer equals the legacy full-grid `min_by_key` scan.
    fn ring_search(&self, target: Coord, pred: impl Fn(Coord, CellState) -> bool) -> Option<Coord> {
        if !self.in_bounds(target) {
            // Clamping would change the metric; fall back to the exact scan
            // for the (cold, test-only) out-of-grid targets.
            return (0..self.height)
                .flat_map(|y| (0..self.width).map(move |x| Coord::new(x, y)))
                .filter(|&c| pred(c, self.cells[self.index(c)]))
                .min_by_key(|&c| (c.manhattan_distance(target), c.y, c.x));
        }
        let max_d =
            target.x.max(self.width - 1 - target.x) + target.y.max(self.height - 1 - target.y);
        for d in 0..=max_d {
            let y_lo = target.y.saturating_sub(d);
            let y_hi = (target.y + d).min(self.height - 1);
            for y in y_lo..=y_hi {
                let rem = d - y.abs_diff(target.y);
                // At most two candidates per row, in ascending x order.
                let left = target.x.checked_sub(rem);
                let right = if rem == 0 {
                    None
                } else {
                    target.x.checked_add(rem)
                };
                for x in left.into_iter().chain(right) {
                    if x >= self.width {
                        continue;
                    }
                    let c = Coord::new(x, y);
                    if pred(c, self.cells[self.index(c)]) {
                        return Some(c);
                    }
                }
            }
        }
        None
    }

    /// Length (in steps) of the shortest path from `from` to `to` that travels only
    /// through vacant cells, excluding `from` itself but including `to`.
    ///
    /// This is the distance a scan cell (a vacancy) must cover when every step
    /// swaps it with an occupied neighbour, and also the length of a routing path
    /// for lattice surgery through empty space.
    ///
    /// # Errors
    ///
    /// * [`LatticeError::OutOfBounds`] if either endpoint is outside the grid.
    /// * [`LatticeError::NoVacantPath`] if no vacant path exists.
    pub fn vacant_path_len(&self, from: Coord, to: Coord) -> Result<u32, LatticeError> {
        self.vacant_path_len_in(from, to, &mut PathScratch::new())
    }

    /// [`CellGrid::vacant_path_len`] with caller-provided scratch space, so
    /// repeated queries reuse one dense distance grid instead of allocating
    /// (or hashing) per call.
    ///
    /// # Errors
    ///
    /// Same as [`CellGrid::vacant_path_len`].
    pub fn vacant_path_len_in(
        &self,
        from: Coord,
        to: Coord,
        scratch: &mut PathScratch,
    ) -> Result<u32, LatticeError> {
        self.check_bounds(from)?;
        self.check_bounds(to)?;
        if from == to {
            return Ok(0);
        }
        scratch.begin(self.cells.len());
        scratch.mark(self.index(from) as u32, 0);
        while let Some((cur, d)) = scratch.pop() {
            let coord = Coord::new(cur % self.width, cur / self.width);
            for next in coord.neighbors() {
                if !self.in_bounds(next) {
                    continue;
                }
                let idx = self.index(next) as u32;
                if scratch.visited(idx) {
                    continue;
                }
                if next == to {
                    return Ok(d + 1);
                }
                if self.cells[idx as usize].is_vacant() {
                    scratch.mark(idx, d + 1);
                }
            }
        }
        Err(LatticeError::NoVacantPath { from, to })
    }

    /// Fraction of cells currently holding a logical qubit.
    pub fn occupancy(&self) -> f64 {
        self.occupied_count() as f64 / self.cell_count() as f64
    }
}

impl fmt::Display for CellGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}x{} grid, {} occupied / {} cells",
            self.width,
            self.height,
            self.occupied_count(),
            self.cell_count()
        )?;
        for y in 0..self.height {
            for x in 0..self.width {
                let c = Coord::new(x, y);
                let ch = if self.is_vacant(c) { '.' } else { 'Q' };
                write!(f, "{ch}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_grid(width: u32, height: u32, qubits: u32) -> CellGrid {
        let mut grid = CellGrid::new(width, height);
        let mut placed = 0;
        'outer: for y in 0..height {
            for x in 0..width {
                if placed >= qubits {
                    break 'outer;
                }
                grid.place(QubitTag(placed), Coord::new(x, y)).unwrap();
                placed += 1;
            }
        }
        grid
    }

    #[test]
    fn place_remove_round_trip() {
        let mut grid = CellGrid::new(4, 4);
        grid.place(QubitTag(1), Coord::new(2, 3)).unwrap();
        assert!(grid.contains(QubitTag(1)));
        assert_eq!(grid.occupant(Coord::new(2, 3)), Some(QubitTag(1)));
        let at = grid.remove(QubitTag(1)).unwrap();
        assert_eq!(at, Coord::new(2, 3));
        assert!(!grid.contains(QubitTag(1)));
        assert!(grid.is_vacant(Coord::new(2, 3)));
    }

    #[test]
    fn double_place_is_rejected() {
        let mut grid = CellGrid::new(2, 2);
        grid.place(QubitTag(0), Coord::new(0, 0)).unwrap();
        let err = grid.place(QubitTag(0), Coord::new(1, 1)).unwrap_err();
        assert!(matches!(err, LatticeError::QubitAlreadyPlaced { .. }));
        let err = grid.place(QubitTag(1), Coord::new(0, 0)).unwrap_err();
        assert!(matches!(err, LatticeError::CellOccupied { .. }));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut grid = CellGrid::new(2, 2);
        let err = grid.place(QubitTag(0), Coord::new(2, 0)).unwrap_err();
        assert!(matches!(err, LatticeError::OutOfBounds { .. }));
        assert!(grid.state(Coord::new(0, 5)).is_err());
    }

    #[test]
    fn remove_missing_qubit_fails() {
        let mut grid = CellGrid::new(2, 2);
        assert!(matches!(
            grid.remove(QubitTag(9)),
            Err(LatticeError::QubitNotPresent { .. })
        ));
    }

    #[test]
    fn relocate_moves_the_qubit() {
        let mut grid = CellGrid::new(3, 3);
        grid.place(QubitTag(0), Coord::new(0, 0)).unwrap();
        grid.relocate(QubitTag(0), Coord::new(2, 2)).unwrap();
        assert_eq!(grid.position_of(QubitTag(0)), Some(Coord::new(2, 2)));
        assert!(grid.is_vacant(Coord::new(0, 0)));
        // Relocating onto itself is a no-op.
        grid.relocate(QubitTag(0), Coord::new(2, 2)).unwrap();
        // Relocating onto an occupied cell fails.
        grid.place(QubitTag(1), Coord::new(1, 1)).unwrap();
        assert!(grid.relocate(QubitTag(0), Coord::new(1, 1)).is_err());
    }

    #[test]
    fn counts_are_consistent() {
        let grid = filled_grid(4, 4, 10);
        assert_eq!(grid.occupied_count(), 10);
        assert_eq!(grid.vacant_count(), 6);
        assert_eq!(grid.cell_count(), 16);
        assert!((grid.occupancy() - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_vacant_prefers_closest() {
        let grid = filled_grid(3, 3, 8); // only (2,2) vacant
        assert_eq!(
            grid.nearest_vacant(Coord::new(0, 0)),
            Some(Coord::new(2, 2))
        );
        let full = filled_grid(2, 2, 4);
        assert_eq!(full.nearest_vacant(Coord::new(0, 0)), None);
    }

    #[test]
    fn nearest_occupied_finds_target() {
        let mut grid = CellGrid::new(3, 3);
        grid.place(QubitTag(0), Coord::new(2, 2)).unwrap();
        assert_eq!(
            grid.nearest_occupied(Coord::new(0, 0)),
            Some(Coord::new(2, 2))
        );
        let empty = CellGrid::new(2, 2);
        assert_eq!(empty.nearest_occupied(Coord::new(0, 0)), None);
    }

    #[test]
    fn vacant_path_in_empty_grid_is_manhattan() {
        let grid = CellGrid::new(5, 5);
        let len = grid
            .vacant_path_len(Coord::new(0, 0), Coord::new(3, 2))
            .unwrap();
        assert_eq!(len, 5);
        assert_eq!(
            grid.vacant_path_len(Coord::new(1, 1), Coord::new(1, 1))
                .unwrap(),
            0
        );
    }

    #[test]
    fn vacant_path_routes_around_obstacles() {
        // Wall of occupied cells forces a detour.
        let mut grid = CellGrid::new(3, 3);
        grid.place(QubitTag(0), Coord::new(1, 0)).unwrap();
        grid.place(QubitTag(1), Coord::new(1, 1)).unwrap();
        // From (0,0) to (2,0): direct path is blocked at (1,0); detour through row 2.
        let len = grid
            .vacant_path_len(Coord::new(0, 0), Coord::new(2, 0))
            .unwrap();
        assert_eq!(len, 6);
    }

    #[test]
    fn vacant_path_reports_unreachable() {
        let mut grid = CellGrid::new(3, 1);
        grid.place(QubitTag(0), Coord::new(1, 0)).unwrap();
        let err = grid
            .vacant_path_len(Coord::new(0, 0), Coord::new(2, 0))
            .unwrap_err();
        assert!(matches!(err, LatticeError::NoVacantPath { .. }));
    }

    #[test]
    fn display_renders_one_row_per_line() {
        let grid = filled_grid(3, 2, 2);
        let s = grid.to_string();
        assert!(s.contains("3x2 grid"));
        assert!(s.contains("QQ."));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sized_grid_panics() {
        let _ = CellGrid::new(0, 3);
    }

    #[test]
    fn anchored_nearest_vacant_matches_the_scan() {
        let mut grid = filled_grid(4, 4, 13);
        let port = Coord::new(0, 2);
        grid.register_anchor(port).unwrap();
        assert_eq!(grid.anchor(), Some(port));
        // Index answer equals the generic ring-search answer for the anchor.
        let expected = grid
            .vacant_cells()
            .min_by_key(|&c| (c.manhattan_distance(port), c.y, c.x));
        assert_eq!(grid.nearest_vacant(port), expected);
        // The index follows placements and removals.
        let dest = grid.nearest_vacant(port).unwrap();
        grid.place(QubitTag(50), dest).unwrap();
        assert_ne!(grid.nearest_vacant(port), Some(dest));
        grid.remove(QubitTag(50)).unwrap();
        assert_eq!(grid.nearest_vacant(port), Some(dest));
        // ... and relocations.
        let occupied = grid.position_of(QubitTag(0)).unwrap();
        let vacant = grid.nearest_vacant(port).unwrap();
        grid.relocate(QubitTag(0), vacant).unwrap();
        assert_eq!(grid.nearest_vacant(port), Some(occupied));
        // Out-of-bounds anchors are rejected.
        assert!(grid.register_anchor(Coord::new(9, 9)).is_err());
    }

    #[test]
    fn anchored_full_grid_has_no_vacancy() {
        let mut grid = filled_grid(2, 2, 4);
        grid.register_anchor(Coord::ORIGIN).unwrap();
        assert_eq!(grid.nearest_vacant(Coord::ORIGIN), None);
        grid.remove(QubitTag(3)).unwrap();
        assert_eq!(grid.nearest_vacant(Coord::ORIGIN), Some(Coord::new(1, 1)));
    }

    #[test]
    fn nearest_queries_accept_out_of_grid_targets() {
        let mut grid = CellGrid::new(3, 3);
        grid.place(QubitTag(0), Coord::new(1, 1)).unwrap();
        // Targets outside the grid fall back to the exact scan.
        assert_eq!(
            grid.nearest_occupied(Coord::new(10, 10)),
            Some(Coord::new(1, 1))
        );
        assert_eq!(
            grid.nearest_vacant(Coord::new(0, 7)),
            Some(Coord::new(0, 2))
        );
    }

    #[test]
    fn equality_ignores_position_table_growth_history() {
        // Regression: `set_position` used to pop trailing `None`s on every
        // removal (O(n) worst case per op). The pop is gone; equality must
        // still compare logical content only.
        let mut grown = CellGrid::new(3, 3);
        grown.place(QubitTag(20), Coord::new(2, 2)).unwrap();
        grown.remove(QubitTag(20)).unwrap();
        let fresh = CellGrid::new(3, 3);
        assert_eq!(grown, fresh);
        assert_eq!(grown.occupied_count(), 0);
        assert_eq!(grown.position_of(QubitTag(20)), None);
        // Canonicalize reclaims the trailing entries without changing content.
        grown.canonicalize();
        assert_eq!(grown, fresh);
        // Same content reached through different histories compares equal.
        let mut a = CellGrid::new(3, 3);
        a.place(QubitTag(1), Coord::new(0, 0)).unwrap();
        a.place(QubitTag(7), Coord::new(1, 1)).unwrap();
        a.remove(QubitTag(7)).unwrap();
        let mut b = CellGrid::new(3, 3);
        b.place(QubitTag(1), Coord::new(0, 0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fused_relocate_matches_the_triple_walk() {
        let mut grid = filled_grid(4, 4, 13);
        let port = Coord::new(0, 2);
        grid.register_anchor(port).unwrap();
        let mut legacy = grid.clone();
        for tag in [12u32, 0, 7, 12, 3] {
            let q = QubitTag(tag);
            let from_legacy = legacy.remove(q).unwrap();
            let dest_legacy = legacy.nearest_vacant(port).unwrap();
            legacy.place(q, dest_legacy).unwrap();
            let (from, to) = grid.relocate_into_nearest_vacancy(q, port).unwrap();
            assert_eq!((from, to), (from_legacy, dest_legacy));
            assert_eq!(grid, legacy);
            assert_eq!(grid.nearest_vacant(port), legacy.nearest_vacant(port));
        }
        // A missing qubit is reported, not silently ignored.
        assert!(matches!(
            grid.relocate_into_nearest_vacancy(QubitTag(99), port),
            Err(LatticeError::QubitNotPresent { .. })
        ));
    }

    #[test]
    fn fused_relocate_is_a_no_op_when_already_nearest() {
        // Park a qubit directly on the port-adjacent optimum; relocating it
        // again must keep it (and the vacancy structure) in place.
        let mut grid = CellGrid::new(3, 3);
        let port = Coord::ORIGIN;
        grid.register_anchor(port).unwrap();
        grid.place(QubitTag(0), port).unwrap();
        grid.place(QubitTag(1), Coord::new(2, 2)).unwrap();
        let (from, to) = grid
            .relocate_into_nearest_vacancy(QubitTag(0), port)
            .unwrap();
        assert_eq!((from, to), (port, port));
        assert_eq!(grid.position_of(QubitTag(0)), Some(port));
        assert_eq!(grid.nearest_vacant(port), Some(Coord::new(1, 0)));
    }

    #[test]
    fn fused_relocate_works_without_an_anchor() {
        let mut grid = filled_grid(3, 3, 8); // only (2,2) vacant
        let target = Coord::ORIGIN;
        let (from, to) = grid
            .relocate_into_nearest_vacancy(QubitTag(5), target)
            .unwrap();
        // Qubit 5 sits at (2,1); the only vacancy (2,2) is farther from the
        // origin than its own cell, so it stays put.
        assert_eq!((from, to), (Coord::new(2, 1), Coord::new(2, 1)));
        let (from, to) = grid
            .relocate_into_nearest_vacancy(QubitTag(7), target)
            .unwrap();
        // Qubit 7 at (1,2) moves nowhere either; but qubit at (2,2)-adjacent
        // positions can swap into the vacancy when it is nearer the target.
        assert_eq!(from, to);
        let mut grid = CellGrid::new(3, 3);
        grid.place(QubitTag(0), Coord::new(2, 2)).unwrap();
        let (from, to) = grid
            .relocate_into_nearest_vacancy(QubitTag(0), target)
            .unwrap();
        assert_eq!((from, to), (Coord::new(2, 2), Coord::ORIGIN));
    }

    #[test]
    fn fused_place_matches_nearest_vacant_then_place() {
        let mut grid = filled_grid(4, 4, 12);
        let port = Coord::new(0, 2);
        grid.register_anchor(port).unwrap();
        let mut legacy = grid.clone();
        // Open a few vacancies, then refill through both code paths.
        for tag in [2u32, 9, 11] {
            grid.remove(QubitTag(tag)).unwrap();
            legacy.remove(QubitTag(tag)).unwrap();
        }
        for tag in [20u32, 21, 22] {
            let dest_legacy = legacy.nearest_vacant(port).unwrap();
            legacy.place(QubitTag(tag), dest_legacy).unwrap();
            let dest = grid.place_at_nearest_vacancy(QubitTag(tag), port).unwrap();
            assert_eq!(dest, dest_legacy);
            assert_eq!(grid, legacy);
        }
        // Double placement and full grids are rejected.
        assert!(matches!(
            grid.place_at_nearest_vacancy(QubitTag(20), port),
            Err(LatticeError::QubitAlreadyPlaced { .. })
        ));
        let mut full = filled_grid(2, 2, 4);
        full.register_anchor(Coord::ORIGIN).unwrap();
        assert!(matches!(
            full.place_at_nearest_vacancy(QubitTag(9), Coord::ORIGIN),
            Err(LatticeError::GridFull)
        ));
        // Non-anchor targets go through the ring search.
        let mut grid = CellGrid::new(3, 3);
        grid.place(QubitTag(0), Coord::new(1, 1)).unwrap();
        let dest = grid
            .place_at_nearest_vacancy(QubitTag(1), Coord::new(1, 1))
            .unwrap();
        assert_eq!(dest, Coord::new(1, 0));
    }

    #[test]
    fn multi_anchor_indices_answer_for_every_port() {
        let mut grid = filled_grid(5, 5, 20);
        let west = Coord::new(0, 2);
        let east = Coord::new(4, 2);
        grid.register_anchors(&[west, east, west]).unwrap();
        // Duplicates collapse; registration order is preserved.
        assert_eq!(grid.anchors().collect::<Vec<_>>(), vec![west, east]);
        assert_eq!(grid.anchor(), Some(west));
        fn scan(grid: &CellGrid, target: Coord) -> Option<Coord> {
            grid.vacant_cells()
                .min_by_key(|&c| (c.manhattan_distance(target), c.y, c.x))
        }
        assert_eq!(grid.nearest_vacant(west), scan(&grid, west));
        assert_eq!(grid.nearest_vacant(east), scan(&grid, east));
        // Mutations keep both indices in sync.
        grid.remove(QubitTag(0)).unwrap();
        let dest = grid.place_at_nearest_vacancy(QubitTag(50), east).unwrap();
        assert_eq!(grid.occupant(dest), Some(QubitTag(50)));
        assert_eq!(grid.nearest_vacant(west), scan(&grid, west));
        assert_eq!(grid.nearest_vacant(east), scan(&grid, east));
        grid.relocate_into_nearest_vacancy(QubitTag(7), west)
            .unwrap();
        assert_eq!(grid.nearest_vacant(west), scan(&grid, west));
        assert_eq!(grid.nearest_vacant(east), scan(&grid, east));
        // An out-of-bounds anchor in the set rejects the whole registration.
        assert!(grid.register_anchors(&[west, Coord::new(9, 9)]).is_err());
    }

    #[test]
    fn scratch_reuse_across_queries_is_consistent() {
        let mut grid = CellGrid::new(5, 5);
        grid.place(QubitTag(0), Coord::new(1, 0)).unwrap();
        grid.place(QubitTag(1), Coord::new(1, 1)).unwrap();
        let mut scratch = PathScratch::new();
        let detour = grid
            .vacant_path_len_in(Coord::new(0, 0), Coord::new(2, 0), &mut scratch)
            .unwrap();
        assert_eq!(detour, 6);
        // Second query through the same scratch sees a clean state.
        let direct = grid
            .vacant_path_len_in(Coord::new(0, 2), Coord::new(4, 2), &mut scratch)
            .unwrap();
        assert_eq!(direct, 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, VecDeque};

    /// The seed's `nearest_vacant`: a full linear scan over every vacant cell.
    fn nearest_vacant_scan(grid: &CellGrid, target: Coord) -> Option<Coord> {
        grid.vacant_cells()
            .min_by_key(|&c| (c.manhattan_distance(target), c.y, c.x))
    }

    /// The seed's `vacant_path_len`: `HashMap<Coord, u32>` frontier BFS.
    fn vacant_path_len_hashmap(
        grid: &CellGrid,
        from: Coord,
        to: Coord,
    ) -> Result<u32, LatticeError> {
        if !grid.in_bounds(from) || !grid.in_bounds(to) {
            panic!("shadow BFS expects in-bounds endpoints");
        }
        if from == to {
            return Ok(0);
        }
        let mut dist: HashMap<Coord, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(from, 0);
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            for next in cur.neighbors() {
                if !grid.in_bounds(next) || dist.contains_key(&next) {
                    continue;
                }
                if next == to {
                    return Ok(d + 1);
                }
                if grid.is_vacant(next) {
                    dist.insert(next, d + 1);
                    queue.push_back(next);
                }
            }
        }
        Err(LatticeError::NoVacantPath { from, to })
    }

    proptest! {
        /// The anchor-indexed and ring-search `nearest_vacant` answers equal
        /// the legacy linear scan under random place/remove/relocate
        /// sequences, for the anchor and for arbitrary other targets.
        #[test]
        fn vacancy_index_matches_the_linear_scan(
            anchor in (0u32..6, 0u32..6),
            ops in proptest::collection::vec(
                (0u32..20, 0u32..6, 0u32..6, 0u32..3), 1..80
            ),
        ) {
            let anchor = Coord::new(anchor.0, anchor.1);
            let mut grid = CellGrid::new(6, 6);
            grid.register_anchor(anchor).unwrap();
            for (q, x, y, op) in ops {
                let qubit = QubitTag(q);
                let coord = Coord::new(x, y);
                match op {
                    0 => { let _ = grid.place(qubit, coord); }
                    1 => { let _ = grid.remove(qubit); }
                    _ => { let _ = grid.relocate(qubit, coord); }
                }
                // Anchor query goes through the incremental index.
                prop_assert_eq!(
                    grid.nearest_vacant(anchor),
                    nearest_vacant_scan(&grid, anchor)
                );
                // Non-anchor queries go through the ring search.
                prop_assert_eq!(
                    grid.nearest_vacant(coord),
                    nearest_vacant_scan(&grid, coord)
                );
                prop_assert_eq!(
                    grid.nearest_occupied(coord),
                    grid.iter().map(|(_, c)| c)
                        .min_by_key(|&c| (c.manhattan_distance(coord), c.y, c.x))
                );
            }
        }

        /// With two registered anchors, each anchor's indexed `nearest_vacant`
        /// answer equals the legacy linear scan under random mutation
        /// sequences — including the fused relocate/place primitives, which
        /// must keep every ring mask in sync, not just the targeted anchor's.
        #[test]
        fn dual_anchor_indices_match_the_linear_scan(
            a in (0u32..6, 0u32..6),
            b in (0u32..6, 0u32..6),
            ops in proptest::collection::vec(
                (0u32..20, 0u32..6, 0u32..6, 0u32..5, proptest::bool::ANY), 1..60
            ),
        ) {
            let a = Coord::new(a.0, a.1);
            let b = Coord::new(b.0, b.1);
            let mut grid = CellGrid::new(6, 6);
            grid.register_anchors(&[a, b]).unwrap();
            for (q, x, y, op, pick_a) in ops {
                let qubit = QubitTag(q);
                let coord = Coord::new(x, y);
                let target = if pick_a { a } else { b };
                match op {
                    0 => { let _ = grid.place(qubit, coord); }
                    1 => { let _ = grid.remove(qubit); }
                    2 => { let _ = grid.relocate(qubit, coord); }
                    3 => { let _ = grid.relocate_into_nearest_vacancy(qubit, target); }
                    _ => { let _ = grid.place_at_nearest_vacancy(qubit, target); }
                }
                prop_assert_eq!(
                    grid.nearest_vacant(a),
                    nearest_vacant_scan(&grid, a)
                );
                prop_assert_eq!(
                    grid.nearest_vacant(b),
                    nearest_vacant_scan(&grid, b)
                );
            }
        }

        /// The dense-scratch BFS returns exactly what the legacy HashMap BFS
        /// returns — same lengths, same unreachability — with the scratch
        /// reused across every query of the sequence.
        #[test]
        fn dense_bfs_matches_the_hashmap_bfs(
            obstacles in proptest::collection::hash_set((0u32..9, 0u32..9), 0..40),
            queries in proptest::collection::vec(
                ((0u32..9, 0u32..9), (0u32..9, 0u32..9)), 1..20
            ),
        ) {
            let mut grid = CellGrid::new(9, 9);
            for (tag, (x, y)) in obstacles.into_iter().enumerate() {
                let _ = grid.place(QubitTag(tag as u32), Coord::new(x, y));
            }
            let mut scratch = PathScratch::new();
            for (from, to) in queries {
                let from = Coord::new(from.0, from.1);
                let to = Coord::new(to.0, to.1);
                let dense = grid.vacant_path_len_in(from, to, &mut scratch);
                let legacy = vacant_path_len_hashmap(&grid, from, to);
                prop_assert_eq!(dense, legacy);
            }
        }

        /// Occupied + vacant always equals the total cell count, and every stored
        /// qubit's recorded position matches the cell map, under random placement
        /// and removal sequences.
        #[test]
        fn occupancy_bookkeeping_is_consistent(
            ops in proptest::collection::vec((0u32..30, 0u32..6, 0u32..6, proptest::bool::ANY), 1..80)
        ) {
            let mut grid = CellGrid::new(6, 6);
            // Shadow map with the seed's `HashMap<QubitTag, Coord>` semantics;
            // the dense position table must stay observationally identical.
            let mut mirror: HashMap<QubitTag, Coord> = HashMap::new();
            for (q, x, y, place) in ops {
                let qubit = QubitTag(q);
                if place {
                    if grid.place(qubit, Coord::new(x, y)).is_ok() {
                        mirror.insert(qubit, Coord::new(x, y));
                    }
                } else if grid.remove(qubit).is_ok() {
                    mirror.remove(&qubit);
                }
                // Invariants hold after every step.
                prop_assert_eq!(
                    grid.occupied_count() + grid.vacant_count(),
                    grid.cell_count() as usize
                );
                prop_assert_eq!(grid.occupied_count(), mirror.len());
                for (qubit, pos) in grid.iter() {
                    prop_assert_eq!(grid.occupant(pos), Some(qubit));
                }
                // Dense table answers equal map answers for every tag ever used.
                for tag in 0..30 {
                    let qubit = QubitTag(tag);
                    prop_assert_eq!(grid.position_of(qubit), mirror.get(&qubit).copied());
                    prop_assert_eq!(grid.contains(qubit), mirror.contains_key(&qubit));
                }
            }
        }

        /// The fused single-pass primitives are observationally identical to
        /// the legacy multi-walk sequences they replace: `remove` →
        /// `nearest_vacant` → `place` for relocation and `nearest_vacant` →
        /// `place` for placement, under random op sequences on anchored and
        /// unanchored grids alike.
        #[test]
        fn fused_primitives_match_the_legacy_walks(
            anchor in (0u32..6, 0u32..6),
            use_anchor in proptest::bool::ANY,
            ops in proptest::collection::vec(
                (0u32..20, 0u32..6, 0u32..6, 0u32..4), 1..80
            ),
        ) {
            let anchor = Coord::new(anchor.0, anchor.1);
            let mut fused = CellGrid::new(6, 6);
            let mut legacy = CellGrid::new(6, 6);
            if use_anchor {
                fused.register_anchor(anchor).unwrap();
                legacy.register_anchor(anchor).unwrap();
            }
            for (q, x, y, op) in ops {
                let qubit = QubitTag(q);
                let target = if use_anchor { anchor } else { Coord::new(x, y) };
                match op {
                    0 => {
                        let a = fused.place(qubit, Coord::new(x, y));
                        let b = legacy.place(qubit, Coord::new(x, y));
                        prop_assert_eq!(a, b);
                    }
                    1 => {
                        let a = fused.remove(qubit);
                        let b = legacy.remove(qubit);
                        prop_assert_eq!(a, b);
                    }
                    2 => {
                        // Relocation: fused vs remove → nearest_vacant → place.
                        let a = fused.relocate_into_nearest_vacancy(qubit, target);
                        let b = match legacy.remove(qubit) {
                            Err(e) => Err(e),
                            Ok(from) => {
                                let dest = legacy
                                    .nearest_vacant(target)
                                    .expect("the freed cell is vacant");
                                legacy.place(qubit, dest).unwrap();
                                Ok((from, dest))
                            }
                        };
                        prop_assert_eq!(a, b);
                    }
                    _ => {
                        // Placement: fused vs nearest_vacant → place.
                        let a = fused.place_at_nearest_vacancy(qubit, target);
                        let b = if legacy.contains(qubit) {
                            let at = legacy.position_of(qubit).unwrap();
                            Err(LatticeError::QubitAlreadyPlaced { qubit, at })
                        } else {
                            match legacy.nearest_vacant(target) {
                                None => Err(LatticeError::GridFull),
                                Some(dest) => legacy.place(qubit, dest).map(|()| dest),
                            }
                        };
                        prop_assert_eq!(a, b);
                    }
                }
                // Observable state stays identical after every step, through
                // both the vacancy index (anchor) and the ring search.
                prop_assert_eq!(&fused, &legacy);
                prop_assert_eq!(
                    fused.nearest_vacant(target),
                    nearest_vacant_scan(&legacy, target)
                );
                prop_assert_eq!(
                    fused.nearest_vacant(anchor),
                    nearest_vacant_scan(&legacy, anchor)
                );
            }
        }

        /// A vacant path in a grid with obstacles is never shorter than the
        /// Manhattan distance and never longer than the number of cells.
        #[test]
        fn vacant_path_len_bounds(
            obstacles in proptest::collection::hash_set((0u32..8, 0u32..8), 0..20),
            from in (0u32..8, 0u32..8),
            to in (0u32..8, 0u32..8),
        ) {
            let mut grid = CellGrid::new(8, 8);
            let from = Coord::new(from.0, from.1);
            let to = Coord::new(to.0, to.1);
            let mut next = 0u32;
            for (x, y) in obstacles {
                let c = Coord::new(x, y);
                if c != from && c != to {
                    let _ = grid.place(QubitTag(next), c);
                    next += 1;
                }
            }
            if let Ok(len) = grid.vacant_path_len(from, to) {
                prop_assert!(len >= from.manhattan_distance(to));
                prop_assert!(u64::from(len) <= grid.cell_count());
            }
        }
    }
}
