//! Primitive fault-tolerant protocols and their code-beat latencies.
//!
//! These are the building blocks from Fig. 4 of the paper: lattice surgery
//! (merge + split), patch moves realized by expand/contract, the deformation-based
//! Hadamard and phase gates, and state preparations / destructive measurements.
//! Everything the LSQCA instruction set does — loads, stores, in-memory gates —
//! decomposes into sequences of these primitives, and the SAM latency models are
//! derived from the per-primitive costs collected in [`ProtocolLatencies`].

use crate::patch::MergeBoundary;
use crate::timing::Beats;
use std::fmt;

/// A primitive operation on surface-code patches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveOp {
    /// Lattice-surgery merge + split across the given boundary type: a logical
    /// two-qubit Pauli measurement (ZZ for [`MergeBoundary::Z`], XX for X).
    LatticeSurgery(MergeBoundary),
    /// Move a patch to an adjacent vacant cell (expand into it, contract out of
    /// the original cell).
    MoveStep,
    /// Move a patch diagonally using two vacant cells (the point-SAM "diagonal
    /// move" of Fig. 11a).
    DiagonalMove,
    /// Straight (horizontal/vertical) move of a target cell during a point-SAM
    /// load, using the scan vacancy (Fig. 11b).
    StraightMove,
    /// Diagonal move when two vacancies are available (second-load optimization).
    DiagonalMoveTwoVacancies,
    /// Straight move when two vacancies are available (second-load optimization,
    /// "two vertical/horizontal moves per 6 beats").
    StraightMoveTwoVacancies,
    /// Transversal/deformation Hadamard on a patch (needs one adjacent vacant cell).
    Hadamard,
    /// Phase (S) gate on a patch (needs one adjacent vacant cell).
    Phase,
    /// Prepare a patch in |0⟩.
    PrepareZero,
    /// Prepare a patch in |+⟩.
    PreparePlus,
    /// Destructive single-qubit Pauli-X measurement.
    MeasureX,
    /// Destructive single-qubit Pauli-Z measurement.
    MeasureZ,
    /// Shift of a whole row/column of patches by one cell (line-SAM seek step).
    LineShift,
}

impl fmt::Display for PrimitiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimitiveOp::LatticeSurgery(b) => write!(f, "lattice-surgery({b})"),
            PrimitiveOp::MoveStep => f.write_str("move-step"),
            PrimitiveOp::DiagonalMove => f.write_str("diagonal-move"),
            PrimitiveOp::StraightMove => f.write_str("straight-move"),
            PrimitiveOp::DiagonalMoveTwoVacancies => f.write_str("diagonal-move(2 vacancies)"),
            PrimitiveOp::StraightMoveTwoVacancies => f.write_str("straight-move(2 vacancies)"),
            PrimitiveOp::Hadamard => f.write_str("hadamard"),
            PrimitiveOp::Phase => f.write_str("phase"),
            PrimitiveOp::PrepareZero => f.write_str("prepare-zero"),
            PrimitiveOp::PreparePlus => f.write_str("prepare-plus"),
            PrimitiveOp::MeasureX => f.write_str("measure-x"),
            PrimitiveOp::MeasureZ => f.write_str("measure-z"),
            PrimitiveOp::LineShift => f.write_str("line-shift"),
        }
    }
}

/// Code-beat latencies of the primitive protocols (Fig. 4 / Sec. II-C).
///
/// The defaults are the values assumed throughout the paper's evaluation:
///
/// | primitive | beats |
/// |---|---|
/// | lattice surgery (merge+split) | 1 |
/// | single move step | 1 |
/// | point-SAM diagonal move | 6 (4 with a second vacancy) |
/// | point-SAM straight move | 5 (3 with a second vacancy) |
/// | Hadamard | 3 |
/// | Phase (S) | 2 |
/// | preparations and 1-qubit measurements | 0 |
/// | line-SAM line shift | 1 |
///
/// The struct is plain data so alternative device assumptions can be explored by
/// constructing a different instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolLatencies {
    /// Lattice surgery merge+split.
    pub lattice_surgery: Beats,
    /// One-cell patch move.
    pub move_step: Beats,
    /// Diagonal target move with a single vacancy.
    pub diagonal_move: Beats,
    /// Straight target move with a single vacancy.
    pub straight_move: Beats,
    /// Diagonal target move with two vacancies.
    pub diagonal_move_two_vacancies: Beats,
    /// Straight target move with two vacancies.
    pub straight_move_two_vacancies: Beats,
    /// Hadamard gate.
    pub hadamard: Beats,
    /// Phase (S) gate.
    pub phase: Beats,
    /// |0⟩ preparation.
    pub prepare_zero: Beats,
    /// |+⟩ preparation.
    pub prepare_plus: Beats,
    /// Single-qubit Pauli-X measurement.
    pub measure_x: Beats,
    /// Single-qubit Pauli-Z measurement.
    pub measure_z: Beats,
    /// Line-SAM row shift by one cell.
    pub line_shift: Beats,
}

impl ProtocolLatencies {
    /// The latencies assumed by the paper (see the table in the type docs).
    pub const fn paper() -> Self {
        ProtocolLatencies {
            lattice_surgery: Beats(1),
            move_step: Beats(1),
            diagonal_move: Beats(6),
            straight_move: Beats(5),
            diagonal_move_two_vacancies: Beats(4),
            straight_move_two_vacancies: Beats(3),
            hadamard: Beats(3),
            phase: Beats(2),
            prepare_zero: Beats(0),
            prepare_plus: Beats(0),
            measure_x: Beats(0),
            measure_z: Beats(0),
            line_shift: Beats(1),
        }
    }

    /// Latency of a single primitive.
    pub fn latency(&self, op: PrimitiveOp) -> Beats {
        match op {
            PrimitiveOp::LatticeSurgery(_) => self.lattice_surgery,
            PrimitiveOp::MoveStep => self.move_step,
            PrimitiveOp::DiagonalMove => self.diagonal_move,
            PrimitiveOp::StraightMove => self.straight_move,
            PrimitiveOp::DiagonalMoveTwoVacancies => self.diagonal_move_two_vacancies,
            PrimitiveOp::StraightMoveTwoVacancies => self.straight_move_two_vacancies,
            PrimitiveOp::Hadamard => self.hadamard,
            PrimitiveOp::Phase => self.phase,
            PrimitiveOp::PrepareZero => self.prepare_zero,
            PrimitiveOp::PreparePlus => self.prepare_plus,
            PrimitiveOp::MeasureX => self.measure_x,
            PrimitiveOp::MeasureZ => self.measure_z,
            PrimitiveOp::LineShift => self.line_shift,
        }
    }

    /// Total latency of a sequence of primitives.
    pub fn sequence_latency<I>(&self, ops: I) -> Beats
    where
        I: IntoIterator<Item = PrimitiveOp>,
    {
        ops.into_iter().map(|op| self.latency(op)).sum()
    }

    /// Latency of transporting a target cell `dx` cells horizontally and `dy`
    /// cells vertically inside a point SAM, combining diagonal and straight moves
    /// (the `6·min + 5·|dx−dy|` term of the paper's load-cost estimate).
    ///
    /// With `two_vacancies` the cheaper per-move costs of the second-load
    /// optimization are used.
    pub fn point_transport(&self, dx: u32, dy: u32, two_vacancies: bool) -> Beats {
        let diagonal = dx.min(dy) as u64;
        let straight = dx.abs_diff(dy) as u64;
        if two_vacancies {
            self.diagonal_move_two_vacancies * diagonal
                + self.straight_move_two_vacancies * straight
        } else {
            self.diagonal_move * diagonal + self.straight_move * straight
        }
    }
}

impl Default for ProtocolLatencies {
    fn default() -> Self {
        ProtocolLatencies::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_the_text() {
        let lat = ProtocolLatencies::paper();
        assert_eq!(lat.lattice_surgery, Beats(1));
        assert_eq!(lat.hadamard, Beats(3));
        assert_eq!(lat.phase, Beats(2));
        assert_eq!(lat.diagonal_move, Beats(6));
        assert_eq!(lat.straight_move, Beats(5));
        assert_eq!(lat.diagonal_move_two_vacancies, Beats(4));
        assert_eq!(lat.straight_move_two_vacancies, Beats(3));
        assert_eq!(lat.prepare_zero, Beats(0));
        assert_eq!(lat.measure_x, Beats(0));
        assert_eq!(ProtocolLatencies::default(), ProtocolLatencies::paper());
    }

    #[test]
    fn latency_lookup_covers_all_ops() {
        let lat = ProtocolLatencies::paper();
        let ops = [
            PrimitiveOp::LatticeSurgery(MergeBoundary::Z),
            PrimitiveOp::LatticeSurgery(MergeBoundary::X),
            PrimitiveOp::MoveStep,
            PrimitiveOp::DiagonalMove,
            PrimitiveOp::StraightMove,
            PrimitiveOp::DiagonalMoveTwoVacancies,
            PrimitiveOp::StraightMoveTwoVacancies,
            PrimitiveOp::Hadamard,
            PrimitiveOp::Phase,
            PrimitiveOp::PrepareZero,
            PrimitiveOp::PreparePlus,
            PrimitiveOp::MeasureX,
            PrimitiveOp::MeasureZ,
            PrimitiveOp::LineShift,
        ];
        for op in ops {
            // Latency must be defined (and small) for every primitive.
            assert!(lat.latency(op) <= Beats(6), "{op} has unexpected latency");
            assert!(!op.to_string().is_empty());
        }
    }

    #[test]
    fn sequence_latency_sums() {
        let lat = ProtocolLatencies::paper();
        let total = lat.sequence_latency([
            PrimitiveOp::Hadamard,
            PrimitiveOp::Phase,
            PrimitiveOp::LatticeSurgery(MergeBoundary::Z),
        ]);
        assert_eq!(total, Beats(6));
    }

    #[test]
    fn point_transport_matches_paper_formula() {
        let lat = ProtocolLatencies::paper();
        // W = 3, H = 2: 2 diagonal moves (6 beats) + 1 straight move (5 beats).
        assert_eq!(lat.point_transport(3, 2, false), Beats(2 * 6 + 5));
        // Same distance with two vacancies available is cheaper.
        assert_eq!(lat.point_transport(3, 2, true), Beats(2 * 4 + 3));
        // Degenerate cases.
        assert_eq!(lat.point_transport(0, 0, false), Beats(0));
        assert_eq!(lat.point_transport(4, 0, false), Beats(20));
        assert_eq!(lat.point_transport(0, 4, false), Beats(20));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The transport cost is monotone in both axes and the two-vacancy
        /// optimization never makes a load slower.
        #[test]
        fn transport_cost_monotone(dx in 0u32..60, dy in 0u32..60) {
            let lat = ProtocolLatencies::paper();
            let base = lat.point_transport(dx, dy, false);
            prop_assert!(lat.point_transport(dx + 1, dy, false) >= base);
            prop_assert!(lat.point_transport(dx, dy + 1, false) >= base);
            prop_assert!(lat.point_transport(dx, dy, true) <= base);
            // Symmetric in dx/dy.
            prop_assert_eq!(lat.point_transport(dy, dx, false), base);
        }
    }
}
