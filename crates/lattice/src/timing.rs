//! The code-beat time unit.
//!
//! The paper measures all latencies in *code beats*: one beat is `d` syndrome
//! measurement cycles, the time needed to fault-tolerantly commit a change to the
//! syndrome-measurement pattern (a lattice-surgery merge, a patch move step, ...).
//! For realistic code distances (11–31) a beat is roughly 10–50 µs, but the whole
//! evaluation is distance-independent, so we keep time as an integer beat count.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A duration or timestamp expressed in code beats.
///
/// `Beats` is a thin newtype over `u64` that supports the arithmetic needed by the
/// scheduler (saturating subtraction is intentional: latencies never go negative).
///
/// ```
/// use lsqca_lattice::Beats;
/// let t = Beats(3) + Beats(4);
/// assert_eq!(t, Beats(7));
/// assert_eq!(t * 2, Beats(14));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Beats(pub u64);

impl Beats {
    /// The zero duration.
    pub const ZERO: Beats = Beats(0);
    /// One code beat, the latency of a single lattice-surgery operation.
    pub const ONE: Beats = Beats(1);

    /// Returns the raw beat count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the beat count as `f64`, convenient for ratios such as CPI.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Beats) -> Beats {
        Beats(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Beats) -> Beats {
        Beats(self.0.min(other.0))
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: Beats) -> Beats {
        Beats(self.0.saturating_sub(other.0))
    }

    /// True if this duration is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Beats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} beats", self.0)
    }
}

impl From<u64> for Beats {
    fn from(value: u64) -> Self {
        Beats(value)
    }
}

impl From<Beats> for u64 {
    fn from(value: Beats) -> Self {
        value.0
    }
}

impl Add for Beats {
    type Output = Beats;
    fn add(self, rhs: Beats) -> Beats {
        Beats(self.0 + rhs.0)
    }
}

impl AddAssign for Beats {
    fn add_assign(&mut self, rhs: Beats) {
        self.0 += rhs.0;
    }
}

impl Sub for Beats {
    type Output = Beats;
    fn sub(self, rhs: Beats) -> Beats {
        Beats(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Beats {
    fn sub_assign(&mut self, rhs: Beats) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Beats {
    type Output = Beats;
    fn mul(self, rhs: u64) -> Beats {
        Beats(self.0 * rhs)
    }
}

impl Sum for Beats {
    fn sum<I: Iterator<Item = Beats>>(iter: I) -> Beats {
        iter.fold(Beats::ZERO, |acc, b| acc + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        assert_eq!(Beats(2) + Beats(3), Beats(5));
        assert_eq!(Beats(5) - Beats(3), Beats(2));
        assert_eq!(Beats(5) * 3, Beats(15));
        let mut t = Beats(1);
        t += Beats(2);
        assert_eq!(t, Beats(3));
        t -= Beats(1);
        assert_eq!(t, Beats(2));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        assert_eq!(Beats(2) - Beats(5), Beats::ZERO);
        assert_eq!(Beats(2).saturating_sub(Beats(5)), Beats::ZERO);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Beats = [Beats(1), Beats(2), Beats(3)].into_iter().sum();
        assert_eq!(total, Beats(6));
    }

    #[test]
    fn ordering_and_min_max() {
        assert!(Beats(3) < Beats(4));
        assert_eq!(Beats(3).max(Beats(4)), Beats(4));
        assert_eq!(Beats(3).min(Beats(4)), Beats(3));
    }

    #[test]
    fn conversions_round_trip() {
        let b = Beats::from(17u64);
        assert_eq!(u64::from(b), 17);
        assert_eq!(b.as_f64(), 17.0);
        assert!(!b.is_zero());
        assert!(Beats::ZERO.is_zero());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Beats(4).to_string(), "4 beats");
    }
}
