//! Pauli operators and Pauli products.
//!
//! Logical operations in a lattice-surgery FTQC are expressed as Pauli
//! preparations, Pauli unitaries, and (multi-qubit) Pauli-product measurements.
//! The SELECT workload additionally needs symbolic Pauli strings to describe the
//! Hamiltonian terms it applies, so a small sparse [`PauliProduct`] type lives
//! here.

use std::collections::BTreeMap;
use std::fmt;

/// A single-qubit Pauli operator (identity excluded unless stated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pauli {
    /// The identity operator.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// All four Pauli operators.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// True for the identity operator.
    pub fn is_identity(self) -> bool {
        matches!(self, Pauli::I)
    }

    /// Whether two Pauli operators commute.
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == other || self.is_identity() || other.is_identity()
    }

    /// The product of two Pauli operators, ignoring the global phase.
    ///
    /// ```
    /// use lsqca_lattice::Pauli;
    /// assert_eq!(Pauli::X.compose(Pauli::Z), Pauli::Y);
    /// assert_eq!(Pauli::X.compose(Pauli::X), Pauli::I);
    /// ```
    pub fn compose(self, other: Pauli) -> Pauli {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => p,
            (a, b) if a == b => I,
            (X, Y) | (Y, X) => Z,
            (Y, Z) | (Z, Y) => X,
            (X, Z) | (Z, X) => Y,
            _ => unreachable!("all pairs covered"),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pauli::I => "I",
            Pauli::X => "X",
            Pauli::Y => "Y",
            Pauli::Z => "Z",
        };
        f.write_str(s)
    }
}

/// A sparse multi-qubit Pauli operator: a map from qubit index to non-identity
/// Pauli, with identities omitted.
///
/// ```
/// use lsqca_lattice::{Pauli, PauliProduct};
/// let zz = PauliProduct::from_pairs([(0, Pauli::Z), (1, Pauli::Z)]);
/// assert_eq!(zz.weight(), 2);
/// assert_eq!(zz.to_string(), "Z0*Z1");
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct PauliProduct {
    factors: BTreeMap<u32, Pauli>,
}

impl PauliProduct {
    /// The identity product acting on no qubits.
    pub fn identity() -> Self {
        PauliProduct::default()
    }

    /// Builds a product from `(qubit, pauli)` pairs; identity factors are dropped.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, Pauli)>,
    {
        let factors = pairs
            .into_iter()
            .filter(|(_, p)| !p.is_identity())
            .collect();
        PauliProduct { factors }
    }

    /// A single-qubit Pauli acting on `qubit`.
    pub fn single(qubit: u32, pauli: Pauli) -> Self {
        PauliProduct::from_pairs([(qubit, pauli)])
    }

    /// Sets the factor on `qubit` (removing it if `pauli` is the identity).
    pub fn set(&mut self, qubit: u32, pauli: Pauli) {
        if pauli.is_identity() {
            self.factors.remove(&qubit);
        } else {
            self.factors.insert(qubit, pauli);
        }
    }

    /// The factor acting on `qubit` (identity if absent).
    pub fn factor(&self, qubit: u32) -> Pauli {
        self.factors.get(&qubit).copied().unwrap_or(Pauli::I)
    }

    /// Number of qubits acted on non-trivially.
    pub fn weight(&self) -> usize {
        self.factors.len()
    }

    /// True if this is the identity on every qubit.
    pub fn is_identity(&self) -> bool {
        self.factors.is_empty()
    }

    /// Iterates over `(qubit, pauli)` factors in qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Pauli)> + '_ {
        self.factors.iter().map(|(&q, &p)| (q, p))
    }

    /// The set of qubits acted on non-trivially, in ascending order.
    pub fn support(&self) -> Vec<u32> {
        self.factors.keys().copied().collect()
    }

    /// Multiplies two products factor-wise, ignoring the global phase.
    pub fn compose(&self, other: &PauliProduct) -> PauliProduct {
        let mut result = self.clone();
        for (q, p) in other.iter() {
            result.set(q, result.factor(q).compose(p));
        }
        result
    }

    /// Whether two Pauli products commute (they anti-commute iff the number of
    /// positions where both act non-trivially with different Paulis is odd).
    pub fn commutes_with(&self, other: &PauliProduct) -> bool {
        let mut anticommuting = 0usize;
        for (q, p) in self.iter() {
            let o = other.factor(q);
            if !p.commutes_with(o) {
                anticommuting += 1;
            }
        }
        anticommuting.is_multiple_of(2)
    }
}

impl fmt::Display for PauliProduct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return f.write_str("I");
        }
        let mut first = true;
        for (q, p) in self.iter() {
            if !first {
                f.write_str("*")?;
            }
            write!(f, "{p}{q}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(u32, Pauli)> for PauliProduct {
    fn from_iter<T: IntoIterator<Item = (u32, Pauli)>>(iter: T) -> Self {
        PauliProduct::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pauli_composition_table() {
        use Pauli::*;
        assert_eq!(X.compose(X), I);
        assert_eq!(Y.compose(Y), I);
        assert_eq!(Z.compose(Z), I);
        assert_eq!(X.compose(Y), Z);
        assert_eq!(Y.compose(Z), X);
        assert_eq!(Z.compose(X), Y);
        assert_eq!(I.compose(Z), Z);
        assert_eq!(Z.compose(I), Z);
    }

    #[test]
    fn single_pauli_commutation() {
        use Pauli::*;
        assert!(X.commutes_with(X));
        assert!(I.commutes_with(Z));
        assert!(!X.commutes_with(Z));
        assert!(!Y.commutes_with(Z));
    }

    #[test]
    fn product_construction_drops_identities() {
        let p = PauliProduct::from_pairs([(0, Pauli::X), (3, Pauli::I), (2, Pauli::Z)]);
        assert_eq!(p.weight(), 2);
        assert_eq!(p.factor(0), Pauli::X);
        assert_eq!(p.factor(3), Pauli::I);
        assert_eq!(p.support(), vec![0, 2]);
    }

    #[test]
    fn product_set_and_clear() {
        let mut p = PauliProduct::identity();
        assert!(p.is_identity());
        p.set(5, Pauli::Y);
        assert_eq!(p.weight(), 1);
        p.set(5, Pauli::I);
        assert!(p.is_identity());
    }

    #[test]
    fn product_composition() {
        let xz = PauliProduct::from_pairs([(0, Pauli::X), (1, Pauli::Z)]);
        let zz = PauliProduct::from_pairs([(0, Pauli::Z), (1, Pauli::Z)]);
        let composed = xz.compose(&zz);
        assert_eq!(composed.factor(0), Pauli::Y);
        assert_eq!(composed.factor(1), Pauli::I);
    }

    #[test]
    fn product_commutation() {
        let xx = PauliProduct::from_pairs([(0, Pauli::X), (1, Pauli::X)]);
        let zz = PauliProduct::from_pairs([(0, Pauli::Z), (1, Pauli::Z)]);
        let zi = PauliProduct::single(0, Pauli::Z);
        // XX and ZZ commute (two anticommuting positions), XX and Z0 do not.
        assert!(xx.commutes_with(&zz));
        assert!(!xx.commutes_with(&zi));
        assert!(PauliProduct::identity().commutes_with(&xx));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PauliProduct::identity().to_string(), "I");
        let p = PauliProduct::from_pairs([(2, Pauli::Z), (0, Pauli::X)]);
        assert_eq!(p.to_string(), "X0*Z2");
        assert_eq!(Pauli::Y.to_string(), "Y");
    }

    #[test]
    fn from_iterator_collects() {
        let p: PauliProduct = [(1, Pauli::Z), (4, Pauli::X)].into_iter().collect();
        assert_eq!(p.weight(), 2);
    }
}
