//! Error types for lattice operations.

use crate::cell::QubitTag;
use crate::geom::Coord;
use std::error::Error;
use std::fmt;

/// Errors raised by cell-grid manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LatticeError {
    /// The coordinate is outside the grid.
    OutOfBounds {
        /// The offending coordinate.
        coord: Coord,
        /// Grid width in cells.
        width: u32,
        /// Grid height in cells.
        height: u32,
    },
    /// The target cell is already occupied by another logical qubit.
    CellOccupied {
        /// The occupied coordinate.
        coord: Coord,
        /// The qubit currently holding the cell.
        occupant: QubitTag,
    },
    /// The referenced qubit is not present on this grid.
    QubitNotPresent {
        /// The missing qubit.
        qubit: QubitTag,
    },
    /// The qubit is already placed on this grid.
    QubitAlreadyPlaced {
        /// The duplicate qubit.
        qubit: QubitTag,
        /// Where it currently sits.
        at: Coord,
    },
    /// The requested cell is vacant but an occupant was expected.
    CellVacant {
        /// The vacant coordinate.
        coord: Coord,
    },
    /// No path of vacant cells exists between the requested endpoints.
    NoVacantPath {
        /// Path start.
        from: Coord,
        /// Path goal.
        to: Coord,
    },
    /// The grid has no vacant cell left.
    GridFull,
    /// A store was attempted for a qubit that was never checked out of this
    /// bank (it was never loaded from it, or belongs to a different bank).
    QubitNotCheckedOut {
        /// The qubit that is not in the checkout ledger.
        qubit: QubitTag,
    },
    /// The memory-system-level checkout audit found the qubit's residence and
    /// checkout records pointing at different banks: it left one bank but its
    /// residence now names another (or the conventional region). Accepting
    /// the access would silently consume the wrong bank's scan vacancy.
    CrossBankCheckout {
        /// The qubit whose records disagree.
        qubit: QubitTag,
        /// The bank the qubit was checked out of.
        checked_out_of: u32,
        /// The bank its residence currently names (`None` = conventional).
        resident_bank: Option<u32>,
    },
    /// A hot-set migration request violated the swap shape: the promoted
    /// qubit must be stored in a SAM bank and the demoted qubit must live in
    /// the conventional region (and the two must differ).
    InvalidMigration {
        /// The qubit requested to move into the conventional region.
        promote: QubitTag,
        /// The qubit requested to take its place in the SAM bank.
        demote: QubitTag,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::OutOfBounds {
                coord,
                width,
                height,
            } => write!(f, "coordinate {coord} is outside the {width}x{height} grid"),
            LatticeError::CellOccupied { coord, occupant } => {
                write!(f, "cell {coord} is already occupied by {occupant}")
            }
            LatticeError::QubitNotPresent { qubit } => {
                write!(f, "qubit {qubit} is not present on the grid")
            }
            LatticeError::QubitAlreadyPlaced { qubit, at } => {
                write!(f, "qubit {qubit} is already placed at {at}")
            }
            LatticeError::CellVacant { coord } => write!(f, "cell {coord} is vacant"),
            LatticeError::NoVacantPath { from, to } => {
                write!(f, "no vacant path from {from} to {to}")
            }
            LatticeError::GridFull => write!(f, "grid has no vacant cell"),
            LatticeError::QubitNotCheckedOut { qubit } => {
                write!(f, "qubit {qubit} was never checked out of this bank")
            }
            LatticeError::CrossBankCheckout {
                qubit,
                checked_out_of,
                resident_bank,
            } => match resident_bank {
                Some(bank) => write!(
                    f,
                    "qubit {qubit} is checked out of bank {checked_out_of} but resident in bank {bank}"
                ),
                None => write!(
                    f,
                    "qubit {qubit} is checked out of bank {checked_out_of} but resident in the conventional region"
                ),
            },
            LatticeError::InvalidMigration { promote, demote } => {
                write!(
                    f,
                    "migration of {promote} (to conventional) against {demote} (to SAM) violates the swap shape"
                )
            }
        }
    }
}

impl Error for LatticeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            LatticeError::OutOfBounds {
                coord: Coord::new(9, 9),
                width: 4,
                height: 4,
            },
            LatticeError::CellOccupied {
                coord: Coord::new(1, 1),
                occupant: QubitTag(3),
            },
            LatticeError::QubitNotPresent { qubit: QubitTag(5) },
            LatticeError::QubitAlreadyPlaced {
                qubit: QubitTag(5),
                at: Coord::new(0, 0),
            },
            LatticeError::CellVacant {
                coord: Coord::new(2, 2),
            },
            LatticeError::NoVacantPath {
                from: Coord::new(0, 0),
                to: Coord::new(3, 3),
            },
            LatticeError::GridFull,
            LatticeError::QubitNotCheckedOut { qubit: QubitTag(8) },
            LatticeError::CrossBankCheckout {
                qubit: QubitTag(4),
                checked_out_of: 0,
                resident_bank: Some(1),
            },
            LatticeError::CrossBankCheckout {
                qubit: QubitTag(4),
                checked_out_of: 1,
                resident_bank: None,
            },
            LatticeError::InvalidMigration {
                promote: QubitTag(2),
                demote: QubitTag(3),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<LatticeError>();
    }
}
