//! Logical surface-code patches.
//!
//! A *patch* is one surface-code cell's worth of encoded logical qubit. Its two
//! boundary types (X and Z) determine which lattice-surgery merges are possible
//! without first rotating the patch: a logical `ZZ` measurement merges two
//! Z-boundaries through a column of ancilla cells, an `XX` measurement merges two
//! X-boundaries. The floorplan models use the orientation to account for the
//! extra rotation beat required when the needed boundary does not face a vacant
//! cell (the reason the 1/2-filling conventional floorplan is the densest
//! unit-latency design).

use crate::cell::QubitTag;
use crate::geom::{Coord, Direction};
use std::fmt;

/// Identifier of a logical patch tracked by a floorplan controller.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatchId(pub u32);

impl fmt::Display for PatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "patch{}", self.0)
    }
}

/// Which pair of opposite sides carries the Z boundary.
///
/// In the paper's drawing convention (Fig. 2) the left/right sides are the
/// Z-boundaries and the top/bottom sides the X-boundaries; a patch rotation
/// (realized by expand + contract, one beat each) swaps them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryOrientation {
    /// Z-boundaries face east/west, X-boundaries face north/south (paper default).
    #[default]
    ZHorizontal,
    /// Z-boundaries face north/south, X-boundaries face east/west.
    ZVertical,
}

impl BoundaryOrientation {
    /// The orientation after a 90° patch rotation.
    pub fn rotated(self) -> BoundaryOrientation {
        match self {
            BoundaryOrientation::ZHorizontal => BoundaryOrientation::ZVertical,
            BoundaryOrientation::ZVertical => BoundaryOrientation::ZHorizontal,
        }
    }

    /// True if the Z boundary faces the given direction.
    pub fn z_faces(self, direction: Direction) -> bool {
        match self {
            BoundaryOrientation::ZHorizontal => direction.is_horizontal(),
            BoundaryOrientation::ZVertical => !direction.is_horizontal(),
        }
    }

    /// True if the X boundary faces the given direction.
    pub fn x_faces(self, direction: Direction) -> bool {
        !self.z_faces(direction)
    }
}

impl fmt::Display for BoundaryOrientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundaryOrientation::ZHorizontal => f.write_str("Z-horizontal"),
            BoundaryOrientation::ZVertical => f.write_str("Z-vertical"),
        }
    }
}

/// A logical patch: which qubit it encodes, where it sits, how it is oriented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Patch {
    /// Identifier of the patch.
    pub id: PatchId,
    /// The logical data qubit the patch encodes.
    pub qubit: QubitTag,
    /// Grid position of the patch (single-cell patches only).
    pub position: Coord,
    /// Boundary orientation.
    pub orientation: BoundaryOrientation,
}

impl Patch {
    /// Creates a patch with the default (paper) orientation.
    pub fn new(id: PatchId, qubit: QubitTag, position: Coord) -> Self {
        Patch {
            id,
            qubit,
            position,
            orientation: BoundaryOrientation::default(),
        }
    }

    /// Returns a copy rotated by 90°.
    pub fn rotated(mut self) -> Self {
        self.orientation = self.orientation.rotated();
        self
    }

    /// Returns a copy moved to `position`.
    pub fn moved_to(mut self, position: Coord) -> Self {
        self.position = position;
        self
    }

    /// True if a lattice-surgery merge of the requested boundary type towards
    /// `direction` is possible without rotating the patch first.
    pub fn can_merge(&self, boundary: MergeBoundary, direction: Direction) -> bool {
        match boundary {
            MergeBoundary::Z => self.orientation.z_faces(direction),
            MergeBoundary::X => self.orientation.x_faces(direction),
        }
    }
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) at {} [{}]",
            self.id, self.qubit, self.position, self.orientation
        )
    }
}

/// Which boundary participates in a lattice-surgery merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeBoundary {
    /// Merge through the Z-boundaries (logical ZZ measurement).
    Z,
    /// Merge through the X-boundaries (logical XX measurement).
    X,
}

impl fmt::Display for MergeBoundary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeBoundary::Z => f.write_str("Z"),
            MergeBoundary::X => f.write_str("X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_toggles_orientation() {
        let o = BoundaryOrientation::ZHorizontal;
        assert_eq!(o.rotated(), BoundaryOrientation::ZVertical);
        assert_eq!(o.rotated().rotated(), o);
    }

    #[test]
    fn boundary_facing() {
        let o = BoundaryOrientation::ZHorizontal;
        assert!(o.z_faces(Direction::East));
        assert!(o.z_faces(Direction::West));
        assert!(!o.z_faces(Direction::North));
        assert!(o.x_faces(Direction::North));
        let r = o.rotated();
        assert!(r.z_faces(Direction::North));
        assert!(!r.z_faces(Direction::East));
    }

    #[test]
    fn patch_merge_capability() {
        let p = Patch::new(PatchId(0), QubitTag(0), Coord::new(1, 1));
        assert!(p.can_merge(MergeBoundary::Z, Direction::East));
        assert!(!p.can_merge(MergeBoundary::Z, Direction::North));
        assert!(p.can_merge(MergeBoundary::X, Direction::North));
        let rotated = p.rotated();
        assert!(rotated.can_merge(MergeBoundary::Z, Direction::North));
        assert!(!rotated.can_merge(MergeBoundary::Z, Direction::East));
    }

    #[test]
    fn patch_move_preserves_identity() {
        let p = Patch::new(PatchId(3), QubitTag(9), Coord::new(0, 0));
        let q = p.moved_to(Coord::new(4, 2));
        assert_eq!(q.id, PatchId(3));
        assert_eq!(q.qubit, QubitTag(9));
        assert_eq!(q.position, Coord::new(4, 2));
        assert_eq!(q.orientation, p.orientation);
    }

    #[test]
    fn displays_are_descriptive() {
        let p = Patch::new(PatchId(1), QubitTag(2), Coord::new(3, 4));
        let s = p.to_string();
        assert!(s.contains("patch1"));
        assert!(s.contains("q2"));
        assert!(s.contains("(3, 4)"));
        assert_eq!(MergeBoundary::Z.to_string(), "Z");
    }
}
