//! Dependency-free JSON support for the experiment harness.
//!
//! The build environment of this repository is fully offline, so the harness
//! cannot pull `serde`/`serde_json` from a registry. The `--json` output of the
//! `experiments` binary and the `BENCH_*.json` baselines need one-way
//! *serialization* of a handful of result types, and the on-disk workload
//! cache (`lsqca_workloads::cache`) needs to read its artifacts back. This
//! small crate covers both: a [`Json`] value tree, a [`ToJson`] conversion
//! trait, a deterministic pretty printer whose output is stable across runs
//! (object keys keep insertion order; floats use Rust's shortest round-trip
//! formatting), and a [`parse`] function inverting it.
//!
//! ```
//! use lsqca_json::{parse, Json, ToJson};
//!
//! let value = Json::obj([
//!     ("name", "fig13".to_json()),
//!     ("points", vec![1u64, 2, 3].to_json()),
//! ]);
//! assert_eq!(value.compact(), r#"{"name":"fig13","points":[1,2,3]}"#);
//! // Serialization round-trips through the parser.
//! assert_eq!(parse(&value.pretty()).unwrap(), value);
//! assert_eq!(value.get("name").and_then(Json::as_str), Some("fig13"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;

pub use parse::{parse, JsonParseError};

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a decimal point).
    U64(u64),
    /// A signed integer (emitted without a decimal point).
    I64(i64),
    /// A double-precision float (shortest round-trip formatting; non-finite
    /// values are emitted as `null`, as `serde_json` does).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Renders the value with two-space indentation (like
    /// `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Renders the value without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned integer value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The signed integer value, if this is an integer that fits `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(n) => Some(n),
            Json::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The numeric value as a float (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(x) => Some(x),
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        // Keep a trailing `.0` so the value reads as a float.
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                let (key, value) = &pairs[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                value.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    // Copy maximal spans that need no escaping in one `push_str`; only the
    // escape bytes themselves are handled individually. Large string fields
    // (cached instruction streams) serialize at memcpy speed this way.
    let mut start = 0;
    for (i, c) in s.char_indices() {
        let escape: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            c if (c as u32) < 0x20 => Some(""),
            _ => None,
        };
        if let Some(escape) = escape {
            out.push_str(&s[start..i]);
            if escape.is_empty() {
                let _ = write!(out, "\\u{:04x}", c as u32);
            } else {
                out.push_str(escape);
            }
            start = i + c.len_utf8();
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_like_serde_json() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::Bool(true).compact(), "true");
        assert_eq!(Json::U64(42).compact(), "42");
        assert_eq!(Json::I64(-7).compact(), "-7");
        assert_eq!(Json::F64(1.5).compact(), "1.5");
        assert_eq!(Json::F64(2.0).compact(), "2.0");
        assert_eq!(Json::F64(f64::NAN).compact(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn collections_preserve_order() {
        let v = Json::obj([
            ("b", 1u32.to_json()),
            ("a", vec![true, false].to_json()),
            ("c", Json::Null),
        ]);
        assert_eq!(v.compact(), r#"{"b":1,"a":[true,false],"c":null}"#);
    }

    #[test]
    fn pretty_printing_indents_two_spaces() {
        let v = Json::obj([("xs", Json::arr([Json::U64(1), Json::U64(2)]))]);
        assert_eq!(v.pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn to_json_covers_the_primitive_types() {
        assert_eq!(3u64.to_json(), Json::U64(3));
        assert_eq!((-3i32).to_json(), Json::I64(-3));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(Some(1u32).to_json(), Json::U64(1));
        assert_eq!((5u64, 0.5f64).to_json().compact(), "[5,0.5]");
        assert_eq!("s".to_json(), Json::Str("s".into()));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).compact(), "\"\\u0001\"");
        assert_eq!(Json::Str("t\tr\r".into()).compact(), "\"t\\tr\\r\"");
    }
}
