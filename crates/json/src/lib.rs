//! Dependency-free JSON output for the experiment harness.
//!
//! The build environment of this repository is fully offline, so the harness
//! cannot pull `serde`/`serde_json` from a registry. The `--json` output of the
//! `experiments` binary and the `BENCH_*.json` baselines only need one-way
//! *serialization* of a handful of result types, which this small crate covers:
//! a [`Json`] value tree, a [`ToJson`] conversion trait, and a deterministic
//! pretty printer whose output is stable across runs (object keys keep
//! insertion order; floats use Rust's shortest round-trip formatting).
//!
//! ```
//! use lsqca_json::{Json, ToJson};
//!
//! let value = Json::obj([
//!     ("name", "fig13".to_json()),
//!     ("points", vec![1u64, 2, 3].to_json()),
//! ]);
//! assert_eq!(value.compact(), r#"{"name":"fig13","points":[1,2,3]}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a decimal point).
    U64(u64),
    /// A signed integer (emitted without a decimal point).
    I64(i64),
    /// A double-precision float (shortest round-trip formatting; non-finite
    /// values are emitted as `null`, as `serde_json` does).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Renders the value with two-space indentation (like
    /// `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Renders the value without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        // Keep a trailing `.0` so the value reads as a float.
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                let (key, value) = &pairs[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                value.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_like_serde_json() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::Bool(true).compact(), "true");
        assert_eq!(Json::U64(42).compact(), "42");
        assert_eq!(Json::I64(-7).compact(), "-7");
        assert_eq!(Json::F64(1.5).compact(), "1.5");
        assert_eq!(Json::F64(2.0).compact(), "2.0");
        assert_eq!(Json::F64(f64::NAN).compact(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).compact(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn collections_preserve_order() {
        let v = Json::obj([
            ("b", 1u32.to_json()),
            ("a", vec![true, false].to_json()),
            ("c", Json::Null),
        ]);
        assert_eq!(v.compact(), r#"{"b":1,"a":[true,false],"c":null}"#);
    }

    #[test]
    fn pretty_printing_indents_two_spaces() {
        let v = Json::obj([("xs", Json::arr([Json::U64(1), Json::U64(2)]))]);
        assert_eq!(v.pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn to_json_covers_the_primitive_types() {
        assert_eq!(3u64.to_json(), Json::U64(3));
        assert_eq!((-3i32).to_json(), Json::I64(-3));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(Some(1u32).to_json(), Json::U64(1));
        assert_eq!((5u64, 0.5f64).to_json().compact(), "[5,0.5]");
        assert_eq!("s".to_json(), Json::Str("s".into()));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).compact(), "\"\\u0001\"");
        assert_eq!(Json::Str("t\tr\r".into()).compact(), "\"t\\tr\\r\"");
    }
}
