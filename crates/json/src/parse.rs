//! A recursive-descent JSON parser inverting the crate's printer.
//!
//! The parser accepts standard JSON (RFC 8259): the full escape set including
//! `\uXXXX` (with surrogate pairs), nested containers up to a fixed depth
//! limit, and numbers mapped onto the [`Json`] integer/float split the printer
//! uses — an integer literal without fraction or exponent becomes
//! [`Json::U64`]/[`Json::I64`], everything else [`Json::F64`]. Trailing
//! garbage after the top-level value is an error, so a truncated or
//! concatenated cache file cannot parse as a valid artifact.

use crate::Json;
use std::error::Error;
use std::fmt;

/// Containers deeper than this are rejected instead of risking a stack
/// overflow on adversarial input (the artifact schema nests three levels).
const MAX_DEPTH: usize = 128;

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input position.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonParseError {}

/// Parses JSON text into a [`Json`] value.
///
/// # Errors
///
/// Returns a [`JsonParseError`] locating the first malformed byte: unexpected
/// characters, unterminated strings/containers, invalid escapes or numbers,
/// excessive nesting, or trailing content after the top-level value.
pub fn parse(text: &str) -> Result<Json, JsonParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.parse_value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the top-level value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("value nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{keyword}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the span up to the next quote, escape, or control
            // byte: large string fields (cached instruction streams) copy in
            // slices instead of character by character.
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("string slices a UTF-8 boundary"))?;
                out.push_str(text);
            }
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape sequence"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(self.error("unescaped control character")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated `\\u` escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII `\\u` escape"))?;
        let code = u16::from_str_radix(digits, 16)
            .map_err(|_| self.error(format!("invalid `\\u` escape `{digits}`")))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let first = self.parse_hex4()?;
        // Surrogate pair: a high surrogate must be followed by `\uDC00..DFFF`.
        if (0xD800..0xDC00).contains(&first) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined =
                        0x10000 + (((first as u32) - 0xD800) << 10) + ((second as u32) - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.error("unpaired low surrogate"));
        }
        char::from_u32(first as u32).ok_or_else(|| self.error("invalid `\\u` escape"))
    }

    fn parse_number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_digits = self.consume_digits();
        if int_digits == 0 {
            return Err(self.error("expected a digit"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.consume_digits() == 0 {
                return Err(self.error("expected a digit after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return Err(self.error("expected a digit in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number literals are ASCII");
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            // Integers beyond 64 bits fall through to the float representation.
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ToJson;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(parse("2.0").unwrap(), Json::F64(2.0));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap(), Json::F64(-0.25));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn containers_parse_and_preserve_order() {
        let v = parse(r#"{"b":1,"a":[true,null,{"x":[]}]}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Json::U64(1)));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("x"), Some(&Json::Arr(vec![])));
        match &v {
            Json::Obj(pairs) => assert_eq!(pairs[0].0, "b"),
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Str("a\"b\\c\n\t\r\u{1}é€\u{10348}".into());
        assert_eq!(parse(&original.compact()).unwrap(), original);
        assert_eq!(
            parse(r#""\u00e9 \ud800\udf48 \/ \b\f""#).unwrap(),
            Json::Str("é \u{10348} / \u{8}\u{c}".into())
        );
    }

    #[test]
    fn printer_output_round_trips() {
        let doc = Json::obj([
            ("schema", "lsqca-workload-artifact-v1".to_json()),
            ("isa_version", 1u32.to_json()),
            ("nums", vec![0.5f64, 3.0, -1.25].to_json()),
            ("flags", vec![true, false].to_json()),
            ("nested", Json::obj([("k", Json::Null)])),
            ("text", "line1\nline2\t\"quoted\"".to_json()),
        ]);
        assert_eq!(parse(&doc.pretty()).unwrap(), doc);
        assert_eq!(parse(&doc.compact()).unwrap(), doc);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1.2.3",
            "1 2",
            "{\"a\":1} trailing",
            "\"\\ud800\"",
            "-",
            "[1,]",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let doc = Json::obj([("xs", vec![1u64, 2, 3].to_json())]).pretty();
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            assert!(
                parse(&doc[..cut]).is_err(),
                "truncation at {cut} should fail"
            );
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deeply"));
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn accessors_expose_scalars() {
        let v = parse(r#"{"n":3,"neg":-2,"x":1.5,"s":"t","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("neg").and_then(Json::as_i64), Some(-2));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }
}
