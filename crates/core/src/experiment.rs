//! High-level experiment runners.
//!
//! The benchmark harness and the examples all follow the same three steps:
//! compile a workload circuit once, pick an architecture configuration, and
//! simulate. [`Workload`] wraps a [`CompiledWorkload`] artifact so that
//! parameter sweeps (bank counts, factory counts, hybrid fractions) reuse the
//! expensive compilation *and* the precompiled per-program latency classes
//! (no per-run classification pass), and [`ExperimentResult`] carries the
//! numbers the paper reports: execution time, CPI, memory density, and the
//! overhead relative to the conventional baseline. Artifacts can also be
//! loaded from the on-disk cache (`lsqca_workloads::cache`) via
//! [`Workload::from_artifact`], in which case nothing is compiled at all.

use lsqca_analysis::{hot_set_by_access_count, hot_set_by_role_map, hot_set_size};
use lsqca_arch::{ArchConfig, FloorplanKind, PolicyKind};
use lsqca_circuit::{Circuit, RegisterMap, RegisterRole};
use lsqca_compiler::CompilerConfig;
use lsqca_lattice::{Beats, QubitTag};
use lsqca_sim::{ExecutionStats, MemoryTrace, SimConfig, Simulator};
use lsqca_workloads::CompiledWorkload;
use std::fmt;

/// How the hot set of a hybrid floorplan is chosen.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum HotSetStrategy {
    /// Pick the most frequently referenced qubits of the compiled program
    /// (the paper's default for Fig. 14).
    #[default]
    ByAccessCount,
    /// Pin every qubit whose register has one of these roles (Fig. 15 pins the
    /// SELECT control and temporal registers).
    ByRole(Vec<RegisterRole>),
    /// Use an explicit list of qubits.
    Explicit(Vec<QubitTag>),
}

/// Configuration of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// The floorplan to simulate.
    pub floorplan: FloorplanKind,
    /// Number of magic-state factories.
    pub factories: u32,
    /// Hybrid-floorplan fraction `f` (0 = pure LSQCA).
    pub hybrid_fraction: f64,
    /// How hot qubits are selected when `hybrid_fraction > 0`.
    pub hot_set: HotSetStrategy,
    /// Use the locality-aware store policy (Sec. V-B). Enabled by default, as
    /// in the paper's evaluation; disable it for ablation studies.
    pub locality_aware_store: bool,
    /// Runtime hot-set migration policy for hybrid floorplans. `None` (the
    /// default) and [`PolicyKind::Static`] both keep the compile-time hot set
    /// pinned; [`PolicyKind::Lru`] / [`PolicyKind::FreqDecay`] promote and
    /// demote qubits between the conventional region and the SAM banks at
    /// runtime, metered into `ExecutionStats::migration_beats`.
    pub migration: Option<PolicyKind>,
    /// Simulator options.
    pub sim: SimConfig,
}

impl ExperimentConfig {
    /// A pure-LSQCA (or baseline) configuration with the paper's defaults.
    pub fn new(floorplan: FloorplanKind, factories: u32) -> Self {
        ExperimentConfig {
            floorplan,
            factories,
            hybrid_fraction: 0.0,
            hot_set: HotSetStrategy::default(),
            locality_aware_store: true,
            migration: None,
            sim: SimConfig::default(),
        }
    }

    /// The conventional-baseline configuration with the same factory count.
    pub fn baseline(factories: u32) -> Self {
        ExperimentConfig::new(FloorplanKind::Conventional, factories)
    }

    /// Returns a copy with the given hybrid fraction.
    pub fn with_hybrid_fraction(mut self, fraction: f64) -> Self {
        self.hybrid_fraction = fraction;
        self
    }

    /// Returns a copy with the given hot-set strategy.
    pub fn with_hot_set(mut self, strategy: HotSetStrategy) -> Self {
        self.hot_set = strategy;
        self
    }

    /// Returns a copy with a runtime hot-set migration policy attached (only
    /// meaningful for hybrid floorplans, where a conventional region exists
    /// to promote into).
    pub fn with_migration(mut self, policy: PolicyKind) -> Self {
        self.migration = Some(policy);
        self
    }

    /// Returns a copy with trace recording enabled.
    pub fn with_trace(mut self) -> Self {
        self.sim.record_trace = true;
        self
    }

    /// Returns a copy that assumes infinitely fast magic-state production
    /// (the Sec. III-B motivation-study assumption).
    pub fn with_infinite_magic(mut self) -> Self {
        self.sim.assume_infinite_magic = true;
        self
    }

    /// Returns a copy that stores qubits back to their home cells instead of
    /// using the locality-aware store (ablation of Sec. V-B). The in-memory
    /// operation ablation lives on the compiler side: build the workload with
    /// [`Workload::with_compiler`] and `use_in_memory_ops: false`.
    pub fn with_home_store(mut self) -> Self {
        self.locality_aware_store = false;
        self
    }

    fn arch_config(&self) -> ArchConfig {
        let mut arch = ArchConfig::new(self.floorplan, self.factories)
            .with_hybrid_fraction(self.hybrid_fraction.clamp(0.0, 1.0));
        arch.locality_aware_store = self.locality_aware_store;
        arch
    }

    /// A short label for tables, e.g. `"Line #SAM=2, f=0.30, 4 MSF"` (with
    /// `, lru` appended when a migration policy is attached).
    pub fn label(&self) -> String {
        let mut label = if self.hybrid_fraction > 0.0 && !self.floorplan.is_conventional() {
            format!(
                "{}, f={:.2}, {} MSF",
                self.floorplan.label(),
                self.hybrid_fraction,
                self.factories
            )
        } else {
            format!("{}, {} MSF", self.floorplan.label(), self.factories)
        };
        if let Some(policy) = self.migration {
            label.push_str(", ");
            label.push_str(policy.name());
        }
        label
    }
}

/// A compiled workload, ready to be simulated under many configurations.
#[derive(Debug, Clone)]
pub struct Workload {
    artifact: CompiledWorkload,
}

impl Workload {
    /// Compiles `circuit` with the default compiler configuration.
    pub fn from_circuit(circuit: Circuit) -> Self {
        Workload::with_compiler(circuit, CompilerConfig::default())
    }

    /// Compiles `circuit` with an explicit compiler configuration.
    pub fn with_compiler(circuit: Circuit, config: CompilerConfig) -> Self {
        let descriptor = format!("adhoc:{}", circuit.name());
        Workload {
            artifact: CompiledWorkload::compile(descriptor, &circuit, config),
        }
    }

    /// Wraps an existing artifact (e.g. one loaded from the on-disk cache of
    /// `lsqca_workloads::cache`) without compiling anything.
    pub fn from_artifact(artifact: CompiledWorkload) -> Self {
        Workload { artifact }
    }

    /// The compiled-workload artifact backing this workload.
    pub fn compiled(&self) -> &CompiledWorkload {
        &self.artifact
    }

    /// The workload's register structure (for role queries on the qubit
    /// space; the source circuit itself is not retained).
    pub fn registers(&self) -> &RegisterMap {
        self.artifact.registers()
    }

    /// Number of data qubits (SAM addresses) the workload needs.
    pub fn num_qubits(&self) -> u32 {
        self.artifact.num_qubits
    }

    /// Selects the hot qubits for the given configuration.
    pub fn hot_qubits(&self, config: &ExperimentConfig) -> Vec<QubitTag> {
        if config.hybrid_fraction <= 0.0 || config.floorplan.is_conventional() {
            return Vec::new();
        }
        let count = hot_set_size(self.num_qubits(), config.hybrid_fraction);
        match &config.hot_set {
            HotSetStrategy::ByAccessCount => hot_set_by_access_count(&self.artifact.program, count),
            HotSetStrategy::ByRole(roles) => {
                // Role-based pinning uses the whole register set even when it
                // is smaller than `count`; `count` only caps the list.
                let mut hot = hot_set_by_role_map(self.artifact.registers(), roles);
                hot.truncate(count);
                hot
            }
            HotSetStrategy::Explicit(list) => {
                let mut hot = list.clone();
                hot.truncate(count);
                hot
            }
        }
    }

    /// The content-addressed result-store key for running this workload under
    /// `config`.
    ///
    /// The key covers everything the resulting statistics depend on: the full
    /// compiled-workload identity (the generator/compiler descriptor, pinned
    /// to the exact instruction stream by the payload hash), the complete
    /// experiment configuration (floorplan, factories, hybrid fraction,
    /// hot-set strategy, store policy, migration policy, simulator options,
    /// via `Debug`), the instruction-set version, and the
    /// simulation-semantics revision ([`lsqca_sim::RESULTS_REVISION`]) plus
    /// the stats payload schema. Changing any of them changes the key, so
    /// stale records are simply never found again — the same invalidation
    /// contract as the workload cache.
    pub fn result_key(&self, config: &ExperimentConfig) -> String {
        format!(
            "{}|payload={:016x}|experiment={:?}|isa=v{}|sim=r{}|stats={}",
            self.artifact.descriptor(),
            self.artifact.payload_hash(),
            config,
            lsqca_isa::ISA_VERSION,
            lsqca_sim::RESULTS_REVISION,
            lsqca_sim::STATS_SCHEMA,
        )
    }

    /// Reconstructs the [`ExperimentResult`] for `config` from previously
    /// computed statistics (a result-store hit) without simulating. Every
    /// derived field (CPI, hot-set size, labels) is recomputed exactly as
    /// [`Workload::run`] computes it, so a reconstructed result is
    /// indistinguishable from a fresh one — except the memory trace, which is
    /// not persisted and comes back empty (store-backed runners bypass the
    /// store when tracing is enabled).
    pub fn result_from_stats(
        &self,
        config: &ExperimentConfig,
        stats: ExecutionStats,
    ) -> ExperimentResult {
        ExperimentResult {
            workload: self.artifact.program.name().to_string(),
            config_label: config.label(),
            total_beats: stats.total_beats,
            cpi: stats.cpi(),
            memory_density: stats.memory_density,
            total_cells: stats.total_cells,
            hot_qubits: self.hot_qubits(config).len() as u32,
            stats,
            trace: MemoryTrace::new(),
        }
    }

    /// Simulates this workload (compiled exactly once, at construction or
    /// cache-load time) under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the compiled program is malformed with respect to the memory
    /// model; the compiler only produces well-formed programs, so this
    /// indicates a corrupted artifact.
    pub fn run(&self, config: &ExperimentConfig) -> ExperimentResult {
        self.run_with_hot(config, self.hot_qubits(config))
    }

    /// The simulator's qubit capacity for this workload. The footprint is
    /// precomputed in the artifact, so sizing the simulator is O(1) per run
    /// instead of a pass over the program.
    fn simulator_qubits(&self) -> u32 {
        self.num_qubits()
            .max(self.artifact.memory_footprint())
            .max(1)
    }

    /// Warms a policy-free simulator for one `(architecture, hot set, sim
    /// config)` group — the expensive part (placement, vacancy-ring
    /// construction) that [`Workload::run_batch`] pays once per group and
    /// then forks per configuration.
    fn warm(&self, arch: &ArchConfig, hot: &[QubitTag], sim: SimConfig) -> Simulator {
        Simulator::builder(arch, self.simulator_qubits())
            .hot_qubits(hot)
            .config(sim)
            .build()
            .unwrap_or_else(|err| panic!("invalid simulator configuration: {err}"))
    }

    /// Executes the artifact's pre-lowered execution trace on `simulator` —
    /// the whole sweep stack funnels through `Simulator::execute` here — and
    /// assembles the result.
    fn finish(
        &self,
        config: &ExperimentConfig,
        hot_qubits: u32,
        mut simulator: Simulator,
    ) -> ExperimentResult {
        let _span = lsqca_telemetry::span("point.execute");
        let outcome = match simulator.execute(&self.artifact) {
            Ok(outcome) => outcome,
            Err(err) => panic!(
                "simulation of `{}` failed: {err}",
                self.artifact.program.name()
            ),
        };
        ExperimentResult {
            workload: self.artifact.program.name().to_string(),
            config_label: config.label(),
            total_beats: outcome.stats.total_beats,
            cpi: outcome.stats.cpi(),
            memory_density: outcome.stats.memory_density,
            total_cells: outcome.stats.total_cells,
            hot_qubits,
            stats: outcome.stats,
            trace: outcome.trace,
        }
    }

    /// [`Workload::run`] with the hot set already selected (the batch path
    /// amortizes that selection across configurations sharing a strategy).
    fn run_with_hot(&self, config: &ExperimentConfig, hot: Vec<QubitTag>) -> ExperimentResult {
        let mut builder = Simulator::builder(&config.arch_config(), self.simulator_qubits())
            .hot_qubits(&hot)
            .config(config.sim);
        if let Some(policy) = config.migration {
            builder = builder.migration_policy(policy.build());
        }
        let simulator = builder
            .build()
            .unwrap_or_else(|err| panic!("invalid simulator configuration: {err}"));
        self.finish(config, hot.len() as u32, simulator)
    }

    /// Executes the workload's single pre-lowered execution trace against
    /// every configuration in `configs`, in order — the batched sweep path.
    ///
    /// The per-point work a naive `configs.iter().map(|c| w.run(c))` loop
    /// repeats is amortized here: the trace is lowered zero times (the
    /// artifact carries it), the hot-set selection — a sort over the
    /// program's access counts per point — is computed once per distinct
    /// `(hot-set size, strategy)` pair, and the simulator itself is warmed
    /// **once** per distinct `(architecture, hot set, sim config)` group and
    /// then copy-on-write-[`fork`](Simulator::fork)ed per configuration, so
    /// placement and vacancy-ring construction are never repeated for policy
    /// variants of the same machine. Results are identical to running each
    /// configuration individually; a sweep driver can therefore batch all
    /// points of one workload and keep its per-point result-store keys
    /// unchanged.
    pub fn run_batch(&self, configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
        self.run_batch_impl(configs).0
    }

    /// [`Workload::run_batch`] plus the batch's own `(warmed, forked)`
    /// simulator counts — the local view of the process-wide
    /// `lsqca_sim::snapshot` counters, returned so tests can assert the
    /// amortization contract without racing other threads.
    fn run_batch_impl(&self, configs: &[ExperimentConfig]) -> (Vec<ExperimentResult>, u64, u64) {
        // Sweeps vary floorplan/factories far more often than hot-set shape,
        // so tiny linear-scan memos beat hash maps here (typically a handful
        // of distinct entries per batch).
        let mut selected: Vec<(usize, HotSetStrategy, Vec<QubitTag>)> = Vec::new();
        let mut parents: Vec<(ArchConfig, Vec<QubitTag>, SimConfig, Simulator)> = Vec::new();
        let mut results = Vec::with_capacity(configs.len());
        for config in configs {
            let hot = if config.hybrid_fraction <= 0.0 || config.floorplan.is_conventional() {
                Vec::new()
            } else {
                let count = hot_set_size(self.num_qubits(), config.hybrid_fraction);
                match selected
                    .iter()
                    .find(|(c, strategy, _)| *c == count && *strategy == config.hot_set)
                {
                    Some((_, _, hot)) => hot.clone(),
                    None => {
                        let hot = self.hot_qubits(config);
                        selected.push((count, config.hot_set.clone(), hot.clone()));
                        hot
                    }
                }
            };
            let arch = config.arch_config();
            let parent = match parents
                .iter()
                .position(|(a, h, s, _)| *a == arch && *h == hot && *s == config.sim)
            {
                Some(index) => &parents[index].3,
                None => {
                    let warmed = self.warm(&arch, &hot, config.sim);
                    parents.push((arch, hot.clone(), config.sim, warmed));
                    &parents.last().expect("just pushed").3
                }
            };
            // The fork shares every page of the warmed parent and swaps in
            // this point's migration policy; the parent stays pristine.
            let simulator = parent.fork_with_policy(config.migration.map(PolicyKind::build));
            results.push(self.finish(config, hot.len() as u32, simulator));
        }
        let warmed = parents.len() as u64;
        let forked = configs.len() as u64;
        (results, warmed, forked)
    }

    /// Runs `config` and the conventional baseline with the same factory count,
    /// returning `(lsqca, baseline)`.
    pub fn run_with_baseline(
        &self,
        config: &ExperimentConfig,
    ) -> (ExperimentResult, ExperimentResult) {
        let baseline = ExperimentConfig {
            floorplan: FloorplanKind::Conventional,
            ..config.clone()
        };
        let mut results = self.run_batch(&[config.clone(), baseline]).into_iter();
        let lsqca = results.next().expect("batch of two returns two results");
        let baseline = results.next().expect("batch of two returns two results");
        (lsqca, baseline)
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Name of the workload circuit.
    pub workload: String,
    /// Label of the architecture configuration.
    pub config_label: String,
    /// Execution time in code beats.
    pub total_beats: Beats,
    /// Code beats per (non-negligible) command.
    pub cpi: f64,
    /// Memory density of the simulated architecture.
    pub memory_density: f64,
    /// Total logical cells charged to the architecture.
    pub total_cells: u64,
    /// Number of qubits pinned in the conventional region.
    pub hot_qubits: u32,
    /// Full execution statistics.
    pub stats: ExecutionStats,
    /// Memory reference trace (empty unless enabled).
    pub trace: MemoryTrace,
}

impl ExperimentResult {
    /// Execution-time overhead relative to `baseline` (1.0 = equal).
    pub fn overhead_vs(&self, baseline: &ExperimentResult) -> f64 {
        self.stats.overhead_vs(&baseline.stats)
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} beats, CPI {:.2}, density {:.1}%",
            self.workload,
            self.config_label,
            self.total_beats.as_u64(),
            self.cpi,
            100.0 * self.memory_density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsqca_workloads::Benchmark;

    fn workload() -> Workload {
        Workload::from_circuit(Benchmark::Multiplier.reduced_instance())
    }

    #[test]
    fn lsqca_beats_the_baseline_density_and_pays_some_time() {
        let w = workload();
        let config = ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 1);
        let (lsqca, baseline) = w.run_with_baseline(&config);
        assert!(lsqca.memory_density > baseline.memory_density);
        assert!((baseline.memory_density - 0.5).abs() < 1e-9);
        assert!(lsqca.total_beats >= baseline.total_beats);
        let overhead = lsqca.overhead_vs(&baseline);
        assert!(overhead >= 1.0);
        assert!(!lsqca.to_string().is_empty());
    }

    #[test]
    fn hybrid_fraction_trades_density_for_time() {
        let w = workload();
        let pure = w.run(&ExperimentConfig::new(
            FloorplanKind::PointSam { banks: 1 },
            1,
        ));
        let hybrid = w.run(
            &ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
                .with_hybrid_fraction(0.5),
        );
        assert!(hybrid.memory_density < pure.memory_density);
        assert!(hybrid.total_beats <= pure.total_beats);
        assert!(hybrid.hot_qubits > 0);
    }

    #[test]
    fn role_based_hot_set_uses_the_register_structure() {
        let select = Workload::from_circuit(Benchmark::Select.reduced_instance());
        let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(0.3)
            .with_hot_set(HotSetStrategy::ByRole(vec![
                RegisterRole::Control,
                RegisterRole::Temporal,
            ]));
        let hot = select.hot_qubits(&config);
        assert!(!hot.is_empty());
        let result = select.run(&config);
        assert!(result.hot_qubits > 0);
    }

    #[test]
    fn explicit_hot_set_is_respected() {
        let w = workload();
        let config = ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 1)
            .with_hybrid_fraction(0.1)
            .with_hot_set(HotSetStrategy::Explicit(vec![QubitTag(0), QubitTag(1)]));
        let hot = w.hot_qubits(&config);
        assert!(hot.contains(&QubitTag(0)));
    }

    #[test]
    fn artifact_backed_workloads_match_freshly_compiled_ones() {
        use lsqca_compiler::CompilerConfig;
        use lsqca_workloads::{CompiledWorkload, InstanceSize};
        let cfg = Benchmark::SquareRoot.config(InstanceSize::Reduced);
        let fresh = Workload::from_circuit(cfg.build());
        // Round-trip the artifact through its serialized form, as the on-disk
        // cache does, then run both under the same configuration.
        let artifact =
            CompiledWorkload::compile(cfg.descriptor(), &cfg.build(), CompilerConfig::default());
        let restored = CompiledWorkload::from_json(&artifact.to_json()).unwrap();
        let cached = Workload::from_artifact(restored);
        let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(0.25);
        let a = fresh.run(&config);
        let b = cached.run(&config);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.hot_qubits, b.hot_qubits);
        assert_eq!(fresh.num_qubits(), cached.num_qubits());
        assert_eq!(fresh.registers(), cached.registers());
    }

    #[test]
    fn trace_and_infinite_magic_options_propagate() {
        let w = Workload::from_circuit(Benchmark::Ghz.reduced_instance());
        let result = w.run(
            &ExperimentConfig::new(FloorplanKind::Conventional, 1)
                .with_trace()
                .with_infinite_magic(),
        );
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn labels_are_descriptive() {
        let plain = ExperimentConfig::new(FloorplanKind::LineSam { banks: 2 }, 4);
        assert_eq!(plain.label(), "Line #SAM=2, 4 MSF");
        let hybrid = plain.with_hybrid_fraction(0.25);
        assert!(hybrid.label().contains("f=0.25"));
        assert_eq!(ExperimentConfig::baseline(2).label(), "Conventional, 2 MSF");
        let migrating = hybrid.with_migration(PolicyKind::FreqDecay);
        assert!(migrating.label().ends_with(", freq-decay"));
    }

    #[test]
    fn migration_policies_run_through_the_experiment_facade() {
        let w = workload();
        let base = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(0.15);
        let pinned = w.run(&base.clone().with_migration(PolicyKind::Static));
        assert_eq!(pinned.stats.migrations, 0);
        // The static policy is observationally the policy-free run.
        let plain = w.run(&base);
        assert_eq!(pinned.stats, plain.stats);
        let adaptive = w.run(&base.with_migration(PolicyKind::FreqDecay));
        // Determinism: the same adaptive run twice is identical.
        let again = w.run(
            &ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
                .with_hybrid_fraction(0.15)
                .with_migration(PolicyKind::FreqDecay),
        );
        assert_eq!(adaptive.stats, again.stats);
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let w = workload();
        let configs = vec![
            ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1),
            ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
                .with_hybrid_fraction(0.25),
            ExperimentConfig::new(FloorplanKind::LineSam { banks: 2 }, 2)
                .with_hybrid_fraction(0.25),
            ExperimentConfig::new(FloorplanKind::LineSam { banks: 2 }, 2).with_hybrid_fraction(0.5),
            ExperimentConfig::baseline(1),
            ExperimentConfig::new(FloorplanKind::DualPointSam { banks: 1 }, 1)
                .with_hybrid_fraction(0.25)
                .with_migration(PolicyKind::FreqDecay),
        ];
        let batched = w.run_batch(&configs);
        assert_eq!(batched.len(), configs.len());
        for (config, batched) in configs.iter().zip(&batched) {
            assert_eq!(&w.run(config), batched);
        }
        // The two f = 0.25 points share one hot-set selection; the batch must
        // still report per-config hot sizes, not a merged one.
        assert_eq!(batched[1].hot_qubits, batched[2].hot_qubits);
        assert_ne!(batched[2].hot_qubits, batched[3].hot_qubits);
        assert_eq!(batched[4].hot_qubits, 0);
    }

    #[test]
    fn run_batch_warms_once_per_group_and_forks_per_config() {
        let w = workload();
        let base = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(0.15);
        let configs = vec![
            base.clone(),
            base.clone().with_migration(PolicyKind::Static),
            base.clone().with_migration(PolicyKind::Lru),
            base.clone().with_migration(PolicyKind::FreqDecay),
            ExperimentConfig::baseline(1),
        ];
        let warm_before = lsqca_sim::snapshot::warm_count();
        let fork_before = lsqca_sim::snapshot::fork_count();
        let (results, warmed, forked) = w.run_batch_impl(&configs);
        // The four policy variants share one warmed machine; the baseline is
        // its own group. Every point is a copy-on-write fork of its parent.
        assert_eq!(warmed, 2);
        assert_eq!(forked, configs.len() as u64);
        // The process-wide observability counters advance with the batch
        // (only lower bounds: other tests run in this process too).
        assert!(lsqca_sim::snapshot::warm_count() >= warm_before + warmed);
        assert!(lsqca_sim::snapshot::fork_count() >= fork_before + forked);
        // Forked runs are indistinguishable from individually warmed ones.
        assert_eq!(results.len(), configs.len());
        for (config, batched) in configs.iter().zip(&results) {
            assert_eq!(&w.run(config), batched);
        }
    }

    #[test]
    fn reconstructed_results_match_fresh_runs() {
        let w = workload();
        let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(0.25);
        let fresh = w.run(&config);
        let rebuilt = w.result_from_stats(&config, fresh.stats.clone());
        // Traces are not persisted; everything else must be identical.
        assert!(rebuilt.trace.is_empty());
        let mut fresh_no_trace = fresh.clone();
        fresh_no_trace.trace = lsqca_sim::MemoryTrace::new();
        assert_eq!(rebuilt, fresh_no_trace);
    }

    #[test]
    fn result_keys_cover_workload_and_configuration() {
        let w = workload();
        let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
        let key = w.result_key(&config);
        assert_eq!(key, w.result_key(&config), "keys are deterministic");
        assert!(key.contains("sim=r"));
        assert!(key.contains("isa=v"), "artifact descriptor embeds the ISA");
        // Any configuration change must change the key.
        assert_ne!(key, w.result_key(&config.clone().with_hybrid_fraction(0.5)));
        assert_ne!(
            key,
            w.result_key(&ExperimentConfig::new(
                FloorplanKind::LineSam { banks: 1 },
                1
            ))
        );
        assert_ne!(
            key,
            w.result_key(&config.clone().with_migration(PolicyKind::Lru))
        );
        // A different workload must change the key.
        let other = Workload::from_circuit(Benchmark::Cat.reduced_instance());
        assert_ne!(key, other.result_key(&config));
    }

    #[test]
    fn dual_point_floorplan_runs_end_to_end() {
        let w = workload();
        let dual = w.run(&ExperimentConfig::new(
            FloorplanKind::DualPointSam { banks: 1 },
            1,
        ));
        let single = w.run(&ExperimentConfig::new(
            FloorplanKind::PointSam { banks: 1 },
            1,
        ));
        // One extra cell + doubled CR: lower density (the CR overhead weighs
        // heavily on the reduced instance), far faster access.
        assert!(dual.memory_density < single.memory_density);
        assert!(dual.memory_density > 0.6);
        assert!(dual.total_beats < single.total_beats);
    }
}
