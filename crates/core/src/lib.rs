//! # LSQCA — Load/Store Quantum Computer Architecture
//!
//! A from-scratch reproduction of *"LSQCA: Resource-Efficient Load/Store
//! Architecture for Limited-Scale Fault-Tolerant Quantum Computing"*
//! (HPCA 2025). The library models surface-code floorplans in which a small
//! **Computational Register (CR)** performs logical operations while a dense
//! **Scan-Access Memory (SAM)** stores idle logical qubits, connected by
//! load/store instructions with variable latency that is hidden behind the
//! magic-state bottleneck and program access locality.
//!
//! The crate is a facade over the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`lattice`] | surface-code cells, grids, primitive protocol latencies |
//! | [`isa`] | the LSQCA instruction set (Table I), programs, assembly text |
//! | [`circuit`] | logical circuit IR, registers, decomposition, DAG analysis |
//! | [`workloads`] | the seven benchmark generators of the evaluation |
//! | [`compiler`] | circuit → LSQCA program lowering (Sec. VI-A) |
//! | [`arch`] | point/line SAM, multi-bank memories, MSFs, hybrid floorplans |
//! | [`sim`] | the code-beat-accurate simulator |
//! | [`analysis`] | access-locality analysis and hot-set selection |
//! | [`experiment`] | one-call experiment runners used by the benches |
//!
//! # Quick start
//!
//! ```
//! use lsqca::experiment::{ExperimentConfig, Workload};
//! use lsqca::arch::FloorplanKind;
//! use lsqca::workloads::Benchmark;
//!
//! // Compile a (reduced) GHZ benchmark once...
//! let workload = Workload::from_circuit(Benchmark::Ghz.reduced_instance());
//!
//! // ...and compare a line SAM against the conventional baseline.
//! let lsqca = workload.run(&ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 1));
//! let baseline = workload.run(&ExperimentConfig::new(FloorplanKind::Conventional, 1));
//!
//! assert!(lsqca.memory_density > baseline.memory_density);
//! assert!(lsqca.total_beats >= baseline.total_beats);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lsqca_analysis as analysis;
pub use lsqca_arch as arch;
pub use lsqca_circuit as circuit;
pub use lsqca_compiler as compiler;
pub use lsqca_isa as isa;
pub use lsqca_lattice as lattice;
pub use lsqca_sim as sim;
pub use lsqca_workloads as workloads;

pub mod experiment;
pub mod prelude;
