//! Convenience re-exports of the most commonly used types.
//!
//! ```
//! use lsqca::prelude::*;
//!
//! let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
//! assert_eq!(config.factories, 1);
//! ```

pub use crate::experiment::{ExperimentConfig, ExperimentResult, HotSetStrategy, Workload};
pub use lsqca_arch::{
    ArchConfig, BankKind, FloorplanKind, FloorplanSpec, MemorySystem, MigrationPolicy, PolicyKind,
};
pub use lsqca_circuit::{Circuit, Gate, RegisterRole};
pub use lsqca_compiler::{compile, CompilerConfig};
pub use lsqca_isa::{Instruction, MemAddr, Program, RegId};
pub use lsqca_lattice::{Beats, QubitTag};
pub use lsqca_sim::{simulate, ExecutionStats, SimConfig};
pub use lsqca_workloads::{Benchmark, CompiledWorkload, InstanceSize, WorkloadCache};
