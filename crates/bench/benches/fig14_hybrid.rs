//! Fig. 14 — hybrid-floorplan trade-off between memory density and execution
//! time overhead.
//!
//! Prints the quick-scale trade-off table (fraction step 0.25) once and
//! benchmarks one sweep. The full 0.05-step sweep over all seven paper-sized
//! benchmarks is available from the `experiments` binary with `--full`.

use criterion::{criterion_group, criterion_main, Criterion};
use lsqca::workloads::Benchmark;
use lsqca_bench::{fig14, Scale};

fn bench_fig14(c: &mut Criterion) {
    println!(
        "{}",
        fig14::render(
            Scale::Quick,
            &[Benchmark::Multiplier, Benchmark::Select],
            &[1],
            0.25
        )
    );
    let mut group = c.benchmark_group("fig14_hybrid");
    group.sample_size(10);
    group.bench_function("multiplier_sweep_quick", |b| {
        b.iter(|| fig14::generate(Scale::Quick, &[Benchmark::Multiplier], &[1], 0.25))
    });
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
