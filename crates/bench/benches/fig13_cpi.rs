//! Fig. 13 — CPI of every benchmark under every floorplan and factory count.
//!
//! Prints the quick-scale CPI table once and benchmarks the sweep over the
//! cheaper benchmarks. Use `cargo run --release -p lsqca-bench --bin
//! experiments -- fig13 --full` for the paper-sized instances.

use criterion::{criterion_group, criterion_main, Criterion};
use lsqca::workloads::Benchmark;
use lsqca_bench::{fig13, Scale};

fn bench_fig13(c: &mut Criterion) {
    println!("{}", fig13::render(Scale::Quick, &[], &[1, 4]));
    let mut group = c.benchmark_group("fig13_cpi");
    group.sample_size(10);
    group.bench_function("ghz_square_root_select_quick", |b| {
        b.iter(|| {
            fig13::generate(
                Scale::Quick,
                &[Benchmark::Ghz, Benchmark::SquareRoot, Benchmark::Select],
                &[1],
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
