//! Ablation bench: how much of LSQCA's performance comes from the
//! locality-aware store (Sec. V-B) and from in-memory operations (Sec. V-C)?
//!
//! Prints the quick-scale 2×2 ablation table once (both optimizations on/off on
//! a single-bank point SAM) and benchmarks the fully optimized and fully
//! de-optimized configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca_bench::{ablation, Scale};

fn bench_ablation(c: &mut Criterion) {
    let floorplan = FloorplanKind::PointSam { banks: 1 };
    println!("{}", ablation::render(Scale::Quick, &[], floorplan));

    let circuit = Benchmark::Multiplier.reduced_instance();
    let optimized = Workload::from_circuit(circuit.clone());
    let stripped = Workload::with_compiler(
        circuit,
        CompilerConfig {
            use_in_memory_ops: false,
            ..CompilerConfig::default()
        },
    );

    let mut group = c.benchmark_group("ablation_optimizations");
    group.sample_size(10);
    group.bench_function("optimized_point_sam", |b| {
        let config = ExperimentConfig::new(floorplan, 1);
        b.iter(|| optimized.run(&config))
    });
    group.bench_function("no_locality_no_in_memory", |b| {
        let config = ExperimentConfig::new(floorplan, 1).with_home_store();
        b.iter(|| stripped.run(&config))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
