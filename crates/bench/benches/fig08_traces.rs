//! Fig. 8 — memory reference locality of SELECT and the multiplier.
//!
//! Benchmarks the full trace-collection + locality-analysis pipeline on
//! reduced instances and prints the resulting summary table once, so that
//! `cargo bench` both measures the harness and regenerates the figure's rows.

use criterion::{criterion_group, criterion_main, Criterion};
use lsqca_bench::{fig08, Scale};

fn bench_fig08(c: &mut Criterion) {
    println!("{}", fig08::render(Scale::Quick));
    let mut group = c.benchmark_group("fig08_traces");
    group.sample_size(10);
    group.bench_function("select_and_multiplier_quick", |b| {
        b.iter(|| fig08::generate(Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench_fig08);
criterion_main!(benches);
