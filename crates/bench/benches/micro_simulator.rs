//! Microbenchmark: end-to-end simulator throughput and its hot-path pieces.
//!
//! Compiles a mid-sized multiplier once and measures how many code-beat
//! simulations per second the engine sustains on the point-SAM, line-SAM, and
//! conventional floorplans. This is the number that determines how long the
//! paper-scale figure sweeps take.
//!
//! The `micro_hotpath` group additionally compares the allocation-free
//! operand extraction and the dense-index residence table against the legacy
//! `Vec`/`HashMap` reference implementations kept in
//! [`lsqca_bench::hotpath::legacy`], so the speedup stays measurable in-repo.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::isa::LatencyTable;
use lsqca::lattice::{CellGrid, Coord, PathScratch};
use lsqca::prelude::*;
use lsqca::workloads::{shift_add_multiplier, MultiplierConfig};
use lsqca_bench::hotpath::{
    bank_grid, command_count_classes, legacy, operand_walk, operand_walk_legacy, relocation_walk,
    relocation_walk_legacy, relocation_working_set, residence_sweep, residence_sweep_legacy,
};

fn multiplier_workload() -> Workload {
    Workload::from_circuit(shift_add_multiplier(MultiplierConfig {
        operand_bits: 16,
        partial_products: None,
    }))
}

fn bench_simulator(c: &mut Criterion) {
    let workload = multiplier_workload();
    let instructions = workload.compiled().program.len();
    println!("simulating {instructions} instructions per iteration");

    let mut group = c.benchmark_group("micro_simulator");
    group.sample_size(10);
    for floorplan in [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::Conventional,
    ] {
        group.bench_function(floorplan.label(), |b| {
            let config = ExperimentConfig::new(floorplan, 1);
            b.iter(|| workload.run(&config))
        });
    }
    group.finish();
}

fn bench_hotpath(c: &mut Criterion) {
    let workload = multiplier_workload();
    let program = workload.compiled().program.clone();

    let mut group = c.benchmark_group("micro_hotpath");
    group.sample_size(20);

    // Operand extraction: inline `Operands` vs the legacy `Vec` returns.
    // The loop bodies are shared with `hotpath::generate` so the criterion
    // numbers and the BENCH_hotpath.json baseline measure the same thing.
    group.bench_function("operand_extraction_inline", |b| {
        b.iter(|| black_box(operand_walk(&program)))
    });
    group.bench_function("operand_extraction_legacy_vec", |b| {
        b.iter(|| black_box(operand_walk_legacy(&program)))
    });

    // Residence lookup: dense table vs the legacy hash map.
    let arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
    let memory = MemorySystem::new(&arch, workload.num_qubits().max(1), &[]);
    let map = legacy::residence_map(&memory);
    let tags: Vec<QubitTag> = (0..memory.num_qubits()).map(QubitTag).collect();
    group.bench_function("residence_lookup_dense", |b| {
        b.iter(|| black_box(residence_sweep(&memory, &tags)))
    });
    group.bench_function("residence_lookup_legacy_hashmap", |b| {
        b.iter(|| black_box(residence_sweep_legacy(&map, &tags)))
    });

    // Nearest-vacant query: anchor-registered VacancyIndex vs linear scan.
    let (grid, port) = bank_grid(workload.num_qubits().max(64));
    group.bench_function("nearest_vacant_indexed", |b| {
        b.iter(|| black_box(black_box(&grid).nearest_vacant(port)))
    });
    group.bench_function("nearest_vacant_legacy_scan", |b| {
        b.iter(|| black_box(legacy::nearest_vacant(black_box(&grid), port)))
    });

    // Fused relocation vs the remove → nearest_vacant → place triple walk.
    let working = relocation_working_set(&grid);
    let mut fused_grid = grid.clone();
    group.bench_function("relocate_fused", |b| {
        b.iter(|| black_box(relocation_walk(&mut fused_grid, port, &working)))
    });
    let mut triple_grid = grid.clone();
    group.bench_function("relocate_legacy_triple_walk", |b| {
        b.iter(|| black_box(relocation_walk_legacy(&mut triple_grid, port, &working)))
    });

    // Vacant-path BFS: dense PathScratch vs the legacy HashMap frontier.
    let route = CellGrid::new(grid.width(), grid.height());
    let from = Coord::new(0, route.height() / 2);
    let to = Coord::new(route.width() - 1, route.height() - 1);
    let mut scratch = PathScratch::new();
    group.bench_function("vacant_path_dense", |b| {
        b.iter(|| black_box(route.vacant_path_len_in(from, to, &mut scratch).unwrap()))
    });
    group.bench_function("vacant_path_legacy_hashmap", |b| {
        b.iter(|| black_box(legacy::vacant_path_len(&route, from, to).unwrap()))
    });

    // CPI command count: precompiled class vector vs per-instruction match.
    let table = LatencyTable::paper();
    let classes = table.classify_program(&program);
    group.bench_function("latency_class_precompiled", |b| {
        b.iter(|| black_box(command_count_classes(black_box(&classes))))
    });
    group.bench_function("latency_class_legacy_match", |b| {
        b.iter(|| black_box(legacy::command_count(&table, black_box(&program))))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_hotpath);
criterion_main!(benches);
