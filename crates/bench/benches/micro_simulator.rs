//! Microbenchmark: end-to-end simulator throughput.
//!
//! Compiles a mid-sized multiplier once and measures how many code-beat
//! simulations per second the engine sustains on the point-SAM, line-SAM, and
//! conventional floorplans. This is the number that determines how long the
//! paper-scale figure sweeps take.

use criterion::{criterion_group, criterion_main, Criterion};
use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::prelude::*;
use lsqca::workloads::{shift_add_multiplier, MultiplierConfig};

fn bench_simulator(c: &mut Criterion) {
    let circuit = shift_add_multiplier(MultiplierConfig {
        operand_bits: 16,
        partial_products: None,
    });
    let workload = Workload::from_circuit(circuit);
    let instructions = workload.compiled().program.len();
    println!("simulating {instructions} instructions per iteration");

    let mut group = c.benchmark_group("micro_simulator");
    group.sample_size(10);
    for floorplan in [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::Conventional,
    ] {
        group.bench_function(floorplan.label(), |b| {
            let config = ExperimentConfig::new(floorplan, 1);
            b.iter(|| workload.run(&config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
