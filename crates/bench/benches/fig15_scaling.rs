//! Fig. 15 — SELECT scaling with hybrid layouts.
//!
//! Prints the quick-scale scaling table (small lattices, capped term count)
//! once and benchmarks the generation. The paper-sized instance widths
//! (21–101) are available from the `experiments` binary with `--full`.

use criterion::{criterion_group, criterion_main, Criterion};
use lsqca_bench::{fig15, Scale};

fn bench_fig15(c: &mut Criterion) {
    println!("{}", fig15::render(Scale::Quick, &[1], Some(200)));
    let mut group = c.benchmark_group("fig15_scaling");
    group.sample_size(10);
    group.bench_function("select_scaling_quick", |b| {
        b.iter(|| fig15::generate(Scale::Quick, &[1], Some(100)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
