//! Microbenchmark: raw load/store latency modelling of the SAM banks.
//!
//! Measures how fast the point-SAM and line-SAM models can serve load/store
//! round trips, which bounds the simulator's throughput on memory-heavy
//! programs. Also doubles as an ablation harness for the locality-aware store
//! (compare the `locality_aware` and `home_store` groups).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lsqca::arch::{LineSamBank, PointSamBank};
use lsqca::lattice::QubitTag;

fn qubits(n: u32) -> Vec<QubitTag> {
    (0..n).map(QubitTag).collect()
}

fn bench_sam_latency(c: &mut Criterion) {
    let tags = qubits(400);
    let mut group = c.benchmark_group("micro_sam_latency");

    for locality in [true, false] {
        let label = if locality {
            "locality_aware"
        } else {
            "home_store"
        };
        group.bench_function(format!("point_sam_400_{label}"), |b| {
            b.iter_batched(
                || PointSamBank::new(&tags, locality),
                |mut bank| {
                    for i in 0..400u32 {
                        let q = QubitTag((i * 37) % 400);
                        if bank.contains(q) {
                            bank.load(q).unwrap();
                            bank.store(q).unwrap();
                        }
                    }
                    bank
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("line_sam_400_{label}"), |b| {
            b.iter_batched(
                || LineSamBank::new(&tags, locality),
                |mut bank| {
                    for i in 0..400u32 {
                        let q = QubitTag((i * 37) % 400);
                        if bank.contains(q) {
                            bank.load(q).unwrap();
                            bank.store(q).unwrap();
                        }
                    }
                    bank
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sam_latency);
criterion_main!(benches);
