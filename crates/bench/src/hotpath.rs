//! Hot-path micro measurements and the `BENCH_hotpath.json` baseline.
//!
//! The simulator's per-instruction loop used to heap-allocate a `Vec` for
//! every operand-list query, hash every memory-residence lookup, scan every
//! grid cell to find the vacancy nearest the bank port, mutate the grid's
//! three tables twice per relocation (remove → nearest_vacant → place instead
//! of the fused `relocate_into_nearest_vacancy`), run its vacant-path
//! BFS through a `HashMap` frontier, re-match on the instruction variant
//! for the CPI command count, and dispatch every instruction through a full
//! `Instruction` enum match (the interpreter the trace engine replaced).
//! This module keeps faithful *reference
//! implementations* of those legacy code paths ([`legacy`]) and measures them
//! against the allocation-free / dense-index / vacancy-indexed replacements,
//! so the speedup is tracked in-repo instead of relying on a historical
//! build. `experiments hotpath --json` writes the resulting [`HotpathReport`]
//! as the `BENCH_hotpath.json` baseline.

use crate::Scale;
use lsqca::experiment::{ExperimentConfig, Workload};
use lsqca::isa::{LatencyClass, LatencyTable};
use lsqca::lattice::{CellGrid, Coord, PathScratch};
use lsqca::prelude::*;
use lsqca::workloads::Benchmark;
use lsqca_json::{Json, ToJson};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Reference implementations of the pre-optimization hot path, kept verbatim
/// (modulo the return-type rename) so micro benches can compare against them.
pub mod legacy {
    use lsqca::arch::Residence;
    use lsqca::isa::{
        Instruction, LatencyClass, LatencyTable, MemAddr, OperandLocation, Program, RegId,
    };
    use lsqca::lattice::{CellGrid, Coord, LatticeError, QubitTag};
    use lsqca::prelude::MemorySystem;
    use lsqca::sim::{Classified, SimError, SimOutcome, Simulator};
    use std::collections::{HashMap, VecDeque};

    /// The pre-trace dispatch loop: the engine's reference interpreter, which
    /// matches on the full `Instruction` enum (and re-derives operands and
    /// flags from it) at every step. The interpreter is retained in the
    /// engine (behind [`Classified`]) as the executable specification the
    /// trace engine is shadow-tested against; this wrapper is the legacy side
    /// of the `trace_dispatch` micro comparison.
    ///
    /// # Errors
    ///
    /// Same contract as `Simulator::execute` on a [`Classified`] program.
    pub fn interpret(
        simulator: &mut Simulator,
        program: &Program,
        classes: &[LatencyClass],
    ) -> Result<SimOutcome, SimError> {
        simulator.execute(&Classified::new(program, classes))
    }

    /// The seed's `Instruction::qubit_operands`: one `Vec` allocation per call.
    pub fn qubit_operands(instr: &Instruction) -> Vec<OperandLocation> {
        use Instruction::*;
        use OperandLocation::{Memory, Register};
        match *instr {
            Ld { mem, reg } => vec![Memory(mem), Register(reg)],
            St { reg, mem } => vec![Register(reg), Memory(mem)],
            PzC { reg } | PpC { reg } | Pm { reg } | HdC { reg } | PhC { reg } => {
                vec![Register(reg)]
            }
            MxC { reg, .. } | MzC { reg, .. } => vec![Register(reg)],
            MxxC { reg1, reg2, .. } | MzzC { reg1, reg2, .. } => {
                vec![Register(reg1), Register(reg2)]
            }
            Sk { .. } => vec![],
            PzM { mem } | PpM { mem } | HdM { mem } | PhM { mem } => vec![Memory(mem)],
            MxM { mem, .. } | MzM { mem, .. } => vec![Memory(mem)],
            MxxM { reg, mem, .. } | MzzM { reg, mem, .. } => vec![Register(reg), Memory(mem)],
            Cx { control, target } => vec![Memory(control), Memory(target)],
        }
    }

    /// The seed's `Instruction::memory_operands`: filters a fresh `Vec`.
    pub fn memory_operands(instr: &Instruction) -> Vec<MemAddr> {
        qubit_operands(instr)
            .into_iter()
            .filter_map(|op| match op {
                OperandLocation::Memory(m) => Some(m),
                OperandLocation::Register(_) => None,
            })
            .collect()
    }

    /// The seed's `Instruction::register_operands`: filters a fresh `Vec`.
    pub fn register_operands(instr: &Instruction) -> Vec<RegId> {
        qubit_operands(instr)
            .into_iter()
            .filter_map(|op| match op {
                OperandLocation::Register(r) => Some(r),
                OperandLocation::Memory(_) => None,
            })
            .collect()
    }

    /// Rebuilds the seed's `HashMap<QubitTag, Residence>` residence table from
    /// a (dense-index) memory system, for lookup-cost comparison.
    pub fn residence_map(memory: &MemorySystem) -> HashMap<QubitTag, Residence> {
        (0..memory.num_qubits())
            .map(QubitTag)
            .filter_map(|q| memory.residence(q).map(|r| (q, r)))
            .collect()
    }

    /// The pre-index `CellGrid::nearest_vacant`: an O(cells) linear scan over
    /// every vacant cell, run on every point-SAM store.
    pub fn nearest_vacant(grid: &CellGrid, target: Coord) -> Option<Coord> {
        grid.vacant_cells()
            .min_by_key(|&c| (c.manhattan_distance(target), c.y, c.x))
    }

    /// The pre-scratch `CellGrid::vacant_path_len`: BFS with a
    /// `HashMap<Coord, u32>` frontier — the last hash map that lived on a
    /// lattice query path.
    ///
    /// # Errors
    ///
    /// Same contract as `CellGrid::vacant_path_len`.
    pub fn vacant_path_len(grid: &CellGrid, from: Coord, to: Coord) -> Result<u32, LatticeError> {
        if from == to {
            return Ok(0);
        }
        let mut dist: HashMap<Coord, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(from, 0);
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            for next in cur.neighbors() {
                if !grid.in_bounds(next) || dist.contains_key(&next) {
                    continue;
                }
                if next == to {
                    return Ok(d + 1);
                }
                if grid.is_vacant(next) {
                    dist.insert(next, d + 1);
                    queue.push_back(next);
                }
            }
        }
        Err(LatticeError::NoVacantPath { from, to })
    }

    /// The pre-bitmask `VacancyIndex`: vacant cells bucketed by Manhattan
    /// distance to the anchor with each ring kept as a **sorted `Vec`** of
    /// cell indices — every arbitrary removal is a binary search plus an
    /// O(ring) element shuffle, where the bitmask rings clear one bit.
    #[derive(Debug, Clone)]
    pub struct SortedRingIndex {
        anchor: Coord,
        width: u32,
        rings: Vec<Vec<u32>>,
        min_ring: usize,
        len: usize,
    }

    impl SortedRingIndex {
        /// Builds the index for a `width × height` grid from the vacant cells.
        pub fn new(
            anchor: Coord,
            width: u32,
            height: u32,
            vacancies: impl Iterator<Item = Coord>,
        ) -> Self {
            let max_distance = (width - 1 + height - 1) as usize;
            let mut index = SortedRingIndex {
                anchor,
                width,
                rings: vec![Vec::new(); max_distance + 1],
                min_ring: max_distance + 1,
                len: 0,
            };
            for coord in vacancies {
                index.insert(coord);
            }
            index
        }

        fn cell_index(&self, coord: Coord) -> u32 {
            coord.y * self.width + coord.x
        }

        /// Number of vacancies currently tracked.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True if no vacancy is tracked.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Records that `coord` became vacant (sorted insert).
        pub fn insert(&mut self, coord: Coord) {
            let d = coord.manhattan_distance(self.anchor) as usize;
            let idx = self.cell_index(coord);
            let ring = &mut self.rings[d];
            if let Err(pos) = ring.binary_search(&idx) {
                ring.insert(pos, idx);
                self.len += 1;
                self.min_ring = self.min_ring.min(d);
            }
        }

        /// Records that `coord` became occupied (binary search + removal).
        pub fn remove(&mut self, coord: Coord) {
            let d = coord.manhattan_distance(self.anchor) as usize;
            let idx = self.cell_index(coord);
            let ring = &mut self.rings[d];
            if let Ok(pos) = ring.binary_search(&idx) {
                ring.remove(pos);
                self.len -= 1;
                while self.min_ring < self.rings.len() && self.rings[self.min_ring].is_empty() {
                    self.min_ring += 1;
                }
            }
        }

        /// The vacant cell nearest the anchor, ties broken row-major.
        pub fn nearest(&self) -> Option<Coord> {
            self.rings
                .get(self.min_ring)?
                .first()
                .map(|&idx| Coord::new(idx % self.width, idx / self.width))
        }
    }

    /// The pre-classification CPI command count: one `is_negligible` latency
    /// match per instruction, as the engine used to do every run.
    pub fn command_count(table: &LatencyTable, program: &Program) -> usize {
        program
            .iter()
            .filter(|instr| !table.is_negligible(instr))
            .count()
    }

    /// The pre-fusion relocation walk of `in_memory_two_qubit_access` (and,
    /// modulo the checkout, of every locality-aware store): three separate
    /// grid mutations — `remove` (position table + cells + vacancy-ring
    /// insert), `nearest_vacant` (index read), `place` (the same three tables
    /// again) — where `relocate_into_nearest_vacancy` now makes one pass.
    pub fn relocate_via_triple_walk(
        grid: &mut CellGrid,
        qubit: QubitTag,
        target: Coord,
    ) -> (Coord, Coord) {
        let from = grid.remove(qubit).expect("qubit is on the grid");
        let dest = grid
            .nearest_vacant(target)
            .expect("the freed cell is vacant");
        grid.place(qubit, dest).expect("destination is vacant");
        (from, dest)
    }
}

/// How much wall time each measurement may spend.
#[derive(Debug, Clone, Copy)]
pub struct MeasureBudget {
    /// Samples per measurement; the median is reported.
    pub samples: usize,
    /// Target duration of one sample.
    pub sample_target: Duration,
    /// Warm-up duration before sampling.
    pub warmup: Duration,
}

impl MeasureBudget {
    /// The budget used for the published `BENCH_hotpath.json` baseline.
    pub fn baseline() -> Self {
        MeasureBudget {
            samples: 7,
            sample_target: Duration::from_millis(20),
            warmup: Duration::from_millis(20),
        }
    }

    /// A near-zero budget for shape-only tests: one call per sample.
    pub fn smoke() -> Self {
        MeasureBudget {
            samples: 1,
            sample_target: Duration::ZERO,
            warmup: Duration::ZERO,
        }
    }
}

/// Median-of-samples wall time per call of `f`, in nanoseconds.
fn measure_ns(budget: MeasureBudget, mut f: impl FnMut()) -> f64 {
    // Warm-up and per-call estimate.
    let warmup = Instant::now();
    let mut calls = 0u64;
    loop {
        f();
        calls += 1;
        if warmup.elapsed() >= budget.warmup {
            break;
        }
    }
    let per_call = warmup.elapsed().as_secs_f64() / calls as f64;
    let calls_per_sample =
        ((budget.sample_target.as_secs_f64() / per_call.max(1e-9)) as u64).max(1);

    let mut samples = Vec::with_capacity(budget.samples);
    for _ in 0..budget.samples.max(1) {
        let start = Instant::now();
        for _ in 0..calls_per_sample {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / calls_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One walk of the engine's per-instruction operand queries over `program`
/// with the current inline implementation. Shared by [`generate`] and the
/// `micro_hotpath` criterion group so both measure the same loop.
pub fn operand_walk(program: &lsqca::isa::Program) -> usize {
    let mut acc = 0usize;
    for instr in program.iter() {
        acc += instr.memory_operands().len();
        acc += instr.register_operands().len();
    }
    acc
}

/// The same walk through the legacy `Vec`-returning reference implementation.
pub fn operand_walk_legacy(program: &lsqca::isa::Program) -> usize {
    let mut acc = 0usize;
    for instr in program.iter() {
        acc += legacy::memory_operands(instr).len();
        acc += legacy::register_operands(instr).len();
    }
    acc
}

/// One sweep of residence lookups over `tags` through the dense table.
pub fn residence_sweep(memory: &MemorySystem, tags: &[QubitTag]) -> usize {
    tags.iter()
        .filter(|&&q| memory.residence(q).is_some())
        .count()
}

/// The same sweep through a legacy hash-map residence table.
pub fn residence_sweep_legacy(
    map: &std::collections::HashMap<QubitTag, lsqca::arch::Residence>,
    tags: &[QubitTag],
) -> usize {
    tags.iter().filter(|&&q| map.contains_key(&q)).count()
}

/// One CPI command-count pass over a precompiled latency-class vector: the
/// word-parallel count the dense `repr(u8)` vector enables, eight classes per
/// machine word, versus the legacy one-match-per-instruction walk.
pub fn command_count_classes(classes: &[LatencyClass]) -> usize {
    lsqca::isa::latency::command_count(classes)
}

/// One round of port-directed relocations over `tags` through the fused
/// primitive — the access pattern of the CX hot path, where each operand is
/// dragged next to the port in turn.
pub fn relocation_walk(grid: &mut CellGrid, port: Coord, tags: &[QubitTag]) -> u32 {
    let mut acc = 0u32;
    for &q in tags {
        let (from, to) = grid
            .relocate_into_nearest_vacancy(q, port)
            .expect("tags are on the grid");
        acc += from.manhattan_distance(to);
    }
    acc
}

/// The same round through the legacy remove → nearest_vacant → place triple.
pub fn relocation_walk_legacy(grid: &mut CellGrid, port: Coord, tags: &[QubitTag]) -> u32 {
    let mut acc = 0u32;
    for &q in tags {
        let (from, to) = legacy::relocate_via_triple_walk(grid, q, port);
        acc += from.manhattan_distance(to);
    }
    acc
}

/// The working set the relocation walks cycle over: tags spread across the
/// bank grid so the walk mixes already-near and far-from-port qubits, like a
/// CX stream over a rotating working set does once locality kicks in.
pub fn relocation_working_set(grid: &CellGrid) -> Vec<QubitTag> {
    let occupied = grid.occupied_count();
    let step = (occupied / 16).max(1);
    (0..occupied)
        .step_by(step)
        .map(|i| QubitTag(i as u32))
        .filter(|&q| grid.contains(q))
        .collect()
}

/// The working set of the ring-removal micro: a deterministically shuffled
/// list of vacant coordinates on a `size × size` grid with roughly half the
/// cells vacant — the state a vacancy index holds when many qubits are
/// checked out or a bank runs half-full. Shuffled so the removals are
/// *arbitrary* (hitting random positions inside rings), not front-pops.
pub fn ring_removal_working_set(size: u32) -> (Coord, Vec<Coord>) {
    let anchor = Coord::new(0, size / 2);
    let mut coords: Vec<Coord> = (0..size)
        .flat_map(|y| (0..size).map(move |x| Coord::new(x, y)))
        .filter(|c| (c.x + c.y) % 2 == 0)
        .collect();
    // Deterministic LCG shuffle (no RNG dependency, stable across runs).
    let mut state = 0x2545f491u64;
    for i in (1..coords.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        coords.swap(i, j);
    }
    (anchor, coords)
}

/// One round of arbitrary ring removals through the bitmask
/// [`VacancyIndex`](lsqca::lattice::VacancyIndex):
/// every working-set cell is removed and re-inserted, the update pattern
/// `place`/`remove`/`relocate` drive on every simulated store.
pub fn ring_removal_walk(index: &mut lsqca::lattice::VacancyIndex, coords: &[Coord]) -> usize {
    for &c in coords {
        index.remove(c);
        index.insert(c);
    }
    index.len()
}

/// The same round through the legacy sorted-`Vec` rings.
pub fn ring_removal_walk_legacy(index: &mut legacy::SortedRingIndex, coords: &[Coord]) -> usize {
    for &c in coords {
        index.remove(c);
        index.insert(c);
    }
    index.len()
}

/// A point-SAM-shaped occupancy grid at `num_qubits` scale: near-square with
/// the port on the west edge, filled row-major except the scan vacancy at the
/// port and two vacancies that stores have peeled open, with the port
/// registered as the vacancy anchor — the state `nearest_vacant(port)` is
/// queried against on every simulated store.
pub fn bank_grid(num_qubits: u32) -> (CellGrid, Coord) {
    let n = num_qubits as u64;
    let width = ((n + 1) as f64).sqrt().ceil() as u32;
    let height = ((n + 1) as f64 / width as f64).ceil() as u32;
    let mut grid = CellGrid::new(width, height);
    let port = Coord::new(0, height / 2);
    let mid = Coord::new(width / 2, height / 2);
    let far = Coord::new(width - 1, height - 1);
    let mut tag = 0u32;
    for y in 0..height {
        for x in 0..width {
            let c = Coord::new(x, y);
            if c == port || c == mid || c == far {
                continue;
            }
            grid.place(QubitTag(tag), c).expect("cells are distinct");
            tag += 1;
        }
    }
    grid.register_anchor(port).expect("the port is in bounds");
    (grid, port)
}

/// One legacy-vs-optimized comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What was measured.
    pub name: String,
    /// Nanoseconds per operation for the legacy reference implementation.
    pub legacy_ns: f64,
    /// Nanoseconds per operation for the current implementation.
    pub optimized_ns: f64,
}

impl Comparison {
    /// Legacy over optimized time (>1 means the optimization wins).
    pub fn speedup(&self) -> f64 {
        self.legacy_ns / self.optimized_ns.max(1e-9)
    }
}

impl ToJson for Comparison {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("legacy_ns_per_op", self.legacy_ns.to_json()),
            ("optimized_ns_per_op", self.optimized_ns.to_json()),
            ("speedup", self.speedup().to_json()),
        ])
    }
}

/// Absolute throughput of the end-to-end simulator on one floorplan.
#[derive(Debug, Clone)]
pub struct EndToEnd {
    /// Floorplan label.
    pub floorplan: String,
    /// Instructions in the simulated program.
    pub instructions: u64,
    /// Nanoseconds per simulated instruction.
    pub ns_per_instruction: f64,
}

impl ToJson for EndToEnd {
    fn to_json(&self) -> Json {
        Json::obj([
            ("floorplan", self.floorplan.to_json()),
            ("instructions", self.instructions.to_json()),
            ("ns_per_instruction", self.ns_per_instruction.to_json()),
            (
                "instructions_per_second",
                (1e9 / self.ns_per_instruction.max(1e-9)).to_json(),
            ),
        ])
    }
}

/// The `BENCH_hotpath.json` baseline: legacy-vs-optimized comparisons plus
/// absolute end-to-end simulator throughput for trajectory tracking.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Scale of the measured workload.
    pub scale: Scale,
    /// Legacy-vs-optimized micro comparisons.
    pub comparisons: Vec<Comparison>,
    /// Absolute end-to-end throughput per floorplan.
    pub end_to_end: Vec<EndToEnd>,
    /// Same-machine calibration: nanoseconds per run of a fixed reference
    /// workload (the frozen legacy HashMap BFS on an open 48×48 grid) that
    /// never changes across PRs. The CI regression gate compares
    /// `ns_per_instruction / calibration_ns_per_op` *ratios* between the
    /// committed baseline and a fresh run, so a slower or noisier machine
    /// shifts both sides equally instead of tripping the gate.
    pub calibration_ns_per_op: f64,
}

impl ToJson for HotpathReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", "lsqca-bench-hotpath-v1".to_json()),
            ("scale", self.scale.name().to_json()),
            (
                "calibration_ns_per_op",
                self.calibration_ns_per_op.to_json(),
            ),
            ("comparisons", self.comparisons.to_json()),
            ("end_to_end", self.end_to_end.to_json()),
        ])
    }
}

/// The workload the hot-path measurements run on: the mid-sized multiplier of
/// `micro_simulator` (Quick) or the paper-sized instance (Full), compiled or
/// cache-loaded through the shared workload cache.
pub fn workload(scale: Scale) -> Workload {
    crate::cached_workload(Benchmark::Multiplier, scale)
}

/// Runs every hot-path measurement with the baseline budget.
pub fn generate(scale: Scale) -> HotpathReport {
    generate_with(scale, MeasureBudget::baseline())
}

/// Runs every hot-path measurement under an explicit time budget.
pub fn generate_with(scale: Scale, budget: MeasureBudget) -> HotpathReport {
    let workload = workload(scale);
    let program = &workload.compiled().program;
    let instructions = program.len() as u64;

    let mut comparisons = Vec::new();

    // Operand extraction: the engine queries memory and register operands for
    // every instruction; measure one full program walk per call.
    let legacy_ns = measure_ns(budget, || {
        black_box(operand_walk_legacy(program));
    }) / instructions as f64;
    let optimized_ns = measure_ns(budget, || {
        black_box(operand_walk(program));
    }) / instructions as f64;
    comparisons.push(Comparison {
        name: "operand_extraction".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Residence lookup: dense table vs the seed's hash map, one sweep over
    // every qubit per call.
    let arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
    let memory = MemorySystem::new(&arch, workload.num_qubits().max(1), &[]);
    let map = legacy::residence_map(&memory);
    let tags: Vec<QubitTag> = (0..memory.num_qubits()).map(QubitTag).collect();
    let legacy_ns = measure_ns(budget, || {
        black_box(residence_sweep_legacy(&map, &tags));
    }) / tags.len() as f64;
    let optimized_ns = measure_ns(budget, || {
        black_box(residence_sweep(&memory, &tags));
    }) / tags.len() as f64;
    comparisons.push(Comparison {
        name: "residence_lookup".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Nearest-vacant query: the anchor-registered `VacancyIndex` vs the
    // legacy O(cells) linear scan, per query on a bank-shaped grid.
    let (grid, port) = bank_grid(workload.num_qubits().max(64));
    let legacy_ns = measure_ns(budget, || {
        black_box(legacy::nearest_vacant(black_box(&grid), port));
    });
    let optimized_ns = measure_ns(budget, || {
        black_box(black_box(&grid).nearest_vacant(port));
    });
    comparisons.push(Comparison {
        name: "nearest_vacant".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Fused relocation: `relocate_into_nearest_vacancy` vs the legacy
    // remove → nearest_vacant → place triple walk, cycling port-directed
    // relocations over a working set the way the CX hot path does. Both
    // sides run on their own grid and converge to the same steady state.
    let working = relocation_working_set(&grid);
    let mut legacy_grid = grid.clone();
    let legacy_ns = measure_ns(budget, || {
        black_box(relocation_walk_legacy(
            &mut legacy_grid,
            port,
            black_box(&working),
        ));
    }) / working.len() as f64;
    let mut fused_grid = grid.clone();
    let optimized_ns = measure_ns(budget, || {
        black_box(relocation_walk(&mut fused_grid, port, black_box(&working)));
    }) / working.len() as f64;
    comparisons.push(Comparison {
        name: "relocate".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Arbitrary ring removal: the bitmask rings (one bit clear/set per
    // update) vs the legacy sorted-`Vec` rings (binary search + element
    // shuffle), over a shuffled half-vacant working set — the update pattern
    // behind every place/remove/relocate once qubits are checked out.
    let ring_size = 64u32.max((workload.num_qubits() as f64).sqrt() as u32 * 2);
    let (ring_anchor, ring_coords) = ring_removal_working_set(ring_size);
    let mut legacy_rings = legacy::SortedRingIndex::new(
        ring_anchor,
        ring_size,
        ring_size,
        ring_coords.iter().copied(),
    );
    let legacy_ns = measure_ns(budget, || {
        black_box(ring_removal_walk_legacy(
            &mut legacy_rings,
            black_box(&ring_coords),
        ));
    }) / ring_coords.len() as f64;
    let mut bitmask_rings = lsqca::lattice::VacancyIndex::new(
        ring_anchor,
        ring_size,
        ring_size,
        ring_coords.iter().copied(),
    );
    let optimized_ns = measure_ns(budget, || {
        black_box(ring_removal_walk(
            &mut bitmask_rings,
            black_box(&ring_coords),
        ));
    }) / ring_coords.len() as f64;
    comparisons.push(Comparison {
        name: "ring_removal".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Vacant-path BFS: the reusable dense `PathScratch` distance grid vs the
    // legacy `HashMap` frontier, per corner-to-corner query on an open region
    // of the same dimensions (the worst case: the frontier visits every cell).
    let route = CellGrid::new(grid.width(), grid.height());
    let from = Coord::new(0, route.height() / 2);
    let to = Coord::new(route.width() - 1, route.height() - 1);
    let legacy_ns = measure_ns(budget, || {
        black_box(legacy::vacant_path_len(black_box(&route), from, to).expect("open region"));
    });
    let mut scratch = PathScratch::new();
    let optimized_ns = measure_ns(budget, || {
        black_box(
            black_box(&route)
                .vacant_path_len_in(from, to, &mut scratch)
                .expect("open region"),
        );
    });
    comparisons.push(Comparison {
        name: "vacant_path".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Latency classification: the precompiled per-program class vector vs the
    // legacy per-instruction `is_negligible` match, per instruction.
    let table = LatencyTable::paper();
    let classes = table.classify_program(program);
    let legacy_ns = measure_ns(budget, || {
        black_box(legacy::command_count(&table, black_box(program)));
    }) / instructions as f64;
    let optimized_ns = measure_ns(budget, || {
        black_box(command_count_classes(black_box(&classes)));
    }) / instructions as f64;
    comparisons.push(Comparison {
        name: "latency_class".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Trace lowering: a fresh `ExecutionTrace` (seven new column vectors) per
    // lowering vs the engine's reused scratch (`lower_into` keeps the
    // capacity of the previous program), per instruction — the cost
    // `Simulator::run` pays on a cache miss vs on every subsequent call.
    let legacy_ns = measure_ns(budget, || {
        black_box(lsqca::isa::lower(black_box(program)));
    }) / instructions as f64;
    let mut lowering_scratch = lsqca::isa::ExecutionTrace::new();
    let optimized_ns = measure_ns(budget, || {
        lsqca::isa::lower_into(black_box(program), &mut lowering_scratch);
        black_box(&lowering_scratch);
    }) / instructions as f64;
    comparisons.push(Comparison {
        name: "trace_lowering".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Trace dispatch: the legacy per-instruction interpreter (an enum match
    // plus operand re-derivation per step) vs the branchless walk over the
    // pre-lowered SoA trace, end-to-end on the point SAM. This is the
    // tentpole comparison: everything around the dispatch — memory system,
    // latencies, stats — is identical, so the delta is dispatch cost alone.
    let dispatch_arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
    let sim_config = lsqca::sim::SimConfig::default();
    let qubits = workload.num_qubits().max(1);
    let trace = lsqca::isa::lower(program);
    let mut interpreter = lsqca::sim::Simulator::builder(&dispatch_arch, qubits)
        .config(sim_config)
        .build()
        .expect("valid bench configuration");
    let legacy_ns = measure_ns(budget, || {
        black_box(legacy::interpret(
            &mut interpreter,
            black_box(program),
            &classes,
        ))
        .ok();
    }) / instructions as f64;
    let mut engine = lsqca::sim::Simulator::builder(&dispatch_arch, qubits)
        .config(sim_config)
        .build()
        .expect("valid bench configuration");
    let optimized_ns = measure_ns(budget, || {
        black_box(engine.execute(black_box(&trace))).ok();
    }) / instructions as f64;
    comparisons.push(Comparison {
        name: "trace_dispatch".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Snapshot fork: the copy-on-write fork `run_batch` takes per sweep
    // point vs the full warm-up (memory-system placement, vacancy-ring
    // construction, ready-table allocation) it replaces. Measured on a
    // large machine so the contrast is the one a paper-scale sweep sees:
    // warm-up is O(cells), a fork is O(pages) — a handful of
    // reference-count bumps.
    let fork_arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
    let fork_qubits_large = 4096u32;
    let legacy_ns = measure_ns(budget, || {
        black_box(
            lsqca::sim::Simulator::builder(black_box(&fork_arch), fork_qubits_large)
                .build()
                .expect("valid bench configuration"),
        );
    });
    let warmed_large = lsqca::sim::Simulator::builder(&fork_arch, fork_qubits_large)
        .build()
        .expect("valid bench configuration");
    let optimized_ns = measure_ns(budget, || {
        black_box(black_box(&warmed_large).fork());
    });
    comparisons.push(Comparison {
        name: "snapshot_fork".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Fork scaling: the same fork on a 64× smaller machine vs the large one.
    // A speedup near 1.0 is the point — fork cost must be independent of
    // qubit count and grid size (O(pages), not O(cells)), so the "legacy"
    // (small-machine) and "optimized" (large-machine) sides should tie.
    let warmed_small = lsqca::sim::Simulator::builder(&fork_arch, fork_qubits_large / 64)
        .build()
        .expect("valid bench configuration");
    let legacy_ns = measure_ns(budget, || {
        black_box(black_box(&warmed_small).fork());
    });
    let optimized_ns = measure_ns(budget, || {
        black_box(black_box(&warmed_large).fork());
    });
    comparisons.push(Comparison {
        name: "snapshot_fork_scaling".to_string(),
        legacy_ns,
        optimized_ns,
    });

    // Same-machine calibration for the ratio-based CI gate: the frozen
    // legacy BFS on a fixed open grid, untouched by any optimization work,
    // so its wall time tracks only the machine's speed.
    let cal_grid = CellGrid::new(48, 48);
    let cal_from = Coord::new(0, 0);
    let cal_to = Coord::new(47, 47);
    let calibration_ns_per_op = measure_ns(budget, || {
        black_box(
            legacy::vacant_path_len(black_box(&cal_grid), cal_from, cal_to).expect("open region"),
        );
    });

    // End-to-end simulator throughput per floorplan (absolute numbers; the
    // trajectory across PRs is what matters here).
    let end_to_end = [
        FloorplanKind::PointSam { banks: 1 },
        FloorplanKind::LineSam { banks: 1 },
        FloorplanKind::Conventional,
    ]
    .iter()
    .map(|&floorplan| {
        let config = ExperimentConfig::new(floorplan, 1);
        let ns = measure_ns(budget, || {
            black_box(workload.run(&config));
        });
        EndToEnd {
            floorplan: floorplan.label(),
            instructions,
            ns_per_instruction: ns / instructions as f64,
        }
    })
    .collect();

    HotpathReport {
        scale,
        comparisons,
        end_to_end,
        calibration_ns_per_op,
    }
}

/// Renders the report as a text table.
pub fn render(scale: Scale) -> String {
    let report = generate(scale);
    let mut rows: Vec<Vec<String>> = report
        .comparisons
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.2}", c.legacy_ns),
                format!("{:.2}", c.optimized_ns),
                format!("{:.2}x", c.speedup()),
            ]
        })
        .collect();
    for e in &report.end_to_end {
        rows.push(vec![
            format!("simulate {}", e.floorplan),
            "-".to_string(),
            format!("{:.2}", e.ns_per_instruction),
            "-".to_string(),
        ]);
    }
    crate::render_table(&["measurement", "legacy ns/op", "ns/op", "speedup"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_operand_extraction_matches_the_optimized_one() {
        let workload = workload(Scale::Quick);
        for instr in workload.compiled().program.iter() {
            assert_eq!(
                instr.memory_operands().as_slice(),
                legacy::memory_operands(instr).as_slice()
            );
            assert_eq!(
                instr.register_operands().as_slice(),
                legacy::register_operands(instr).as_slice()
            );
            assert_eq!(
                instr.qubit_operands().as_slice(),
                legacy::qubit_operands(instr).as_slice()
            );
        }
    }

    #[test]
    fn residence_map_mirrors_the_dense_table() {
        let arch = ArchConfig::new(FloorplanKind::LineSam { banks: 2 }, 1);
        let memory = MemorySystem::new(&arch, 50, &[]);
        let map = legacy::residence_map(&memory);
        assert_eq!(map.len(), 50);
        for q in 0..50 {
            assert_eq!(
                map.get(&QubitTag(q)).copied(),
                memory.residence(QubitTag(q))
            );
        }
    }

    #[test]
    fn report_has_the_expected_shape() {
        // Shape-only with a near-zero time budget: timing assertions live in
        // the benches, not unit tests.
        let report = generate_with(Scale::Quick, MeasureBudget::smoke());
        assert_eq!(report.comparisons.len(), 11);
        assert_eq!(report.end_to_end.len(), 3);
        assert!(report.calibration_ns_per_op > 0.0);
        let json = report.to_json().pretty();
        assert!(json.contains("lsqca-bench-hotpath-v1"));
        assert!(json.contains("calibration_ns_per_op"));
        for name in [
            "operand_extraction",
            "residence_lookup",
            "nearest_vacant",
            "relocate",
            "ring_removal",
            "vacant_path",
            "latency_class",
            "trace_lowering",
            "trace_dispatch",
            "snapshot_fork",
            "snapshot_fork_scaling",
        ] {
            assert!(json.contains(name), "missing comparison `{name}`");
        }
        for c in &report.comparisons {
            assert!(c.legacy_ns > 0.0 && c.optimized_ns > 0.0);
        }
    }

    #[test]
    fn legacy_sorted_rings_match_the_bitmask_rings() {
        let (anchor, coords) = ring_removal_working_set(24);
        assert!(coords.len() > 200);
        let mut legacy = legacy::SortedRingIndex::new(anchor, 24, 24, coords.iter().copied());
        let mut bitmask = lsqca::lattice::VacancyIndex::new(anchor, 24, 24, coords.iter().copied());
        assert_eq!(legacy.len(), bitmask.len());
        assert_eq!(legacy.nearest(), bitmask.nearest());
        // Arbitrary removals and reinserts stay in lock-step.
        for (i, &c) in coords.iter().enumerate() {
            legacy.remove(c);
            bitmask.remove(c);
            if i % 3 == 0 {
                legacy.insert(c);
                bitmask.insert(c);
            }
            assert_eq!(legacy.len(), bitmask.len());
            assert_eq!(legacy.nearest(), bitmask.nearest());
        }
        assert_eq!(legacy.is_empty(), bitmask.is_empty());
        // The walk used by the micro leaves both at the same state.
        let (anchor, coords) = ring_removal_working_set(16);
        let mut legacy = legacy::SortedRingIndex::new(anchor, 16, 16, coords.iter().copied());
        let mut bitmask = lsqca::lattice::VacancyIndex::new(anchor, 16, 16, coords.iter().copied());
        assert_eq!(
            ring_removal_walk_legacy(&mut legacy, &coords),
            ring_removal_walk(&mut bitmask, &coords)
        );
        assert_eq!(legacy.nearest(), bitmask.nearest());
    }

    #[test]
    fn legacy_nearest_vacant_matches_the_indexed_query() {
        let (mut grid, port) = bank_grid(150);
        assert_eq!(
            grid.nearest_vacant(port),
            legacy::nearest_vacant(&grid, port)
        );
        // Stays in agreement as the occupancy pattern shifts.
        let dest = grid.nearest_vacant(port).unwrap();
        grid.place(QubitTag(9999), dest).unwrap();
        assert_eq!(
            grid.nearest_vacant(port),
            legacy::nearest_vacant(&grid, port)
        );
        grid.remove(QubitTag(0)).unwrap();
        assert_eq!(
            grid.nearest_vacant(port),
            legacy::nearest_vacant(&grid, port)
        );
    }

    #[test]
    fn legacy_bfs_matches_the_dense_scratch() {
        let (grid, port) = bank_grid(80);
        let mut scratch = PathScratch::new();
        let far = Coord::new(grid.width() - 1, grid.height() - 1);
        assert_eq!(
            grid.vacant_path_len_in(port, far, &mut scratch).ok(),
            legacy::vacant_path_len(&grid, port, far).ok()
        );
        let open = CellGrid::new(7, 5);
        for (from, to) in [
            (Coord::new(0, 0), Coord::new(6, 4)),
            (Coord::new(3, 2), Coord::new(3, 2)),
        ] {
            assert_eq!(
                open.vacant_path_len_in(from, to, &mut scratch).unwrap(),
                legacy::vacant_path_len(&open, from, to).unwrap()
            );
        }
    }

    #[test]
    fn legacy_relocation_walk_matches_the_fused_walk() {
        let (grid, port) = bank_grid(150);
        let working = relocation_working_set(&grid);
        assert!(!working.is_empty());
        let mut fused = grid.clone();
        let mut triple = grid.clone();
        // Step-by-step agreement through several rounds, including the
        // steady state where qubits oscillate near the port.
        for _ in 0..4 {
            for &q in &working {
                let a = fused.relocate_into_nearest_vacancy(q, port).unwrap();
                let b = legacy::relocate_via_triple_walk(&mut triple, q, port);
                assert_eq!(a, b);
            }
            assert_eq!(fused, triple);
            assert_eq!(fused.nearest_vacant(port), triple.nearest_vacant(port));
        }
    }

    #[test]
    fn legacy_interpreter_matches_the_trace_engine_on_the_bench_workload() {
        // The micro comparison's two sides must compute the same thing: the
        // interpreter and the trace walk agree on the full outcome for the
        // exact workload and floorplan `trace_dispatch` measures. (The broad
        // equivalence over random programs lives in the sim crate's shadow
        // proptests; this pins the measured configuration.)
        let workload = workload(Scale::Quick);
        let program = &workload.compiled().program;
        let classes = LatencyTable::paper().classify_program(program);
        let trace = lsqca::isa::lower(program);
        let arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
        let config = lsqca::sim::SimConfig::default();
        let qubits = workload.num_qubits().max(1);
        let build = || {
            lsqca::sim::Simulator::builder(&arch, qubits)
                .config(config)
                .build()
                .expect("valid bench configuration")
        };
        let mut interpreter = build();
        let mut engine = build();
        let expected = legacy::interpret(&mut interpreter, program, &classes);
        let actual = engine.execute(&trace);
        assert_eq!(expected, actual);
        // And again on the dirty simulators, as the measurement loop does.
        let expected = legacy::interpret(&mut interpreter, program, &classes);
        assert_eq!(expected, engine.execute(&trace));
        // A fork of either warmed simulator is the third equal party — the
        // `snapshot_fork` micro's two sides compute interchangeable machines.
        let mut fork = build().fork();
        assert_eq!(expected, fork.execute(&trace));
    }

    #[test]
    fn legacy_command_count_matches_the_class_vector() {
        let workload = workload(Scale::Quick);
        let program = &workload.compiled().program;
        let table = LatencyTable::paper();
        let classes = table.classify_program(program);
        assert_eq!(classes.len(), program.len());
        assert_eq!(
            command_count_classes(&classes),
            legacy::command_count(&table, program)
        );
    }
}
