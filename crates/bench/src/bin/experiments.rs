//! Regenerates the paper's tables and figures as text tables or JSON.
//!
//! ```text
//! cargo run --release -p lsqca-bench --bin experiments -- <command> [--full] [--json]
//!
//! commands:
//!   table1     the LSQCA instruction set (Table I)
//!   fig8       memory reference locality of SELECT and the multiplier
//!   fig13      CPI for every benchmark, floorplan, and factory count
//!   fig14      hybrid-floorplan trade-off curves (density vs overhead)
//!   fig15      SELECT scaling with hybrid layouts
//!   headline        the headline density/overhead claims
//!   ablation        store-policy × in-memory-ops ablation on the point SAM
//!   hybrid-migrate  runtime hot-set migration policies vs the static hot set
//!   hotpath         legacy-vs-optimized hot-path micro measurements
//!   all             every deterministic generator above (excludes `hotpath`,
//!                   whose timing output differs run to run)
//! ```
//!
//! Flag matrix (any combination is valid; unknown flags are rejected):
//!
//! | flags            | behaviour                                              |
//! |------------------|--------------------------------------------------------|
//! | *(none)*         | quick-scale instances, human-readable text tables      |
//! | `--full`         | paper-sized instances (minutes instead of seconds)     |
//! | `--json`         | machine-readable JSON on stdout (stable schema: every  |
//! |                  | generator emits an array of flat objects; `hotpath`    |
//! |                  | emits the `lsqca-bench-hotpath-v1` document used as    |
//! |                  | the `BENCH_hotpath.json` baseline)                     |
//! | `--full --json`  | paper-sized instances, JSON output                     |
//!
//! The figure sweeps run in parallel across CPU cores; set `LSQCA_THREADS=1`
//! to force serial execution.
//!
//! Compiled workloads are cached on disk (default `target/lsqca-cache/`,
//! override with `LSQCA_CACHE_DIR`, disable with `LSQCA_NO_CACHE=1`), so a
//! repeated invocation over the same workloads — e.g. `all --full` run twice —
//! performs zero compilation on the second run. A one-line cache summary is
//! printed to stderr after every command; delete the cache directory (or run
//! with `LSQCA_NO_CACHE=1`) to force recompilation.
//!
//! Simulation results are likewise persisted to a crash-safe result store
//! (default `target/lsqca-store/`, override with `--store-dir`/`LSQCA_STORE_DIR`,
//! disable with `--no-store`/`LSQCA_NO_STORE=1`). Every point is journaled and
//! durably written before use, so an invocation killed mid-sweep loses at most
//! the in-flight points: rerunning the same command picks up the stored
//! results and produces the same report, and `--resume` prints a journal
//! audit (intact/torn/missing record counts) before doing so. A one-line
//! `result store: N computed, M hits, K quarantined` summary is printed to
//! stderr after every command.

use lsqca_bench::{
    ablation, fig08, fig13, fig14, fig15, headline, hotpath, hybrid_migrate, table1, Scale,
    FACTORY_COUNTS,
};
use lsqca_json::ToJson;
use std::process::ExitCode;

const COMMANDS: [&str; 10] = [
    "table1",
    "fig8",
    "fig13",
    "fig14",
    "fig15",
    "headline",
    "ablation",
    "hybrid-migrate",
    "hotpath",
    "all",
];

fn usage_line() -> String {
    format!(
        "usage: experiments <{}> [--full] [--json] [--store-dir <dir>] [--no-store] [--resume]",
        COMMANDS.join("|")
    )
}

fn usage(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{}", usage_line());
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Strict parsing: exactly one command, only the known flags.
    let mut command: Option<&str> = None;
    let mut full = false;
    let mut json = false;
    let mut no_store = false;
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--json" => json = true,
            "--no-store" => no_store = true,
            "--resume" => resume = true,
            "--store-dir" => {
                let Some(dir) = iter.next() else {
                    return usage("`--store-dir` requires a directory argument");
                };
                store_dir = Some(dir.clone());
            }
            "--help" | "-h" => {
                println!("{}", usage_line());
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"));
            }
            name => {
                if command.is_some() {
                    return usage(&format!("unexpected extra argument `{name}`"));
                }
                let Some(&known) = COMMANDS.iter().find(|&&c| c == name) else {
                    return usage(&format!("unknown experiment `{name}`"));
                };
                command = Some(known);
            }
        }
    }
    let Some(command) = command else {
        return usage("missing command");
    };
    if resume && no_store {
        return usage("`--resume` needs the result store; drop `--no-store`");
    }

    // The store flags travel to `lsqca_bench::result_store()` via the same
    // environment variables a wrapper script would set; the store is
    // initialized lazily on first use, strictly after this point.
    if no_store {
        std::env::set_var("LSQCA_NO_STORE", "1");
    }
    if let Some(dir) = &store_dir {
        std::env::set_var("LSQCA_STORE_DIR", dir);
    }
    if resume {
        // Audit the shard journals against the records on disk before the
        // sweeps run: intact records will be served as hits, torn or missing
        // ones recomputed.
        eprintln!("{}", lsqca_bench::result_store().verify_resume());
    }

    let scale = Scale::from_flag(full);
    let factories: Vec<u32> = if full {
        FACTORY_COUNTS.to_vec()
    } else {
        vec![1, 4]
    };
    let fraction_step = if full { 0.05 } else { 0.25 };
    let fig15_terms = if full { None } else { Some(200) };

    let run = |name: &str| -> String {
        match name {
            "table1" => {
                if json {
                    table1::rows().to_json().pretty()
                } else {
                    table1::render()
                }
            }
            "fig8" => {
                if json {
                    fig08::generate(scale).to_json().pretty()
                } else {
                    fig08::render(scale)
                }
            }
            "fig13" => {
                if json {
                    fig13::generate(scale, &[], &factories).to_json().pretty()
                } else {
                    fig13::render(scale, &[], &factories)
                }
            }
            "fig14" => {
                if json {
                    fig14::generate(scale, &[], &factories, fraction_step)
                        .to_json()
                        .pretty()
                } else {
                    fig14::render(scale, &[], &factories, fraction_step)
                }
            }
            "fig15" => {
                if json {
                    fig15::generate(scale, &factories, fig15_terms)
                        .to_json()
                        .pretty()
                } else {
                    fig15::render(scale, &factories, fig15_terms)
                }
            }
            "headline" => {
                if json {
                    headline::generate(scale).to_json().pretty()
                } else {
                    headline::render(scale)
                }
            }
            "ablation" => {
                let floorplan = lsqca::prelude::FloorplanKind::PointSam { banks: 1 };
                if json {
                    ablation::generate(scale, &[], floorplan).to_json().pretty()
                } else {
                    ablation::render(scale, &[], floorplan)
                }
            }
            "hybrid-migrate" => {
                if json {
                    hybrid_migrate::generate(scale, &[], &factories)
                        .to_json()
                        .pretty()
                } else {
                    hybrid_migrate::render(scale, &[], &factories)
                }
            }
            "hotpath" => {
                if json {
                    hotpath::generate(scale).to_json().pretty()
                } else {
                    hotpath::render(scale)
                }
            }
            other => unreachable!("command `{other}` is validated above"),
        }
    };

    if command == "all" {
        // `all` covers the deterministic figure/table generators only, so its
        // output can be diffed across runs; the timing-dependent `hotpath`
        // measurements must be requested explicitly.
        for name in COMMANDS.iter().filter(|&&c| c != "all" && c != "hotpath") {
            println!("==== {name} ====");
            println!("{}", run(name));
        }
    } else {
        println!("{}", run(command));
    }
    // Stderr so `--json` stdout stays machine-readable; `table1` compiles no
    // workloads, everything else reports its compile/hit split here.
    eprintln!("{}", lsqca_bench::cache_summary());
    eprintln!("{}", lsqca_bench::store_summary());
    ExitCode::SUCCESS
}
