//! Regenerates the paper's tables and figures as text tables.
//!
//! ```text
//! cargo run --release -p lsqca-bench --bin experiments -- <command> [--full] [--json]
//!
//! commands:
//!   table1     the LSQCA instruction set (Table I)
//!   fig8       memory reference locality of SELECT and the multiplier
//!   fig13      CPI for every benchmark, floorplan, and factory count
//!   fig14      hybrid-floorplan trade-off curves (density vs overhead)
//!   fig15      SELECT scaling with hybrid layouts
//!   headline   the headline density/overhead claims
//!   all        everything above
//! ```
//!
//! `--full` runs the paper-sized instances (minutes); the default quick mode
//! uses reduced instances with the same structure (seconds). `--json` prints
//! machine-readable output instead of text tables.

use lsqca_bench::{ablation, fig08, fig13, fig14, fig15, headline, table1, Scale, FACTORY_COUNTS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <table1|fig8|fig13|fig14|fig15|headline|ablation|all> [--full] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let scale = Scale::from_flag(full);
    let factories: Vec<u32> = if full {
        FACTORY_COUNTS.to_vec()
    } else {
        vec![1, 4]
    };
    let fraction_step = if full { 0.05 } else { 0.25 };
    let fig15_terms = if full { None } else { Some(200) };

    let run = |name: &str| -> String {
        match name {
            "table1" => {
                if json {
                    serde_json::to_string_pretty(&table1::rows()).expect("serializable")
                } else {
                    table1::render()
                }
            }
            "fig8" => {
                if json {
                    serde_json::to_string_pretty(&fig08::generate(scale)).expect("serializable")
                } else {
                    fig08::render(scale)
                }
            }
            "fig13" => {
                if json {
                    serde_json::to_string_pretty(&fig13::generate(scale, &[], &factories))
                        .expect("serializable")
                } else {
                    fig13::render(scale, &[], &factories)
                }
            }
            "fig14" => {
                if json {
                    serde_json::to_string_pretty(&fig14::generate(
                        scale,
                        &[],
                        &factories,
                        fraction_step,
                    ))
                    .expect("serializable")
                } else {
                    fig14::render(scale, &[], &factories, fraction_step)
                }
            }
            "fig15" => {
                if json {
                    serde_json::to_string_pretty(&fig15::generate(scale, &factories, fig15_terms))
                        .expect("serializable")
                } else {
                    fig15::render(scale, &factories, fig15_terms)
                }
            }
            "headline" => {
                if json {
                    serde_json::to_string_pretty(&headline::generate(scale)).expect("serializable")
                } else {
                    headline::render(scale)
                }
            }
            "ablation" => {
                let floorplan = lsqca::prelude::FloorplanKind::PointSam { banks: 1 };
                if json {
                    serde_json::to_string_pretty(&ablation::generate(scale, &[], floorplan))
                        .expect("serializable")
                } else {
                    ablation::render(scale, &[], floorplan)
                }
            }
            other => format!("unknown experiment `{other}`"),
        }
    };

    match command.as_str() {
        "all" => {
            for name in [
                "table1", "fig8", "fig13", "fig14", "fig15", "headline", "ablation",
            ] {
                println!("==== {name} ====");
                println!("{}", run(name));
            }
            ExitCode::SUCCESS
        }
        name @ ("table1" | "fig8" | "fig13" | "fig14" | "fig15" | "headline" | "ablation") => {
            println!("{}", run(name));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
