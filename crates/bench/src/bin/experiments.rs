//! Regenerates the paper's tables and figures as text tables or JSON.
//!
//! ```text
//! cargo run --release -p lsqca-bench --bin experiments -- <command> [--full] [--json]
//!
//! commands:
//!   table1     the LSQCA instruction set (Table I)
//!   fig8       memory reference locality of SELECT and the multiplier
//!   fig13      CPI for every benchmark, floorplan, and factory count
//!   fig14      hybrid-floorplan trade-off curves (density vs overhead)
//!   fig15      SELECT scaling with hybrid layouts
//!   headline        the headline density/overhead claims
//!   ablation        store-policy × in-memory-ops ablation on the point SAM
//!   hybrid-migrate  runtime hot-set migration policies vs the static hot set
//!   hotpath         legacy-vs-optimized hot-path micro measurements
//!   all             every deterministic generator above (excludes `hotpath`,
//!                   whose timing output differs run to run)
//!   merge           audit all shard journals in the store and emit the merged
//!                   `all` report (no new simulation unless records are missing)
//! ```
//!
//! Flag matrix (any combination is valid; unknown flags are rejected):
//!
//! | flags            | behaviour                                              |
//! |------------------|--------------------------------------------------------|
//! | *(none)*         | quick-scale instances, human-readable text tables      |
//! | `--full`         | paper-sized instances (minutes instead of seconds)     |
//! | `--json`         | machine-readable JSON on stdout (stable schema: every  |
//! |                  | generator emits an array of flat objects; `hotpath`    |
//! |                  | emits the `lsqca-bench-hotpath-v1` document used as    |
//! |                  | the `BENCH_hotpath.json` baseline)                     |
//! | `--full --json`  | paper-sized instances, JSON output                     |
//! | `--shards N`     | supervised sharded run: N worker processes partition   |
//! |                  | the sweep, crash/hang-tolerant (see `supervisor`)      |
//! | `--shard k/N`    | run as worker shard k of N (spawned by the supervisor) |
//! | `--metrics-out F`| write the `lsqca-metrics-v1` registry snapshot to F    |
//! |                  | (sharded/merge runs aggregate `metrics-<shard>.json`)  |
//! | `--trace-out F`  | record spans and write Chrome trace-event JSON to F    |
//! |                  | (load in Perfetto / `chrome://tracing`)                |
//!
//! The figure sweeps run in parallel across CPU cores; set `LSQCA_THREADS=1`
//! to force serial execution.
//!
//! Compiled workloads are cached on disk (default `target/lsqca-cache/`,
//! override with `LSQCA_CACHE_DIR`, disable with `LSQCA_NO_CACHE=1`), so a
//! repeated invocation over the same workloads — e.g. `all --full` run twice —
//! performs zero compilation on the second run. A one-line cache summary is
//! printed to stderr after every command; delete the cache directory (or run
//! with `LSQCA_NO_CACHE=1`) to force recompilation.
//!
//! Simulation results are likewise persisted to a crash-safe result store
//! (default `target/lsqca-store/`, override with `--store-dir`/`LSQCA_STORE_DIR`,
//! disable with `--no-store`/`LSQCA_NO_STORE=1`). Every point is journaled and
//! durably written before use, so an invocation killed mid-sweep loses at most
//! the in-flight points: rerunning the same command picks up the stored
//! results and produces the same report, and `--resume` prints a journal
//! audit (intact/torn/missing record counts) before doing so. A one-line
//! `result store: N computed, M hits, K quarantined` summary is printed to
//! stderr after every command, followed by a `trace engine: N lowered` line
//! counting in-process trace lowerings (cached artifacts carry their traces
//! pre-lowered, so a warm run reports `0 lowered`).
//!
//! Exit codes: `0` = complete, `2` = completed with quarantined sweep points
//! (see `--help`), `1` = fatal.

use lsqca_bench::{
    ablation, fig08, fig13, fig14, fig15, headline, hotpath, hybrid_migrate, supervisor, table1,
    Scale, FACTORY_COUNTS,
};
use lsqca_json::ToJson;
use std::process::ExitCode;
use std::time::Duration;

const COMMANDS: [&str; 11] = [
    "table1",
    "fig8",
    "fig13",
    "fig14",
    "fig15",
    "headline",
    "ablation",
    "hybrid-migrate",
    "hotpath",
    "all",
    "merge",
];

fn usage_line() -> String {
    format!(
        "usage: experiments <{}> [--full] [--json] [--store-dir <dir>] [--no-store] [--resume] \
         [--shards <n>] [--shard <k/n>] [--stall-timeout-ms <ms>] [--metrics-out <file>] \
         [--trace-out <file>]",
        COMMANDS.join("|")
    )
}

fn help() -> String {
    format!(
        "{usage}\n\n\
         sharded execution:\n  \
         --shards <n>             supervise <n> worker processes that partition the\n  \
                                  sweep by result-key hash; crashed or hung workers\n  \
                                  are restarted with backoff and resume through the\n  \
                                  store journal; points that kill a worker repeatedly\n  \
                                  are quarantined instead of wedging the sweep\n  \
         --shard <k/n>            run as worker shard k of n (spawned by --shards)\n  \
         --stall-timeout-ms <ms>  restart a worker whose journal has not grown for\n  \
                                  this long (default 30000)\n\n\
         observability:\n  \
         --metrics-out <file>     write the telemetry registry (counters, gauges,\n  \
                                  log2 histograms) as a `lsqca-metrics-v1` JSON\n  \
                                  document; sharded and merge runs aggregate the\n  \
                                  workers' metrics-<shard>.json files into it\n  \
         --trace-out <file>       enable span recording and write the run's spans\n  \
                                  as Chrome trace-event JSON (Perfetto-loadable)\n\n\
         exit codes:\n  \
         0  report complete: every sweep point computed or served from the store\n  \
         2  report complete, but quarantined sweep points were skipped and their\n     \
         rows are placeholders (listed on stderr by the merge audit)\n  \
         1  fatal: bad usage, unspawnable worker, shard journals that disagree on\n     \
         a record's content hash, or a shard failing repeatedly without progress",
        usage = usage_line()
    )
}

fn usage(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    eprintln!("{}", usage_line());
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Strict parsing: exactly one command, only the known flags.
    let mut command: Option<&str> = None;
    let mut full = false;
    let mut json = false;
    let mut no_store = false;
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut shards: Option<u32> = None;
    let mut shard: Option<(u32, u32)> = None;
    let mut stall_timeout = Duration::from_millis(30_000);
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--json" => json = true,
            "--no-store" => no_store = true,
            "--resume" => resume = true,
            "--store-dir" => {
                let Some(dir) = iter.next() else {
                    return usage("`--store-dir` requires a directory argument");
                };
                store_dir = Some(dir.clone());
            }
            "--shards" => {
                let parsed = iter.next().and_then(|v| v.parse::<u32>().ok());
                let Some(n) = parsed.filter(|&n| n >= 1) else {
                    return usage("`--shards` requires a worker count of at least 1");
                };
                shards = Some(n);
            }
            "--shard" => {
                let parsed = iter.next().and_then(|v| {
                    let (k, n) = v.split_once('/')?;
                    Some((k.parse::<u32>().ok()?, n.parse::<u32>().ok()?))
                });
                let Some((k, n)) = parsed.filter(|&(k, n)| n >= 1 && k < n) else {
                    return usage("`--shard` requires an index/count pair like `2/4` with k < n");
                };
                shard = Some((k, n));
            }
            "--metrics-out" => {
                let Some(path) = iter.next() else {
                    return usage("`--metrics-out` requires a file argument");
                };
                metrics_out = Some(path.clone());
            }
            "--trace-out" => {
                let Some(path) = iter.next() else {
                    return usage("`--trace-out` requires a file argument");
                };
                trace_out = Some(path.clone());
            }
            "--stall-timeout-ms" => {
                let Some(ms) = iter.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return usage("`--stall-timeout-ms` requires a duration in milliseconds");
                };
                stall_timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{}", help());
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag `{flag}`"));
            }
            name => {
                if command.is_some() {
                    return usage(&format!("unexpected extra argument `{name}`"));
                }
                let Some(&known) = COMMANDS.iter().find(|&&c| c == name) else {
                    return usage(&format!("unknown experiment `{name}`"));
                };
                command = Some(known);
            }
        }
    }
    let Some(command) = command else {
        return usage("missing command");
    };
    if resume && no_store {
        return usage("`--resume` needs the result store; drop `--no-store`");
    }
    if shards.is_some() && shard.is_some() {
        return usage("`--shards` (supervisor) and `--shard` (worker) are mutually exclusive");
    }
    if (shards.is_some() || shard.is_some() || command == "merge") && no_store {
        return usage("sharded execution and `merge` need the result store; drop `--no-store`");
    }
    if (shards.is_some() || shard.is_some()) && matches!(command, "hotpath" | "merge") {
        return usage(&format!("`{command}` cannot run sharded"));
    }

    // Anchor the span clock at startup so trace timestamps count from
    // process start; recording itself stays off unless requested.
    lsqca_telemetry::init_clock();
    if trace_out.is_some() {
        lsqca_telemetry::set_spans_enabled(true);
    }

    // The store flags travel to `lsqca_bench::result_store()` via the same
    // environment variables a wrapper script would set; the store is
    // initialized lazily on first use, strictly after this point.
    if no_store {
        std::env::set_var("LSQCA_NO_STORE", "1");
    }
    if let Some(dir) = &store_dir {
        std::env::set_var("LSQCA_STORE_DIR", dir);
    }
    // Sharded modes need a concrete shared directory even when the caller
    // relied on the default, and a journal label of their own: workers label
    // as their shard index, while the supervisor and `merge` must never
    // journal under a worker's label.
    let resolved_store_dir = store_dir
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(lsqca_store::default_store_dir);
    if let Some((index, count)) = shard {
        std::env::set_var("LSQCA_SHARD", index.to_string());
        std::env::set_var("LSQCA_STORE_DIR", &resolved_store_dir);
        supervisor::install_worker(index, count, &resolved_store_dir);
    } else if shards.is_some() || command == "merge" {
        std::env::set_var("LSQCA_SHARD", "merge");
        std::env::set_var("LSQCA_STORE_DIR", &resolved_store_dir);
    }

    // Supervise the worker fleet to completion before this process renders
    // the merged report (from the records the workers published).
    if let Some(count) = shards {
        let mut config =
            supervisor::ShardRunConfig::new(command, resolved_store_dir.clone(), count);
        config.full = full;
        config.stall_timeout = stall_timeout;
        match supervisor::run_sharded(&config) {
            Ok(outcome) => {
                eprintln!(
                    "supervisor: {} shards complete, {} restarts, {} quarantined points",
                    count,
                    outcome.restarts,
                    outcome.quarantined.len()
                );
            }
            Err(err) => {
                eprintln!("error: sharded run failed: {err}");
                return ExitCode::FAILURE;
            }
        }
        supervisor::install_merge(&resolved_store_dir);
    }

    if resume {
        // Audit the shard journals against the records on disk before the
        // sweeps run: intact records will be served as hits, torn or missing
        // ones recomputed.
        eprintln!("{}", lsqca_bench::result_store().verify_resume());
    }

    // `merge` and every post-supervision render audit the shard journals
    // first: conflicting content hashes for the same record are fatal, and
    // quarantined points downgrade the final exit code to 2.
    let mut quarantined_points = 0usize;
    if command == "merge" || shards.is_some() {
        if command == "merge" {
            supervisor::install_merge(&resolved_store_dir);
        }
        match lsqca_bench::result_store().merge_audit() {
            Ok(report) => {
                eprintln!("merge audit: {report}");
                for key in &report.quarantined_points {
                    eprintln!("merge audit: quarantined: {key}");
                }
                quarantined_points = report.quarantined_points.len();
            }
            Err(err) => {
                eprintln!("error: merge refused: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let scale = Scale::from_flag(full);
    let factories: Vec<u32> = if full {
        FACTORY_COUNTS.to_vec()
    } else {
        vec![1, 4]
    };
    let fraction_step = if full { 0.05 } else { 0.25 };
    let fig15_terms = if full { None } else { Some(200) };

    let run = |name: &str| -> String {
        match name {
            "table1" => {
                if json {
                    table1::rows().to_json().pretty()
                } else {
                    table1::render()
                }
            }
            "fig8" => {
                if json {
                    fig08::generate(scale).to_json().pretty()
                } else {
                    fig08::render(scale)
                }
            }
            "fig13" => {
                if json {
                    fig13::generate(scale, &[], &factories).to_json().pretty()
                } else {
                    fig13::render(scale, &[], &factories)
                }
            }
            "fig14" => {
                if json {
                    fig14::generate(scale, &[], &factories, fraction_step)
                        .to_json()
                        .pretty()
                } else {
                    fig14::render(scale, &[], &factories, fraction_step)
                }
            }
            "fig15" => {
                if json {
                    fig15::generate(scale, &factories, fig15_terms)
                        .to_json()
                        .pretty()
                } else {
                    fig15::render(scale, &factories, fig15_terms)
                }
            }
            "headline" => {
                if json {
                    headline::generate(scale).to_json().pretty()
                } else {
                    headline::render(scale)
                }
            }
            "ablation" => {
                let floorplan = lsqca::prelude::FloorplanKind::PointSam { banks: 1 };
                if json {
                    ablation::generate(scale, &[], floorplan).to_json().pretty()
                } else {
                    ablation::render(scale, &[], floorplan)
                }
            }
            "hybrid-migrate" => {
                if json {
                    hybrid_migrate::generate(scale, &[], &factories)
                        .to_json()
                        .pretty()
                } else {
                    hybrid_migrate::render(scale, &[], &factories)
                }
            }
            "hotpath" => {
                if json {
                    hotpath::generate(scale).to_json().pretty()
                } else {
                    hotpath::render(scale)
                }
            }
            other => unreachable!("command `{other}` is validated above"),
        }
    };

    if command == "all" || command == "merge" {
        // `all` covers the deterministic figure/table generators only, so its
        // output can be diffed across runs; the timing-dependent `hotpath`
        // measurements must be requested explicitly. `merge` renders the same
        // report from the shard-published records, byte-identical to a
        // single-process `all` over the same sweep.
        for name in COMMANDS
            .iter()
            .filter(|&&c| c != "all" && c != "hotpath" && c != "merge")
        {
            println!("==== {name} ====");
            println!("{}", run(name));
        }
    } else {
        println!("{}", run(command));
    }
    // A worker leaves its final metrics snapshot next to its journal so the
    // supervisor/merge aggregation sees the completed totals (a no-op in
    // every other mode).
    supervisor::export_worker_metrics();

    // Stderr so `--json` stdout stays machine-readable; `table1` compiles no
    // workloads, everything else reports its compile/hit split here. The
    // block is rendered from one registry snapshot; its four line formats
    // are stable and CI-greppable. A warm run loads every execution trace
    // from the artifact cache and answers every point from the result store,
    // so it reports `0 lowered` and `0 warmed`.
    eprintln!("{}", lsqca_bench::telemetry_summary());

    if let Some(path) = &metrics_out {
        let mut snapshot = lsqca_bench::telemetry::metrics_snapshot();
        if command == "merge" || shards.is_some() {
            // Fold in what the shard workers measured; a missing or corrupt
            // per-shard file degrades to partial aggregation with a warning,
            // never a failure — the results themselves are safe in the store.
            for warning in
                lsqca_bench::telemetry::aggregate_shard_metrics(&mut snapshot, &resolved_store_dir)
            {
                eprintln!("warning: {warning}");
            }
        }
        if let Err(err) = std::fs::write(path, snapshot.to_json().pretty() + "\n") {
            eprintln!("error: cannot write metrics to `{path}`: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "metrics: wrote {} ({path})",
            lsqca_telemetry::METRICS_SCHEMA
        );
    }
    if let Some(path) = &trace_out {
        let spans = lsqca_telemetry::take_spans();
        let dropped = lsqca_telemetry::dropped_spans();
        let document = lsqca_telemetry::chrome_trace(&spans);
        if let Err(err) = std::fs::write(path, document.pretty() + "\n") {
            eprintln!("error: cannot write trace to `{path}`: {err}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: wrote {} spans ({dropped} dropped) as Chrome trace events ({path})",
            spans.len()
        );
    }

    if quarantined_points > 0 {
        eprintln!(
            "warning: {quarantined_points} quarantined sweep points rendered as placeholders"
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
