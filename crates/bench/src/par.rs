//! Thread-pool-free data parallelism for the figure sweeps.
//!
//! The build environment is offline, so `rayon` is unavailable; the sweeps use
//! `std::thread::scope` directly. [`par_map`] preserves input order, balances
//! load with an atomic work index (configurations differ wildly in cost — a
//! conventional-baseline run is orders of magnitude cheaper than a point-SAM
//! run), and degrades to a serial loop for tiny inputs or single-core hosts.
//!
//! Thread count can be capped with the `LSQCA_THREADS` environment variable
//! (`LSQCA_THREADS=1` forces serial execution, useful when benchmarking the
//! harness itself).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use for `n` independent jobs.
fn thread_count(jobs: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cap = std::env::var("LSQCA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hardware);
    cap.min(hardware).min(jobs.max(1))
}

/// Applies `f` to every item, in parallel, returning results in input order.
///
/// `f` runs on multiple threads concurrently, so it must be `Sync`; panics in
/// a worker propagate to the caller.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed by a worker")
        })
        .collect()
}

/// Applies `f` to every item in parallel and concatenates the resulting
/// vectors in input order.
pub fn par_flat_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> Vec<R> + Sync) -> Vec<R> {
    par_map(items, f).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(par_map::<u32, u32>(&[], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn flat_map_concatenates_in_order() {
        let out = par_flat_map(&[1usize, 2, 3], |&n| vec![n; n]);
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn uneven_workloads_are_balanced() {
        // Jobs with wildly different costs still land in the right slots.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                // Simulate an expensive configuration.
                (0..20_000u64).fold(x, |acc, i| acc.wrapping_add(i))
            } else {
                x
            }
        });
        for (i, &x) in items.iter().enumerate() {
            if x % 7 != 0 {
                assert_eq!(out[i], x);
            }
        }
    }
}
