//! Supervised multi-process sharded sweep execution.
//!
//! A sweep's points are partitioned across N worker shards by result-key
//! hash ([`owning_shard`]), so the partition is deterministic under the
//! work-stealing parallel drivers (which visit points in nondeterministic
//! order) and stable across runs. Each worker is a separate OS process —
//! this same `experiments` binary re-invoked with `--shard k/N` and
//! `LSQCA_SHARD=k` — publishing into one shared result store, each under its
//! own journal. The supervisor ([`run_sharded`]):
//!
//! * watches per-worker liveness through journal-growth heartbeats (journal
//!   byte length + in-flight marker content) with a configurable stall
//!   timeout, killing and restarting a wedged worker;
//! * restarts crashed / nonzero-exit workers with bounded exponential
//!   backoff — a restarted worker resumes through the journal, so no
//!   completed point is ever recomputed;
//! * quarantines poisoned points: a worker that dies repeatedly with the
//!   same point in flight gets that point recorded in
//!   `quarantine-<shard>.log` and skipped on the next restart, so one bad
//!   point cannot wedge the sweep;
//! * declares the sweep fatal only after a worker fails
//!   [`ShardRunConfig::max_stalled_restarts`] consecutive times with no
//!   progress (no journal growth, no quarantine decision).
//!
//! In-process, the worker side consists of a partition plan installed before
//! the sweep starts ([`install_worker`] / [`install_merge`]) and consulted by
//! the store funnel via [`should_compute`], plus an [`InflightGuard`] wrapped
//! around every computation so the supervisor can attribute a crash to a
//! point post-mortem.

use lsqca_store::{
    fnv1a64, progress_signature, quarantined_keys, DiskIo, InflightLog, QuarantineEntry,
    QuarantineLog,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How this process participates in a sharded sweep: which result keys it
/// computes and which it merely renders from other shards' records.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    index: u32,
    count: u32,
    quarantined: BTreeSet<String>,
}

impl ShardPlan {
    /// Whether this process computes `key` (owned by its shard and not
    /// quarantined).
    fn computes(&self, key: &str) -> bool {
        owning_shard(key, self.count) == self.index && !self.quarantined.contains(key)
    }
}

/// The shard that owns `key` in a `shards`-way partition: a stable hash of
/// the full result key, so the partition is independent of sweep iteration
/// order (the parallel drivers steal work nondeterministically) and of which
/// driver enumerates the point.
///
/// The FNV hash is passed through a SplitMix64-style finalizer before the
/// modulus: raw FNV-1a's low bit is just the XOR of every byte's low bit, so
/// keys whose varying substring appears an even number of times all share a
/// parity and a 2-way partition would starve one shard.
pub fn owning_shard(key: &str, shards: u32) -> u32 {
    let mut h = fnv1a64(key.as_bytes());
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h % u64::from(shards.max(1))) as u32
}

static PLAN: OnceLock<ShardPlan> = OnceLock::new();
static INFLIGHT: OnceLock<InflightTracker> = OnceLock::new();
/// `(shard label, store dir)` of this process when it is a worker — where
/// [`export_worker_metrics`] writes `metrics-<shard>.json`.
static WORKER_EXPORT: OnceLock<(String, PathBuf)> = OnceLock::new();

/// The in-flight point tracker a worker writes through (see
/// [`lsqca_store::InflightLog`]); `keys` mirrors the file so concurrent
/// sweep threads can each mark their own point.
struct InflightTracker {
    log: InflightLog,
    keys: Mutex<BTreeSet<String>>,
}

impl InflightTracker {
    fn add(&self, key: &str) {
        let mut keys = self.keys.lock().unwrap();
        keys.insert(key.to_string());
        let _ = self.log.set(&keys);
    }

    fn remove(&self, key: &str) {
        let mut keys = self.keys.lock().unwrap();
        keys.remove(key);
        let _ = self.log.set(&keys);
    }
}

/// Installs this process as worker `index` of `count`, resuming past any
/// quarantined points recorded in `store_dir`. Call once, before the first
/// sweep point runs. Subsequent calls are ignored (the plan is process-wide).
pub fn install_worker(index: u32, count: u32, store_dir: &Path) {
    let io = DiskIo;
    let _ = PLAN.set(ShardPlan {
        index,
        count,
        quarantined: quarantined_keys(&io, store_dir),
    });
    let log = InflightLog::new(Arc::new(DiskIo), store_dir, &index.to_string());
    // Start from an empty marker: keys left by a previous (killed) incarnation
    // were already counted against the point by the supervisor.
    let _ = log.set(&BTreeSet::new());
    let _ = INFLIGHT.set(InflightTracker {
        log,
        keys: Mutex::new(BTreeSet::new()),
    });
    let _ = WORKER_EXPORT.set((index.to_string(), store_dir.to_path_buf()));
}

/// In worker mode, writes this process's metrics snapshot to
/// `metrics-<shard>.json` in the store directory (atomic replace); a no-op
/// otherwise. Called after every completed point (the journal-heartbeat
/// cadence) and again at worker exit, so the supervisor's aggregation sees
/// counters that are at most one point stale even if the worker is later
/// SIGKILLed. Export failures are logged, never fatal — metrics must not
/// take down a sweep.
pub fn export_worker_metrics() {
    let Some((label, dir)) = WORKER_EXPORT.get() else {
        return;
    };
    if let Err(err) = crate::telemetry::write_shard_metrics(dir, label) {
        eprintln!("worker: metrics export failed (ignored): {err}");
    }
}

/// Installs this process as the merge/render side of a sharded sweep: it may
/// compute any missing point itself (self-healing) but skips quarantined
/// points, rendering placeholders for them instead of re-triggering whatever
/// killed the workers.
pub fn install_merge(store_dir: &Path) {
    let io = DiskIo;
    let _ = PLAN.set(ShardPlan {
        index: 0,
        count: 1,
        quarantined: quarantined_keys(&io, store_dir),
    });
}

/// Whether this process computes `key` (true when no shard plan is
/// installed — the ordinary single-process mode).
pub fn should_compute(key: &str) -> bool {
    PLAN.get().is_none_or(|plan| plan.computes(key))
}

/// The poison conjunction `LSQCA_POISON_KEY` selects (test hook): a worker
/// aborts when it starts computing a key containing every `&`-separated
/// fragment. Lets the CI smoke manufacture a deterministically crashing sweep
/// point without shipping one.
fn poison_fragments() -> &'static Option<Vec<String>> {
    static POISON: OnceLock<Option<Vec<String>>> = OnceLock::new();
    POISON.get_or_init(|| {
        std::env::var("LSQCA_POISON_KEY")
            .ok()
            .filter(|v| !v.is_empty())
            .map(|v| v.split('&').map(str::to_string).collect())
    })
}

/// Marks a sweep point as in flight for the lifetime of the guard, so a
/// worker death mid-computation is attributable to the point. Dropping the
/// guard clears the mark — except on panic, where the mark must survive into
/// the post-mortem (the panicking thread is exactly the evidence).
pub struct InflightGuard {
    key: Option<String>,
}

impl InflightGuard {
    /// Marks `key` in flight (a no-op outside worker mode). Aborts the
    /// process if `key` matches the poison conjunction, after the mark is
    /// durably on disk.
    pub fn enter(key: &str) -> InflightGuard {
        let Some(tracker) = INFLIGHT.get() else {
            return InflightGuard { key: None };
        };
        tracker.add(key);
        if let Some(fragments) = poison_fragments() {
            if fragments.iter().all(|f| key.contains(f.as_str())) {
                eprintln!("worker: poisoned point `{key}`; aborting");
                std::process::abort();
            }
        }
        InflightGuard {
            key: Some(key.to_string()),
        }
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        // A panicking computation must leave its mark for the supervisor.
        if std::thread::panicking() {
            return;
        }
        if let (Some(key), Some(tracker)) = (&self.key, INFLIGHT.get()) {
            tracker.remove(key);
            // A cleared in-flight mark means one point just finished: refresh
            // this worker's on-disk metrics alongside the journal heartbeat.
            export_worker_metrics();
        }
    }
}

/// Configuration of one supervised sharded run.
#[derive(Debug, Clone)]
pub struct ShardRunConfig {
    /// The `experiments` subcommand every worker runs (e.g. `all`, `fig13`).
    pub command: String,
    /// Run paper-scale instances (`--full`).
    pub full: bool,
    /// The shared store directory (workers receive it via `--store-dir`).
    pub store_dir: PathBuf,
    /// Number of worker shards.
    pub shards: u32,
    /// Kill-and-restart a worker whose journal and in-flight marker have not
    /// changed for this long.
    pub stall_timeout: Duration,
    /// Worker deaths with the same point in flight before that point is
    /// quarantined.
    pub max_point_attempts: u32,
    /// Consecutive no-progress failures of one shard before the whole run is
    /// declared fatal. Must be at least `max_point_attempts`, or a poisoned
    /// point would trip the fatal limit before it can be quarantined.
    pub max_stalled_restarts: u32,
    /// Base of the exponential restart backoff (doubles per consecutive
    /// failure, capped at 2^6 bases).
    pub backoff_base: Duration,
}

impl ShardRunConfig {
    /// A config with the production defaults: 30 s stall timeout, 3 attempts
    /// per point, fatal after 5 consecutive no-progress failures, 100 ms
    /// backoff base.
    pub fn new(command: impl Into<String>, store_dir: impl Into<PathBuf>, shards: u32) -> Self {
        ShardRunConfig {
            command: command.into(),
            full: false,
            store_dir: store_dir.into(),
            shards: shards.max(1),
            stall_timeout: Duration::from_secs(30),
            max_point_attempts: 3,
            max_stalled_restarts: 5,
            backoff_base: Duration::from_millis(100),
        }
    }
}

/// What a supervised run did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardRunOutcome {
    /// Worker restarts across all shards (crash, nonzero exit, or stall).
    pub restarts: u32,
    /// Result keys quarantined during this run (or found already quarantined
    /// in the store), sorted.
    pub quarantined: Vec<String>,
}

/// One worker slot's supervision state.
struct Slot {
    index: u32,
    child: Option<Child>,
    restart_at: Option<Instant>,
    last_progress: Instant,
    signature: (usize, String),
    journal_len: usize,
    consecutive_failures: u32,
    attempts: BTreeMap<String, u32>,
    done: bool,
}

/// Runs `config.command` across `config.shards` supervised worker processes
/// and blocks until every shard completes (or the run is declared fatal).
/// The caller renders the merged report afterwards; this function only
/// executes.
///
/// # Errors
///
/// An [`io::Error`] when a worker cannot be spawned, or when a shard fails
/// [`ShardRunConfig::max_stalled_restarts`] consecutive times without making
/// progress. All other worker failures are handled by restart or quarantine.
pub fn run_sharded(config: &ShardRunConfig) -> io::Result<ShardRunOutcome> {
    let exe = std::env::current_exe()?;
    std::fs::create_dir_all(&config.store_dir)?;
    let io = DiskIo;
    let now = Instant::now();
    let mut slots: Vec<Slot> = (0..config.shards)
        .map(|index| Slot {
            index,
            child: None,
            restart_at: None,
            last_progress: now,
            signature: (0, String::new()),
            journal_len: 0,
            consecutive_failures: 0,
            attempts: BTreeMap::new(),
            done: false,
        })
        .collect();
    let mut restarts = 0u32;

    let result = loop {
        if slots.iter().all(|s| s.done) {
            break Ok(());
        }
        let mut fatal = None;
        for slot in slots.iter_mut().filter(|s| !s.done) {
            let step = supervise_slot(slot, config, &exe, &io, &mut restarts);
            if let Err(err) = step {
                fatal = Some(err);
                break;
            }
        }
        if let Some(err) = fatal {
            break Err(err);
        }
        std::thread::sleep(Duration::from_millis(25));
    };

    // Fatal or not, never leave orphan workers behind.
    for slot in &mut slots {
        if let Some(child) = &mut slot.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    result?;

    Ok(ShardRunOutcome {
        restarts,
        quarantined: quarantined_keys(&io, &config.store_dir)
            .into_iter()
            .collect(),
    })
}

/// One supervision step for one slot: spawn when due, reap exits, check the
/// heartbeat. Returns the fatal error that aborts the whole run, if any.
fn supervise_slot(
    slot: &mut Slot,
    config: &ShardRunConfig,
    exe: &Path,
    io: &DiskIo,
    restarts: &mut u32,
) -> io::Result<()> {
    let label = slot.index.to_string();
    match &mut slot.child {
        None => {
            if slot.restart_at.is_some_and(|t| Instant::now() < t) {
                return Ok(());
            }
            let mut command = Command::new(exe);
            command
                .arg(&config.command)
                .arg("--shard")
                .arg(format!("{}/{}", slot.index, config.shards))
                .arg("--store-dir")
                .arg(&config.store_dir)
                // One point in flight at a time, so a death post-mortem
                // attributes to exactly one point.
                .env("LSQCA_THREADS", "1")
                .env("LSQCA_SHARD", &label)
                .stdout(Stdio::null())
                .stderr(Stdio::null());
            if config.full {
                command.arg("--full");
            }
            let child = command.spawn()?;
            slot.child = Some(child);
            slot.restart_at = None;
            slot.last_progress = Instant::now();
            slot.signature = progress_signature(io, &config.store_dir, &label);
            slot.journal_len = slot.signature.0;
            Ok(())
        }
        Some(child) => match child.try_wait() {
            Ok(Some(status)) if status.success() => {
                slot.child = None;
                slot.done = true;
                Ok(())
            }
            Ok(Some(status)) => {
                slot.child = None;
                eprintln!(
                    "supervisor: shard {} exited with {status}; handling",
                    slot.index
                );
                handle_failure(slot, config, io, restarts)
            }
            Ok(None) => {
                let signature = progress_signature(io, &config.store_dir, &label);
                let progressed = signature != slot.signature;
                if progressed {
                    slot.signature = signature;
                    slot.last_progress = Instant::now();
                }
                // Supervisor-side per-shard liveness gauge: how long since
                // this worker's journal or in-flight marker last changed.
                lsqca_telemetry::gauge(&format!("shard.{label}.heartbeat_lag_ms"))
                    .set(slot.last_progress.elapsed().as_millis() as i64);
                if !progressed && slot.last_progress.elapsed() > config.stall_timeout {
                    eprintln!(
                        "supervisor: shard {} made no progress for {:?}; killing",
                        slot.index, config.stall_timeout
                    );
                    let _ = child.kill();
                    let _ = child.wait();
                    slot.child = None;
                    return handle_failure(slot, config, io, restarts);
                }
                Ok(())
            }
            Err(err) => Err(err),
        },
    }
}

/// Accounts one worker death: bump the attempt count of every in-flight
/// point, quarantine the ones past the attempt limit, and schedule the
/// restart with exponential backoff — or declare the run fatal after too many
/// consecutive failures with nothing to show for them.
fn handle_failure(
    slot: &mut Slot,
    config: &ShardRunConfig,
    io: &DiskIo,
    restarts: &mut u32,
) -> io::Result<()> {
    let label = slot.index.to_string();
    let inflight = InflightLog::new(Arc::new(DiskIo), &config.store_dir, &label).read();
    let mut progressed = false;
    for key in inflight {
        let attempts = slot.attempts.entry(key.clone()).or_insert(0);
        *attempts += 1;
        if *attempts >= config.max_point_attempts {
            QuarantineLog::new(Arc::new(DiskIo), &config.store_dir, &label).append(
                &QuarantineEntry {
                    attempts: *attempts,
                    key: key.clone(),
                },
            )?;
            eprintln!(
                "supervisor: quarantined point after {attempts} failed attempts: {key}",
                attempts = *attempts
            );
            lsqca_telemetry::gauge(&format!("shard.{label}.quarantined")).add(1);
            slot.attempts.remove(&key);
            // A quarantine decision is progress: the sweep shrank.
            progressed = true;
        }
    }
    let journal_len = progress_signature(io, &config.store_dir, &label).0;
    if journal_len > slot.journal_len {
        slot.journal_len = journal_len;
        progressed = true;
    }
    if progressed {
        slot.consecutive_failures = 0;
    } else {
        slot.consecutive_failures += 1;
    }
    if slot.consecutive_failures > config.max_stalled_restarts {
        return Err(io::Error::other(format!(
            "shard {} failed {} consecutive times without progress; giving up",
            slot.index, slot.consecutive_failures
        )));
    }
    *restarts += 1;
    let backoff = config.backoff_base * 2u32.pow(slot.consecutive_failures.min(6));
    // Per-shard supervision gauges for the final metrics artifact: restart
    // total, the backoff currently in force, and the consecutive-failure
    // streak feeding it.
    lsqca_telemetry::gauge(&format!("shard.{label}.restarts")).add(1);
    lsqca_telemetry::gauge(&format!("shard.{label}.backoff_ms")).set(backoff.as_millis() as i64);
    lsqca_telemetry::gauge(&format!("shard.{label}.consecutive_failures"))
        .set(i64::from(slot.consecutive_failures));
    slot.restart_at = Some(Instant::now() + backoff);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_stable() {
        let keys: Vec<String> = (0..200).map(|n| format!("key-{n}|cfg={n}")).collect();
        for shards in 1..=8u32 {
            let mut counts = vec![0u32; shards as usize];
            for key in &keys {
                let owner = owning_shard(key, shards);
                assert!(owner < shards);
                assert_eq!(owner, owning_shard(key, shards), "stable per key");
                counts[owner as usize] += 1;
            }
            assert_eq!(counts.iter().sum::<u32>(), keys.len() as u32);
            if shards > 1 {
                // FNV spreads these keys across shards (not all in one).
                assert!(counts.iter().filter(|&&c| c > 0).count() > 1);
            }
        }
        assert_eq!(owning_shard("anything", 1), 0);
        assert_eq!(owning_shard("anything", 0), 0, "degenerate count clamps");
    }

    #[test]
    fn plan_excludes_foreign_and_quarantined_keys() {
        let count = 4;
        let mut plan = ShardPlan {
            index: 0,
            count,
            quarantined: BTreeSet::new(),
        };
        let keys: Vec<String> = (0..64).map(|n| format!("key-{n}")).collect();
        let owned: Vec<&String> = keys
            .iter()
            .filter(|k| owning_shard(k, count) == 0)
            .collect();
        assert!(!owned.is_empty());
        for key in &keys {
            assert_eq!(plan.computes(key), owning_shard(key, count) == 0);
        }
        plan.quarantined.insert(owned[0].clone());
        assert!(!plan.computes(owned[0]));
    }

    #[test]
    fn guard_is_inert_without_a_worker_installation() {
        // Must not touch any file or panic when no tracker is installed
        // (single-process mode): the drop path exercises the None branch.
        let guard = InflightGuard::enter("some-key");
        drop(guard);
        assert!(should_compute("some-key"));
    }

    #[test]
    fn shard_run_config_defaults_allow_quarantine_before_fatal() {
        let config = ShardRunConfig::new("all", "/tmp/store", 0);
        assert_eq!(config.shards, 1, "zero shards clamps to one");
        assert!(
            config.max_stalled_restarts >= config.max_point_attempts,
            "a poisoned point must be quarantined before the fatal limit trips"
        );
    }
}
