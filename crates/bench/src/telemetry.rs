//! The harness side of the unified telemetry layer: registry syncing, the
//! operator summary block, metrics/trace artifact export, and cross-process
//! shard-metrics aggregation.
//!
//! The workload cache and result store keep per-instance atomics (the
//! fault-injection tests build several stores per process), so their totals
//! are *synced* into the registry at snapshot time rather than double-counted
//! at the bump sites. Everything else (`trace.lowered`, `sim.warmed`,
//! `sim.forked`, `sim.runs`, spans, beat histograms) reports straight into
//! `lsqca_telemetry`.

use crate::{result_store, workload_cache};
use lsqca_store::{atomic_write, DiskIo, StoreIo};
use lsqca_telemetry::MetricsSnapshot;
use std::path::Path;

/// Syncs the process-wide workload-cache and result-store instance counters
/// into the registry (`workload_cache.*`, `result_store.*`), and interns the
/// core lifecycle counters so every exported artifact carries them even at
/// zero — the warm-rerun CI assertions grep `"trace.lowered": 0` and friends
/// out of the aggregated metrics JSON, which only works if an untouched
/// counter still shows up.
pub fn sync_registry() {
    for name in ["trace.lowered", "sim.warmed", "sim.forked", "sim.runs"] {
        lsqca_telemetry::counter(name);
    }
    let cache = workload_cache().stats();
    lsqca_telemetry::counter("workload_cache.compiled").set(cache.compiled);
    lsqca_telemetry::counter("workload_cache.hits").set(cache.hits);
    lsqca_telemetry::counter("workload_cache.invalidated").set(cache.invalidated);
    let store = result_store().stats();
    lsqca_telemetry::counter("result_store.computed").set(store.computed);
    lsqca_telemetry::counter("result_store.hits").set(store.hits);
    lsqca_telemetry::counter("result_store.quarantined").set(store.quarantined);
}

/// Syncs the registry and freezes it — the `lsqca-metrics-v1` payload behind
/// `--metrics-out` and the per-shard `metrics-<shard>.json` files.
pub fn metrics_snapshot() -> MetricsSnapshot {
    sync_registry();
    lsqca_telemetry::snapshot()
}

/// The operator summary block, rendered from one registry snapshot. The four
/// line formats are stable and CI-greppable — they predate the registry and
/// the warm-cache assertions grep them verbatim:
///
/// ```text
/// workload cache: N compiled, M hits, K invalidated (<dir>)
/// result store: N computed, M hits, K quarantined (<dir>)
/// trace engine: N lowered
/// snapshot engine: N warmed, M forked
/// ```
pub fn telemetry_summary() -> String {
    let snapshot = metrics_snapshot();
    let count = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let cache_stats = format!(
        "{} compiled, {} hits, {} invalidated",
        count("workload_cache.compiled"),
        count("workload_cache.hits"),
        count("workload_cache.invalidated"),
    );
    let cache_line = match workload_cache().dir() {
        Some(dir) => format!("workload cache: {cache_stats} ({})", dir.display()),
        None => format!("workload cache: disabled; {cache_stats}"),
    };
    let store_stats = format!(
        "{} computed, {} hits, {} quarantined",
        count("result_store.computed"),
        count("result_store.hits"),
        count("result_store.quarantined"),
    );
    let store = result_store();
    let store_line = match (store.dir(), store.is_degraded()) {
        (Some(dir), false) => format!("result store: {store_stats} ({})", dir.display()),
        (Some(dir), true) => {
            format!(
                "result store: {store_stats} (degraded to memory; {})",
                dir.display()
            )
        }
        (None, _) => format!("result store: disabled; {store_stats}"),
    };
    format!(
        "{cache_line}\n{store_line}\ntrace engine: {} lowered\nsnapshot engine: {} warmed, {} forked",
        count("trace.lowered"),
        count("sim.warmed"),
        count("sim.forked"),
    )
}

/// The per-shard metrics file name for shard `label` (`metrics-3.json`).
pub fn shard_metrics_file(label: &str) -> String {
    format!("metrics-{label}.json")
}

/// Writes this process's metrics snapshot to `dir/metrics-<label>.json`
/// (atomically, so the aggregator never reads a torn file). Errors are
/// returned for the caller to log — a failed metrics export must never fail
/// the sweep itself.
pub fn write_shard_metrics(dir: &Path, label: &str) -> std::io::Result<()> {
    let payload = metrics_snapshot().to_json().pretty() + "\n";
    atomic_write(
        &DiskIo,
        &dir.join(shard_metrics_file(label)),
        payload.as_bytes(),
    )
}

/// Aggregates every `metrics-*.json` a worker left in `dir` into `total`:
/// counters and histograms sum, worker gauges are namespaced as
/// `shard.<label>.<gauge>`. A missing, unreadable, or corrupt file degrades
/// to partial aggregation — it is reported in the returned warnings, never
/// an error, because the sweep results themselves are already safe in the
/// store and a merge must not fail over lost observability.
pub fn aggregate_shard_metrics(total: &mut MetricsSnapshot, dir: &Path) -> Vec<String> {
    let mut warnings = Vec::new();
    let io = DiskIo;
    let entries = match io.list_dir(dir) {
        Ok(entries) => entries,
        Err(err) => {
            warnings.push(format!(
                "telemetry: cannot list {} for shard metrics: {err}",
                dir.display()
            ));
            return warnings;
        }
    };
    let mut files: Vec<_> = entries
        .into_iter()
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("metrics-") && name.ends_with(".json"))
        })
        .collect();
    files.sort();
    for path in files {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        let label = name
            .strip_prefix("metrics-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .unwrap_or("unknown")
            .to_string();
        let text = match io.read(&path) {
            Ok(text) => text,
            Err(err) => {
                warnings.push(format!("telemetry: skipping unreadable {name}: {err}"));
                continue;
            }
        };
        let parsed = lsqca_json::parse(&text)
            .map_err(|err| err.to_string())
            .and_then(|json| MetricsSnapshot::from_json(&json).map_err(|err| err.to_string()));
        match parsed {
            Ok(shard) => total.absorb(&shard, &format!("shard.{label}.")),
            Err(err) => {
                warnings.push(format!("telemetry: skipping corrupt {name}: {err}"));
            }
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_block_keeps_the_greppable_line_formats() {
        let summary = telemetry_summary();
        let lines: Vec<&str> = summary.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("workload cache: "));
        assert!(lines[0].contains(" compiled, ") && lines[0].contains(" invalidated"));
        assert!(lines[1].starts_with("result store: "));
        assert!(lines[1].contains(" computed, ") && lines[1].contains(" quarantined"));
        assert!(lines[2].starts_with("trace engine: ") && lines[2].ends_with(" lowered"));
        assert!(lines[3].starts_with("snapshot engine: ") && lines[3].contains(" warmed, "));
        assert!(lines[3].ends_with(" forked"));
    }

    #[test]
    fn aggregation_degrades_on_corrupt_files_and_sums_good_ones() {
        let dir = std::env::temp_dir().join(format!(
            "lsqca-telemetry-agg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut shard = MetricsSnapshot::default();
        shard.counters.insert("result_store.computed".into(), 3);
        shard.gauges.insert("inflight".into(), 1);
        std::fs::write(dir.join("metrics-0.json"), shard.to_json().pretty() + "\n").unwrap();
        std::fs::write(dir.join("metrics-1.json"), "{ not json").unwrap();
        std::fs::write(dir.join("metrics-2.json"), "{\"schema\": \"other\"}").unwrap();

        let mut total = MetricsSnapshot::default();
        total.counters.insert("result_store.computed".into(), 1);
        let warnings = aggregate_shard_metrics(&mut total, &dir);
        assert_eq!(total.counters["result_store.computed"], 4);
        assert_eq!(total.gauges["shard.0.inflight"], 1);
        assert_eq!(warnings.len(), 2, "one warning per bad file: {warnings:?}");
        assert!(warnings.iter().all(|w| w.contains("skipping corrupt")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
