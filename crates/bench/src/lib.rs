//! Shared harness code for regenerating every table and figure of the paper.
//!
//! The `experiments` binary and the Criterion benches both call into this
//! crate. Each `figXX` module produces the data series of the corresponding
//! figure and can render it as a text table whose rows mirror what the paper
//! plots:
//!
//! * [`table1`] — the ISA reference table (Table I).
//! * [`fig08`] — memory reference locality of SELECT and the multiplier.
//! * [`fig13`] — CPI of every benchmark under every floorplan and factory count.
//! * [`fig14`] — hybrid-floorplan trade-off curves (density vs overhead).
//! * [`fig15`] — SELECT scaling with hybrid layouts.
//! * [`headline`] — the headline claims quoted in the abstract/intro.
//!
//! Every generator takes a [`Scale`]: `Quick` uses reduced workload instances
//! (seconds), `Full` uses the paper-sized instances (minutes).

#![forbid(unsafe_code)]

use lsqca::experiment::Workload;
use lsqca::prelude::*;
use lsqca::workloads::{Benchmark, BenchmarkConfig, InstanceSize};
use lsqca_json::{Json, ToJson};
use lsqca_store::ResultStore;

pub mod hotpath;
pub mod par;
pub mod supervisor;
pub mod telemetry;

pub use telemetry::telemetry_summary;

/// How large the workload instances should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced instances with the same structure; suitable for CI and benches.
    Quick,
    /// The paper-sized instances (400-qubit multiplier, 11×11 SELECT, ...).
    Full,
}

impl Scale {
    /// Parses `"quick"` / `"full"`.
    pub fn from_flag(full: bool) -> Scale {
        if full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The lowercase name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// The workload instance size this scale simulates.
    pub fn instance_size(self) -> InstanceSize {
        match self {
            Scale::Quick => InstanceSize::Reduced,
            Scale::Full => InstanceSize::Paper,
        }
    }
}

/// Builds the benchmark circuit for the given scale (bypassing the workload
/// cache; sweep drivers use [`cached_workload`] instead).
pub fn instance(benchmark: Benchmark, scale: Scale) -> Circuit {
    match scale {
        Scale::Quick => benchmark.reduced_instance(),
        Scale::Full => benchmark.paper_instance(),
    }
}

/// The process-wide on-disk workload cache every sweep driver compiles or
/// loads through (`$LSQCA_CACHE_DIR` / `$LSQCA_NO_CACHE` aware; see
/// `lsqca_workloads::cache`). A second `experiments` invocation over the same
/// workloads performs zero compilation.
pub fn workload_cache() -> &'static WorkloadCache {
    static CACHE: std::sync::OnceLock<WorkloadCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(WorkloadCache::from_env)
}

/// Compiles or cache-loads the benchmark instance for `scale`.
pub fn cached_workload(benchmark: Benchmark, scale: Scale) -> Workload {
    let cfg = benchmark.config(scale.instance_size());
    cached_workload_with(&cfg.descriptor(), CompilerConfig::default(), || cfg.build())
}

/// Compiles or cache-loads an arbitrary workload generator. `descriptor` must
/// identify the generator configuration content (include every parameter);
/// `build` only runs on a cache miss.
pub fn cached_workload_with(
    descriptor: &str,
    config: CompilerConfig,
    build: impl FnOnce() -> Circuit,
) -> Workload {
    let (artifact, _) = workload_cache().load_or_compile(descriptor, config, build);
    Workload::from_artifact(artifact)
}

/// The process-wide crash-safe result store every sweep driver runs through
/// (`$LSQCA_STORE_DIR` / `$LSQCA_NO_STORE` aware; see `lsqca_store`). A second
/// `experiments` invocation over the same sweep performs zero simulation, and
/// a SIGKILLed invocation resumes from its journal.
pub fn result_store() -> &'static ResultStore {
    static STORE: std::sync::OnceLock<ResultStore> = std::sync::OnceLock::new();
    STORE.get_or_init(ResultStore::from_env)
}

/// Runs `workload` under `config` through the process-wide result store:
/// a verified stored record skips the simulation entirely, a computed result
/// is published durably before being returned.
///
/// Trace-recording configurations bypass the store — traces are not persisted
/// and a trace-hungry caller (fig. 8) must always simulate.
pub fn stored_run(workload: &Workload, config: &ExperimentConfig) -> ExperimentResult {
    stored_run_in(result_store(), workload, config)
}

/// [`stored_run`] against an explicit store — the fault-injection and
/// kill-resume tests drive this with a [`lsqca_store::FaultyIo`] backend.
pub fn stored_run_in(
    store: &ResultStore,
    workload: &Workload,
    config: &ExperimentConfig,
) -> ExperimentResult {
    if config.sim.record_trace {
        return workload.run(config);
    }
    let key = workload.result_key(config);
    // Under a shard plan, points owned by other shards (and quarantined
    // points) are never computed here: a stored record from any shard is
    // rendered as-is, an absent one as a placeholder row. Only the owning
    // shard's worker fills the gap, so shards never duplicate work.
    if !supervisor::should_compute(&key) {
        if let Some(payload) = store.probe(&key) {
            if let Ok(stats) = ExecutionStats::from_json(&payload) {
                return workload.result_from_stats(config, stats);
            }
        }
        return workload.result_from_stats(config, ExecutionStats::default());
    }
    let (payload, _event) = store.load_or_compute(&key, || {
        // The in-flight mark makes a mid-computation death attributable to
        // this point; it survives a panic/abort and clears on success.
        let _guard = supervisor::InflightGuard::enter(&key);
        workload.run(config).stats.to_json()
    });
    match ExecutionStats::from_json(&payload) {
        // Both the hit and the computed path reconstruct the result from the
        // stored payload, so a resumed sweep is byte-identical to a clean one
        // by construction.
        Ok(stats) => workload.result_from_stats(config, stats),
        // Unreachable past the record checksum (the payload schema is part of
        // the result key), but never trust a store over a recomputation.
        Err(_) => workload.run(config),
    }
}

/// The factory counts evaluated in the paper's figures.
pub const FACTORY_COUNTS: [u32; 3] = [1, 2, 4];

/// Formats a floating-point cell with two decimals.
fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Table I: the instruction set reference.
pub mod table1 {
    use super::*;
    use lsqca::isa::instruction::example_instructions;
    use lsqca::isa::LatencyTable;

    /// One row of Table I.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Instruction category.
        pub kind: String,
        /// Mnemonic and operand shape.
        pub syntax: String,
        /// Latency column.
        pub latency: String,
    }

    impl ToJson for Row {
        fn to_json(&self) -> Json {
            Json::obj([
                ("kind", self.kind.to_json()),
                ("syntax", self.syntax.to_json()),
                ("latency", self.latency.to_json()),
            ])
        }
    }

    /// Generates every row of Table I from the ISA definition itself.
    pub fn rows() -> Vec<Row> {
        let table = LatencyTable::paper();
        example_instructions()
            .into_iter()
            .map(|instr| Row {
                kind: instr.kind().to_string(),
                syntax: instr.to_string(),
                latency: table.latency(&instr).to_string(),
            })
            .collect()
    }

    /// Renders Table I as text.
    pub fn render() -> String {
        let rows: Vec<Vec<String>> = rows()
            .into_iter()
            .map(|r| vec![r.kind, r.syntax, r.latency])
            .collect();
        render_table(&["type", "syntax (example operands)", "latency"], &rows)
    }
}

/// Fig. 8: memory reference locality of SELECT and the multiplier.
pub mod fig08 {
    use super::*;
    use lsqca::analysis::AccessLocalityReport;
    use lsqca::experiment::ExperimentConfig;
    use lsqca::workloads::{MultiplierConfig, SelectConfig};

    /// The locality analysis of one benchmark.
    #[derive(Debug, Clone)]
    pub struct BenchmarkLocality {
        /// Benchmark name.
        pub name: String,
        /// Number of logical qubits.
        pub qubits: u32,
        /// Locality summary.
        pub report: AccessLocalityReport,
        /// Sampled points of the reference-period CDF `(period, fraction)`.
        pub cdf_points: Vec<(u64, f64)>,
        /// Average beats between magic-state demands.
        pub beats_per_magic_state: Option<f64>,
    }

    impl ToJson for BenchmarkLocality {
        fn to_json(&self) -> Json {
            Json::obj([
                ("name", self.name.to_json()),
                ("qubits", self.qubits.to_json()),
                (
                    "report",
                    Json::obj([
                        ("referenced_qubits", self.report.referenced_qubits.to_json()),
                        ("total_references", self.report.total_references.to_json()),
                        (
                            "short_period_fraction",
                            self.report.short_period_fraction.to_json(),
                        ),
                        (
                            "sequential_fraction",
                            self.report.sequential_fraction.to_json(),
                        ),
                        (
                            "reference_period_median",
                            self.report.reference_periods.median().to_json(),
                        ),
                        (
                            "reference_period_mean",
                            self.report.reference_periods.mean().to_json(),
                        ),
                    ]),
                ),
                ("cdf_points", self.cdf_points.to_json()),
                (
                    "beats_per_magic_state",
                    self.beats_per_magic_state.to_json(),
                ),
            ])
        }
    }

    fn analyze(name: &str, workload: Workload) -> BenchmarkLocality {
        // Motivation-study assumptions: unbounded parallelism (conventional
        // floorplan) and instant magic states, with trace recording on.
        let config = ExperimentConfig::baseline(1)
            .with_trace()
            .with_infinite_magic();
        // Trace-recording config: `stored_run` always simulates this one.
        let result = crate::stored_run(&workload, &config);
        let report =
            AccessLocalityReport::from_trace(&result.trace, Some(result.stats.magic_states));
        BenchmarkLocality {
            name: name.to_string(),
            qubits: workload.num_qubits(),
            cdf_points: report.reference_periods.log_spaced_points(2),
            beats_per_magic_state: report.beats_per_magic_state,
            report,
        }
    }

    /// Generates the Fig. 8 data for both benchmarks, compiling or
    /// cache-loading each instance.
    pub fn generate(scale: Scale) -> Vec<BenchmarkLocality> {
        let (select_cfg, mult_cfg) = match scale {
            Scale::Quick => (
                SelectConfig::for_width(4),
                MultiplierConfig {
                    operand_bits: 12,
                    partial_products: None,
                },
            ),
            Scale::Full => (SelectConfig::paper_motivation(), MultiplierConfig::paper()),
        };
        let select = BenchmarkConfig::Select(select_cfg);
        let multiplier = BenchmarkConfig::Multiplier(mult_cfg);
        vec![
            analyze(
                "SELECT",
                crate::cached_workload_with(
                    &select.descriptor(),
                    CompilerConfig::default(),
                    || select.build(),
                ),
            ),
            analyze(
                "multiplier",
                crate::cached_workload_with(
                    &multiplier.descriptor(),
                    CompilerConfig::default(),
                    || multiplier.build(),
                ),
            ),
        ]
    }

    /// Renders the Fig. 8 summary as text.
    pub fn render(scale: Scale) -> String {
        let data = generate(scale);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|d| {
                vec![
                    d.name.clone(),
                    d.qubits.to_string(),
                    d.report.total_references.to_string(),
                    fmt2(d.report.short_period_fraction),
                    fmt2(d.report.sequential_fraction),
                    d.beats_per_magic_state
                        .map(fmt2)
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        let mut out = render_table(
            &[
                "benchmark",
                "qubits",
                "references",
                "frac(period<=10)",
                "frac(sequential)",
                "beats/magic",
            ],
            &rows,
        );
        for d in &data {
            out.push_str(&format!("\nreference-period CDF for {}:\n", d.name));
            for (period, frac) in &d.cdf_points {
                out.push_str(&format!("  period<={period:>6}: {frac:.3}\n"));
            }
        }
        out
    }
}

/// Fig. 13: CPI of every benchmark under every floorplan and factory count.
pub mod fig13 {
    use super::*;
    use lsqca::experiment::ExperimentConfig;

    /// One bar of Fig. 13.
    #[derive(Debug, Clone)]
    pub struct Point {
        /// Benchmark name.
        pub benchmark: String,
        /// Floorplan label.
        pub floorplan: String,
        /// Number of magic-state factories.
        pub factories: u32,
        /// Code beats per instruction.
        pub cpi: f64,
        /// Execution time in beats.
        pub beats: u64,
        /// Memory density.
        pub density: f64,
    }

    impl ToJson for Point {
        fn to_json(&self) -> Json {
            Json::obj([
                ("benchmark", self.benchmark.to_json()),
                ("floorplan", self.floorplan.to_json()),
                ("factories", self.factories.to_json()),
                ("cpi", self.cpi.to_json()),
                ("beats", self.beats.to_json()),
                ("density", self.density.to_json()),
            ])
        }
    }

    /// Generates every bar of Fig. 13 for the given benchmarks (defaults to all
    /// seven when `benchmarks` is empty). The `(benchmark × factories ×
    /// floorplan)` grid is simulated in parallel (see [`crate::par`]); output
    /// order matches the serial nesting of the paper's figure.
    pub fn generate(scale: Scale, benchmarks: &[Benchmark], factories: &[u32]) -> Vec<Point> {
        let list: Vec<Benchmark> = if benchmarks.is_empty() {
            Benchmark::ALL.to_vec()
        } else {
            benchmarks.to_vec()
        };
        // Compile or cache-load each benchmark once, in parallel.
        let workloads =
            crate::par::par_map(&list, |&benchmark| crate::cached_workload(benchmark, scale));

        let mut jobs = Vec::new();
        for (i, &benchmark) in list.iter().enumerate() {
            for &factories in factories {
                for floorplan in ArchConfig::paper_floorplans() {
                    jobs.push((i, benchmark, factories, floorplan));
                }
            }
        }
        crate::par::par_map(&jobs, |&(i, benchmark, factories, floorplan)| {
            let config = ExperimentConfig::new(floorplan, factories);
            let result = crate::stored_run(&workloads[i], &config);
            Point {
                benchmark: benchmark.name().to_string(),
                floorplan: floorplan.label(),
                factories,
                cpi: result.cpi,
                beats: result.total_beats.as_u64(),
                density: result.memory_density,
            }
        })
    }

    /// Renders Fig. 13 as a text table.
    pub fn render(scale: Scale, benchmarks: &[Benchmark], factories: &[u32]) -> String {
        let rows: Vec<Vec<String>> = generate(scale, benchmarks, factories)
            .into_iter()
            .map(|p| {
                vec![
                    p.benchmark,
                    format!("{}", p.factories),
                    p.floorplan,
                    fmt2(p.cpi),
                    p.beats.to_string(),
                    fmt2(p.density),
                ]
            })
            .collect();
        render_table(
            &["benchmark", "MSF", "floorplan", "CPI", "beats", "density"],
            &rows,
        )
    }
}

/// Fig. 14: hybrid-floorplan trade-off between density and execution time.
pub mod fig14 {
    use super::*;
    use lsqca::experiment::ExperimentConfig;

    /// One point of a Fig. 14 curve.
    #[derive(Debug, Clone)]
    pub struct Point {
        /// Benchmark name.
        pub benchmark: String,
        /// Floorplan label.
        pub floorplan: String,
        /// Number of magic-state factories.
        pub factories: u32,
        /// Hybrid fraction `f`.
        pub fraction: f64,
        /// Memory density (x-axis).
        pub density: f64,
        /// Execution-time overhead vs the conventional baseline (y-axis).
        pub overhead: f64,
    }

    impl ToJson for Point {
        fn to_json(&self) -> Json {
            Json::obj([
                ("benchmark", self.benchmark.to_json()),
                ("floorplan", self.floorplan.to_json()),
                ("factories", self.factories.to_json()),
                ("fraction", self.fraction.to_json()),
                ("density", self.density.to_json()),
                ("overhead", self.overhead.to_json()),
            ])
        }
    }

    /// The LSQCA floorplans swept in Fig. 14.
    pub fn floorplans() -> Vec<FloorplanKind> {
        vec![
            FloorplanKind::PointSam { banks: 1 },
            FloorplanKind::PointSam { banks: 2 },
            FloorplanKind::LineSam { banks: 1 },
            FloorplanKind::LineSam { banks: 4 },
        ]
    }

    /// Generates the trade-off curves. `fraction_step` is 0.05 in the paper.
    /// Compilation, the per-`(benchmark, factories)` baselines, and the full
    /// `(floorplan × fraction)` grid all run in parallel; output order matches
    /// the serial nesting.
    pub fn generate(
        scale: Scale,
        benchmarks: &[Benchmark],
        factories: &[u32],
        fraction_step: f64,
    ) -> Vec<Point> {
        let list: Vec<Benchmark> = if benchmarks.is_empty() {
            Benchmark::ALL.to_vec()
        } else {
            benchmarks.to_vec()
        };
        let steps = (1.0 / fraction_step).round() as u32;
        let workloads =
            crate::par::par_map(&list, |&benchmark| crate::cached_workload(benchmark, scale));

        // Baselines per (benchmark, factories), indexed by position.
        let mut baseline_keys = Vec::new();
        for i in 0..list.len() {
            for &factories in factories {
                baseline_keys.push((i, factories));
            }
        }
        let baselines = crate::par::par_map(&baseline_keys, |&(i, factories)| {
            crate::stored_run(&workloads[i], &ExperimentConfig::baseline(factories))
        });
        let baseline_of = |i: usize, f_idx: usize| &baselines[i * factories.len() + f_idx];

        let mut jobs = Vec::new();
        for (i, &benchmark) in list.iter().enumerate() {
            for (f_idx, &factories) in factories.iter().enumerate() {
                for floorplan in floorplans() {
                    for step in 0..=steps {
                        jobs.push((i, benchmark, f_idx, factories, floorplan, step));
                    }
                }
            }
        }
        crate::par::par_map(
            &jobs,
            |&(i, benchmark, f_idx, factories, floorplan, step)| {
                let fraction = (step as f64 * fraction_step).min(1.0);
                let config =
                    ExperimentConfig::new(floorplan, factories).with_hybrid_fraction(fraction);
                let result = crate::stored_run(&workloads[i], &config);
                Point {
                    benchmark: benchmark.name().to_string(),
                    floorplan: floorplan.label(),
                    factories,
                    fraction,
                    density: result.memory_density,
                    overhead: result.overhead_vs(baseline_of(i, f_idx)),
                }
            },
        )
    }

    /// Geometric-mean overhead and density across benchmarks for each
    /// `(floorplan, factories, fraction)` configuration (the GEOMEAN panel).
    pub fn geomean(points: &[Point]) -> Vec<Point> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, u32, String), Vec<&Point>> = BTreeMap::new();
        for p in points {
            groups
                .entry((
                    p.floorplan.clone(),
                    p.factories,
                    format!("{:.3}", p.fraction),
                ))
                .or_default()
                .push(p);
        }
        groups
            .into_iter()
            .map(|((floorplan, factories, _), ps)| {
                let n = ps.len() as f64;
                let overhead = (ps.iter().map(|p| p.overhead.ln()).sum::<f64>() / n).exp();
                let density = (ps.iter().map(|p| p.density.ln()).sum::<f64>() / n).exp();
                Point {
                    benchmark: "GEOMEAN".to_string(),
                    floorplan,
                    factories,
                    fraction: ps[0].fraction,
                    density,
                    overhead,
                }
            })
            .collect()
    }

    /// Renders Fig. 14 (including the GEOMEAN rows) as a text table.
    pub fn render(
        scale: Scale,
        benchmarks: &[Benchmark],
        factories: &[u32],
        fraction_step: f64,
    ) -> String {
        let mut points = generate(scale, benchmarks, factories, fraction_step);
        let mean = geomean(&points);
        points.extend(mean);
        let rows: Vec<Vec<String>> = points
            .into_iter()
            .map(|p| {
                vec![
                    p.benchmark,
                    format!("{}", p.factories),
                    p.floorplan,
                    fmt2(p.fraction),
                    fmt2(p.density),
                    fmt2(p.overhead),
                ]
            })
            .collect();
        render_table(
            &["benchmark", "MSF", "floorplan", "f", "density", "overhead"],
            &rows,
        )
    }
}

/// Fig. 15: SELECT scaling with hybrid layouts.
pub mod fig15 {
    use super::*;
    use lsqca::experiment::{ExperimentConfig, HotSetStrategy};
    use lsqca::workloads::SelectConfig;

    /// One point of Fig. 15.
    #[derive(Debug, Clone)]
    pub struct Point {
        /// Width of the Heisenberg lattice.
        pub instance_width: u32,
        /// Number of data qubits of the SELECT instance.
        pub qubits: u32,
        /// Floorplan label (with "Hybrid" prefix when registers are pinned).
        pub floorplan: String,
        /// Number of magic-state factories.
        pub factories: u32,
        /// Memory density.
        pub density: f64,
        /// Execution-time overhead vs the conventional baseline.
        pub overhead: f64,
    }

    impl ToJson for Point {
        fn to_json(&self) -> Json {
            Json::obj([
                ("instance_width", self.instance_width.to_json()),
                ("qubits", self.qubits.to_json()),
                ("floorplan", self.floorplan.to_json()),
                ("factories", self.factories.to_json()),
                ("density", self.density.to_json()),
                ("overhead", self.overhead.to_json()),
            ])
        }
    }

    /// Lattice widths used by the paper (Fig. 15) and by the quick mode.
    pub fn widths(scale: Scale) -> Vec<u32> {
        match scale {
            Scale::Quick => vec![5, 9],
            Scale::Full => vec![21, 41, 61, 81, 101],
        }
    }

    /// Generates the Fig. 15 points. For hybrid variants the control and
    /// temporal registers are pinned into the conventional region, as in the
    /// paper. Instance compilation, the per-`(width, factories)` baselines,
    /// and the plain/hybrid simulations all run in parallel; output order
    /// matches the serial nesting.
    pub fn generate(scale: Scale, factories: &[u32], max_terms: Option<u64>) -> Vec<Point> {
        let widths = widths(scale);
        // Compile or cache-load each SELECT instance once, in parallel.
        let instances = crate::par::par_map(&widths, |&width| {
            let mut select_cfg = SelectConfig::for_width(width);
            select_cfg.max_terms = max_terms;
            let qubits = select_cfg.total_qubits();
            let hybrid_fraction =
                (select_cfg.control_bits() + select_cfg.temporal_bits()) as f64 / qubits as f64;
            let cfg = BenchmarkConfig::Select(select_cfg);
            let workload =
                crate::cached_workload_with(&cfg.descriptor(), CompilerConfig::default(), || {
                    cfg.build()
                });
            (qubits, hybrid_fraction, workload)
        });

        let mut baseline_keys = Vec::new();
        for i in 0..widths.len() {
            for &factories in factories {
                baseline_keys.push((i, factories));
            }
        }
        let baselines = crate::par::par_map(&baseline_keys, |&(i, factories)| {
            crate::stored_run(&instances[i].2, &ExperimentConfig::baseline(factories))
        });

        let mut jobs = Vec::new();
        for (i, &width) in widths.iter().enumerate() {
            for (f_idx, &factories) in factories.iter().enumerate() {
                for floorplan in super::fig14::floorplans() {
                    jobs.push((i, width, f_idx, factories, floorplan));
                }
            }
        }
        let factory_count = factories.len();
        crate::par::par_flat_map(&jobs, |&(i, width, f_idx, factories, floorplan)| {
            let (qubits, hybrid_fraction, ref workload) = instances[i];
            let baseline = &baselines[i * factory_count + f_idx];
            // Plain LSQCA.
            let plain = crate::stored_run(workload, &ExperimentConfig::new(floorplan, factories));
            // Hybrid: pin control + temporal registers.
            let hybrid = crate::stored_run(
                workload,
                &ExperimentConfig::new(floorplan, factories)
                    .with_hybrid_fraction(hybrid_fraction)
                    .with_hot_set(HotSetStrategy::ByRole(vec![
                        RegisterRole::Control,
                        RegisterRole::Temporal,
                    ])),
            );
            vec![
                Point {
                    instance_width: width,
                    qubits,
                    floorplan: floorplan.label(),
                    factories,
                    density: plain.memory_density,
                    overhead: plain.overhead_vs(baseline),
                },
                Point {
                    instance_width: width,
                    qubits,
                    floorplan: format!("Hybrid {}", floorplan.label()),
                    factories,
                    density: hybrid.memory_density,
                    overhead: hybrid.overhead_vs(baseline),
                },
            ]
        })
    }

    /// Renders Fig. 15 as a text table.
    pub fn render(scale: Scale, factories: &[u32], max_terms: Option<u64>) -> String {
        let rows: Vec<Vec<String>> = generate(scale, factories, max_terms)
            .into_iter()
            .map(|p| {
                vec![
                    p.instance_width.to_string(),
                    p.qubits.to_string(),
                    format!("{}", p.factories),
                    p.floorplan,
                    fmt2(p.density),
                    fmt2(p.overhead),
                ]
            })
            .collect();
        render_table(
            &["width", "qubits", "MSF", "floorplan", "density", "overhead"],
            &rows,
        )
    }
}

/// The `hybrid-migrate` sweep: runtime hot-set migration policies versus the
/// paper's static (compile-time) hot set, on hybrid floorplans.
///
/// For each benchmark × floorplan × policy the sweep reports total execution
/// time, the **seek cycles** (`memory_access_beats` — the beats spent moving
/// qubits through the SAM, the quantity migration exists to shrink), and the
/// migration cost the policy paid for it. Every run starts from the same
/// access-count hot set, so the `static` rows are the exact baseline the
/// dynamic policies are measured against (`seek_vs_static` / `vs_static`
/// ratios < 1 mean the policy wins).
pub mod hybrid_migrate {
    use super::*;
    use lsqca::experiment::ExperimentConfig;

    /// The hybrid fraction the sweep pins (a small conventional region, where
    /// adapting its contents matters most).
    pub const FRACTION: f64 = 0.10;

    /// The floorplans compared: one of each bank flavour.
    pub fn floorplans() -> Vec<FloorplanKind> {
        vec![
            FloorplanKind::PointSam { banks: 1 },
            FloorplanKind::DualPointSam { banks: 1 },
            FloorplanKind::LineSam { banks: 1 },
        ]
    }

    /// One policy's measurement on one benchmark × floorplan.
    #[derive(Debug, Clone)]
    pub struct Point {
        /// Benchmark name.
        pub benchmark: String,
        /// Floorplan label.
        pub floorplan: String,
        /// Migration policy name (`static` is the baseline).
        pub policy: String,
        /// Hybrid fraction `f`.
        pub fraction: f64,
        /// Number of magic-state factories.
        pub factories: u32,
        /// Execution time in beats.
        pub beats: u64,
        /// Seek cycles: beats spent on SAM movement (loads, stores, seeks).
        pub seek_beats: u64,
        /// Beats spent on hot-set migration (movement + policy overhead).
        pub migration_beats: u64,
        /// Number of migrations applied.
        pub migrations: u64,
        /// Memory density of the floorplan.
        pub density: f64,
        /// Seek cycles relative to the static baseline (< 1 is a win).
        pub seek_vs_static: f64,
        /// Execution time relative to the static baseline (< 1 is a win).
        pub vs_static: f64,
    }

    impl ToJson for Point {
        fn to_json(&self) -> Json {
            Json::obj([
                ("benchmark", self.benchmark.to_json()),
                ("floorplan", self.floorplan.to_json()),
                ("policy", self.policy.to_json()),
                ("fraction", self.fraction.to_json()),
                ("factories", self.factories.to_json()),
                ("beats", self.beats.to_json()),
                ("seek_beats", self.seek_beats.to_json()),
                ("migration_beats", self.migration_beats.to_json()),
                ("migrations", self.migrations.to_json()),
                ("density", self.density.to_json()),
                ("seek_vs_static", self.seek_vs_static.to_json()),
                ("vs_static", self.vs_static.to_json()),
            ])
        }
    }

    /// Generates the sweep (defaults to SELECT and the multiplier when
    /// `benchmarks` is empty). Workloads compile or cache-load through the
    /// shared on-disk cache like every other sweep; the `(benchmark ×
    /// factories × floorplan)` grid runs in parallel, with the three policy
    /// runs of one cell kept together so the `vs_static` ratios are computed
    /// against the cell's own baseline.
    pub fn generate(scale: Scale, benchmarks: &[Benchmark], factories: &[u32]) -> Vec<Point> {
        let list: Vec<Benchmark> = if benchmarks.is_empty() {
            vec![Benchmark::Select, Benchmark::Multiplier]
        } else {
            benchmarks.to_vec()
        };
        let workloads =
            crate::par::par_map(&list, |&benchmark| crate::cached_workload(benchmark, scale));

        let mut jobs = Vec::new();
        for (i, &benchmark) in list.iter().enumerate() {
            for &factories in factories {
                for floorplan in floorplans() {
                    jobs.push((i, benchmark, factories, floorplan));
                }
            }
        }
        crate::par::par_flat_map(&jobs, |&(i, benchmark, factories, floorplan)| {
            let base = ExperimentConfig::new(floorplan, factories).with_hybrid_fraction(FRACTION);
            let runs: Vec<_> = PolicyKind::ALL
                .iter()
                .map(|&policy| {
                    (
                        policy,
                        crate::stored_run(&workloads[i], &base.clone().with_migration(policy)),
                    )
                })
                .collect();
            let baseline = &runs
                .iter()
                .find(|(policy, _)| *policy == PolicyKind::Static)
                .expect("PolicyKind::ALL contains the static baseline")
                .1;
            let ratio = |a: u64, b: u64| {
                if b == 0 {
                    1.0
                } else {
                    a as f64 / b as f64
                }
            };
            runs.iter()
                .map(|(policy, result)| Point {
                    benchmark: benchmark.name().to_string(),
                    floorplan: floorplan.label(),
                    policy: policy.name().to_string(),
                    fraction: FRACTION,
                    factories,
                    beats: result.total_beats.as_u64(),
                    seek_beats: result.stats.memory_access_beats.as_u64(),
                    migration_beats: result.stats.migration_beats.as_u64(),
                    migrations: result.stats.migrations,
                    density: result.memory_density,
                    seek_vs_static: ratio(
                        result.stats.memory_access_beats.as_u64(),
                        baseline.stats.memory_access_beats.as_u64(),
                    ),
                    vs_static: ratio(result.total_beats.as_u64(), baseline.total_beats.as_u64()),
                })
                .collect()
        })
    }

    /// Renders the sweep as a text table.
    pub fn render(scale: Scale, benchmarks: &[Benchmark], factories: &[u32]) -> String {
        let rows: Vec<Vec<String>> = generate(scale, benchmarks, factories)
            .into_iter()
            .map(|p| {
                vec![
                    p.benchmark,
                    p.floorplan,
                    format!("{}", p.factories),
                    p.policy,
                    p.beats.to_string(),
                    p.seek_beats.to_string(),
                    p.migrations.to_string(),
                    p.migration_beats.to_string(),
                    fmt2(p.seek_vs_static),
                    fmt2(p.vs_static),
                ]
            })
            .collect();
        render_table(
            &[
                "benchmark",
                "floorplan",
                "MSF",
                "policy",
                "beats",
                "seek beats",
                "migrations",
                "mig beats",
                "seek/static",
                "time/static",
            ],
            &rows,
        )
    }
}

/// Ablation study of the two LSQCA-specific optimizations: the locality-aware
/// store (Sec. V-B) and in-memory operations (Sec. V-C).
pub mod ablation {
    use super::*;
    use lsqca::experiment::ExperimentConfig;

    /// One ablation configuration and its measured cost.
    #[derive(Debug, Clone)]
    pub struct Point {
        /// Benchmark name.
        pub benchmark: String,
        /// Floorplan label.
        pub floorplan: String,
        /// Whether the locality-aware store was enabled.
        pub locality_aware_store: bool,
        /// Whether in-memory instructions were emitted by the compiler.
        pub in_memory_ops: bool,
        /// Execution time in beats.
        pub beats: u64,
        /// Execution-time overhead vs the conventional baseline.
        pub overhead: f64,
    }

    impl ToJson for Point {
        fn to_json(&self) -> Json {
            Json::obj([
                ("benchmark", self.benchmark.to_json()),
                ("floorplan", self.floorplan.to_json()),
                ("locality_aware_store", self.locality_aware_store.to_json()),
                ("in_memory_ops", self.in_memory_ops.to_json()),
                ("beats", self.beats.to_json()),
                ("overhead", self.overhead.to_json()),
            ])
        }
    }

    /// Runs the 2×2 ablation (store policy × in-memory ops) for each benchmark
    /// on the given floorplan with one magic-state factory.
    pub fn generate(
        scale: Scale,
        benchmarks: &[Benchmark],
        floorplan: FloorplanKind,
    ) -> Vec<Point> {
        let list: Vec<Benchmark> = if benchmarks.is_empty() {
            vec![
                Benchmark::Multiplier,
                Benchmark::Select,
                Benchmark::SquareRoot,
            ]
        } else {
            benchmarks.to_vec()
        };
        let mut points = Vec::new();
        for benchmark in list {
            let cfg = benchmark.config(scale.instance_size());
            for in_memory_ops in [true, false] {
                let compiler = CompilerConfig {
                    use_in_memory_ops: in_memory_ops,
                    ..CompilerConfig::default()
                };
                // The compiler configuration is part of the cache key, so the
                // two ablation arms get distinct artifacts.
                let workload =
                    crate::cached_workload_with(&cfg.descriptor(), compiler, || cfg.build());
                let baseline = crate::stored_run(&workload, &ExperimentConfig::baseline(1));
                for locality in [true, false] {
                    let mut config = ExperimentConfig::new(floorplan, 1);
                    if !locality {
                        config = config.with_home_store();
                    }
                    let result = crate::stored_run(&workload, &config);
                    points.push(Point {
                        benchmark: benchmark.name().to_string(),
                        floorplan: floorplan.label(),
                        locality_aware_store: locality,
                        in_memory_ops,
                        beats: result.total_beats.as_u64(),
                        overhead: result.overhead_vs(&baseline),
                    });
                }
            }
        }
        points
    }

    /// Renders the ablation as a text table.
    pub fn render(scale: Scale, benchmarks: &[Benchmark], floorplan: FloorplanKind) -> String {
        let rows: Vec<Vec<String>> = generate(scale, benchmarks, floorplan)
            .into_iter()
            .map(|p| {
                vec![
                    p.benchmark,
                    p.floorplan,
                    if p.in_memory_ops { "yes" } else { "no" }.to_string(),
                    if p.locality_aware_store { "yes" } else { "no" }.to_string(),
                    p.beats.to_string(),
                    fmt2(p.overhead),
                ]
            })
            .collect();
        render_table(
            &[
                "benchmark",
                "floorplan",
                "in-memory ops",
                "locality store",
                "beats",
                "overhead",
            ],
            &rows,
        )
    }
}

/// The headline claims of the abstract and Sec. VI.
pub mod headline {
    use super::*;
    use lsqca::experiment::{ExperimentConfig, HotSetStrategy};
    use lsqca::workloads::{MultiplierConfig, SelectConfig};

    /// One headline claim: what the paper reports vs what this reproduction
    /// measures.
    #[derive(Debug, Clone)]
    pub struct Claim {
        /// Description of the claim.
        pub description: String,
        /// The paper's density (fraction).
        pub paper_density: f64,
        /// The paper's execution-time overhead (ratio to baseline).
        pub paper_overhead: f64,
        /// Measured density.
        pub measured_density: f64,
        /// Measured overhead.
        pub measured_overhead: f64,
    }

    impl ToJson for Claim {
        fn to_json(&self) -> Json {
            Json::obj([
                ("description", self.description.to_json()),
                ("paper_density", self.paper_density.to_json()),
                ("paper_overhead", self.paper_overhead.to_json()),
                ("measured_density", self.measured_density.to_json()),
                ("measured_overhead", self.measured_overhead.to_json()),
            ])
        }
    }

    /// Evaluates the headline claims. `Quick` uses reduced instances, so only
    /// the qualitative shape (density ≫ 50%, overhead small) is meaningful
    /// there; `Full` matches the paper's instance sizes.
    pub fn generate(scale: Scale) -> Vec<Claim> {
        let mut claims = Vec::new();

        // Claim 1: multiplier, line SAM, 1 bank, 1 MSF — ≈87% density, ≈6% overhead.
        let mult_cfg = match scale {
            Scale::Quick => MultiplierConfig {
                operand_bits: 20,
                partial_products: None,
            },
            Scale::Full => MultiplierConfig::paper(),
        };
        let cfg = BenchmarkConfig::Multiplier(mult_cfg);
        let workload =
            crate::cached_workload_with(&cfg.descriptor(), CompilerConfig::default(), || {
                cfg.build()
            });
        let config = ExperimentConfig::new(FloorplanKind::LineSam { banks: 1 }, 1);
        let lsqca = crate::stored_run(&workload, &config);
        let baseline = crate::stored_run(
            &workload,
            &ExperimentConfig {
                floorplan: FloorplanKind::Conventional,
                ..config.clone()
            },
        );
        claims.push(Claim {
            description: "multiplier, Line SAM (1 bank), 1 MSF".to_string(),
            paper_density: 0.87,
            paper_overhead: 1.06,
            measured_density: lsqca.memory_density,
            measured_overhead: lsqca.overhead_vs(&baseline),
        });

        // Claim 2: SELECT width 21, hybrid point SAM, 1 MSF — ≈92% density, ≈7% overhead.
        let (width, max_terms) = match scale {
            Scale::Quick => (6u32, Some(60u64)),
            Scale::Full => (21u32, None),
        };
        let mut select_cfg = SelectConfig::for_width(width);
        select_cfg.max_terms = max_terms;
        let fraction = (select_cfg.control_bits() + select_cfg.temporal_bits()) as f64
            / select_cfg.total_qubits() as f64;
        let cfg = BenchmarkConfig::Select(select_cfg);
        let workload =
            crate::cached_workload_with(&cfg.descriptor(), CompilerConfig::default(), || {
                cfg.build()
            });
        let config = ExperimentConfig::new(FloorplanKind::PointSam { banks: 1 }, 1)
            .with_hybrid_fraction(fraction)
            .with_hot_set(HotSetStrategy::ByRole(vec![
                RegisterRole::Control,
                RegisterRole::Temporal,
            ]));
        let lsqca = crate::stored_run(&workload, &config);
        let baseline = crate::stored_run(
            &workload,
            &ExperimentConfig {
                floorplan: FloorplanKind::Conventional,
                ..config.clone()
            },
        );
        claims.push(Claim {
            description: format!("SELECT width {width}, Hybrid Point SAM, 1 MSF"),
            paper_density: 0.92,
            paper_overhead: 1.07,
            measured_density: lsqca.memory_density,
            measured_overhead: lsqca.overhead_vs(&baseline),
        });

        claims
    }

    /// Renders the claims as a text table.
    pub fn render(scale: Scale) -> String {
        let rows: Vec<Vec<String>> = generate(scale)
            .into_iter()
            .map(|c| {
                vec![
                    c.description,
                    fmt2(c.paper_density),
                    fmt2(c.measured_density),
                    fmt2(c.paper_overhead),
                    fmt2(c.measured_overhead),
                ]
            })
            .collect();
        render_table(
            &[
                "claim",
                "paper density",
                "measured density",
                "paper overhead",
                "measured overhead",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_every_instruction() {
        let rows = table1::rows();
        assert_eq!(rows.len(), 21);
        let text = table1::render();
        assert!(text.contains("LD"));
        assert!(text.contains("variable"));
    }

    #[test]
    fn fig08_quick_generates_both_benchmarks() {
        let data = fig08::generate(Scale::Quick);
        assert_eq!(data.len(), 2);
        for d in &data {
            assert!(d.report.total_references > 0);
            assert!(!d.cdf_points.is_empty());
        }
        assert!(fig08::render(Scale::Quick).contains("SELECT"));
    }

    #[test]
    fn fig13_quick_covers_every_floorplan() {
        let points = fig13::generate(Scale::Quick, &[Benchmark::Ghz, Benchmark::SquareRoot], &[1]);
        assert_eq!(points.len(), 2 * 6);
        // The conventional baseline always has 50% density.
        for p in points.iter().filter(|p| p.floorplan == "Conventional") {
            assert!((p.density - 0.5).abs() < 1e-9);
        }
        // Single-bank LSQCA floorplans beat the 50% ceiling even on the small
        // quick-scale instances; multi-bank variants pay extra CR overhead that
        // only amortizes at the paper's register-file sizes.
        for p in points.iter().filter(|p| p.floorplan.ends_with("#SAM=1")) {
            assert!(p.density > 0.5, "{} density {}", p.floorplan, p.density);
        }
        for p in points.iter().filter(|p| p.floorplan != "Conventional") {
            assert!(p.density > 0.3, "{} density {}", p.floorplan, p.density);
        }
    }

    #[test]
    fn fig14_quick_trade_off_is_monotone_at_the_endpoints() {
        let points = fig14::generate(Scale::Quick, &[Benchmark::SquareRoot], &[1], 0.5);
        // f = 1.0 must match the baseline: density 0.5 and overhead ~1.
        for p in points.iter().filter(|p| (p.fraction - 1.0).abs() < 1e-9) {
            assert!(
                (p.density - 0.5).abs() < 0.02,
                "density {} at f=1",
                p.density
            );
            assert!(
                (p.overhead - 1.0).abs() < 0.05,
                "overhead {} at f=1",
                p.overhead
            );
        }
        // f = 0 has the highest density of the curve for single-bank SAMs (the
        // multi-bank variants only amortize their CR overhead at paper-sized
        // register files, so the quick-scale instances are excluded here).
        for floorplan in fig14::floorplans() {
            if !floorplan.label().ends_with("#SAM=1") {
                continue;
            }
            let curve: Vec<_> = points
                .iter()
                .filter(|p| p.floorplan == floorplan.label())
                .collect();
            let at_zero = curve.iter().find(|p| p.fraction == 0.0).unwrap();
            for p in &curve {
                assert!(at_zero.density >= p.density - 1e-9);
            }
        }
        let mean = fig14::geomean(&points);
        assert!(!mean.is_empty());
    }

    #[test]
    fn fig15_quick_produces_plain_and_hybrid_points() {
        let points = fig15::generate(Scale::Quick, &[1], Some(30));
        assert!(points.iter().any(|p| p.floorplan.starts_with("Hybrid")));
        assert!(points.iter().all(|p| p.density > 0.0 && p.overhead > 0.0));
        let text = fig15::render(Scale::Quick, &[1], Some(30));
        assert!(text.contains("Hybrid"));
    }

    #[test]
    fn hybrid_migrate_freq_decay_beats_the_static_hot_set_on_select() {
        // The subsystem's acceptance criterion: on the SELECT-Heisenberg
        // workload, FreqDecay migration reports fewer total seek cycles than
        // the static hot-set baseline, on every floorplan of the sweep.
        let points = hybrid_migrate::generate(Scale::Quick, &[Benchmark::Select], &[1]);
        assert_eq!(points.len(), 3 * 3);
        for floorplan in hybrid_migrate::floorplans() {
            let of = |policy: &str| {
                points
                    .iter()
                    .find(|p| p.floorplan == floorplan.label() && p.policy == policy)
                    .unwrap()
            };
            let pinned = of("static");
            let freq = of("freq-decay");
            assert_eq!(pinned.migrations, 0);
            assert!(freq.migrations > 0);
            assert!(
                freq.seek_beats < pinned.seek_beats,
                "{}: freq-decay seeks {} must beat static {}",
                floorplan.label(),
                freq.seek_beats,
                pinned.seek_beats
            );
            assert!(freq.seek_vs_static < 1.0);
            assert!((pinned.seek_vs_static - 1.0).abs() < 1e-12);
            // LRU zeroes seeks (it promotes before every cold access) but
            // pays for it in migrations — the comparison the sweep exists
            // to expose.
            let lru = of("lru");
            assert!(lru.migrations > freq.migrations);
            assert!(lru.seek_beats <= freq.seek_beats);
            assert!(lru.migration_beats > freq.migration_beats);
        }
        let text = hybrid_migrate::render(Scale::Quick, &[Benchmark::Select], &[1]);
        assert!(text.contains("freq-decay"));
        assert!(text.contains("seek/static"));
    }

    #[test]
    fn ablation_quick_shows_both_optimizations_helping() {
        let floorplan = FloorplanKind::PointSam { banks: 1 };
        let points = ablation::generate(Scale::Quick, &[Benchmark::Multiplier], floorplan);
        assert_eq!(points.len(), 4);
        let beats = |in_mem: bool, locality: bool| {
            points
                .iter()
                .find(|p| p.in_memory_ops == in_mem && p.locality_aware_store == locality)
                .unwrap()
                .beats
        };
        // The fully optimized configuration is the fastest of the four.
        let best = beats(true, true);
        assert!(best <= beats(false, true));
        assert!(best <= beats(true, false));
        assert!(best <= beats(false, false));
        assert!(
            ablation::render(Scale::Quick, &[Benchmark::SquareRoot], floorplan)
                .contains("locality store")
        );
    }

    #[test]
    fn headline_quick_shows_the_right_shape() {
        let claims = headline::generate(Scale::Quick);
        assert_eq!(claims.len(), 2);
        for c in &claims {
            // Density far above the 50% baseline and overhead not catastrophic.
            assert!(
                c.measured_density > 0.6,
                "{}: {}",
                c.description,
                c.measured_density
            );
            assert!(c.measured_overhead >= 1.0);
        }
    }
}
