//! Static and trace-based analysis of memory reference patterns (Sec. III-B).
//!
//! The paper motivates LSQCA by analyzing how benchmark programs touch their
//! logical qubits: reference periods show strong temporal locality, reference
//! timestamps show sequential (spatial) locality, a few qubits are much hotter
//! than the rest, and magic states are demanded faster than a single factory can
//! produce them. This crate computes those quantities from either a compiled
//! [`Program`](lsqca_isa::Program) (static analysis) or a simulated
//! [`MemoryTrace`](lsqca_sim::MemoryTrace), and selects the hot set used by the
//! hybrid floorplan of Sec. VI-C.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotset;
pub mod reference;

pub use hotset::{hot_set_by_access_count, hot_set_by_role, hot_set_by_role_map, hot_set_size};
pub use reference::{AccessLocalityReport, CumulativeDistribution};
