//! Reference-period distributions and locality metrics (Fig. 8).

use lsqca_sim::MemoryTrace;
use std::fmt;

/// An empirical cumulative distribution over non-negative integer samples
/// (reference periods in code beats).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CumulativeDistribution {
    samples: Vec<u64>,
}

impl CumulativeDistribution {
    /// Builds a distribution from raw samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        CumulativeDistribution { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Fraction of samples ≤ `value` (0.0 for an empty distribution).
    pub fn cdf(&self, value: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let count = self.samples.partition_point(|&s| s <= value);
        count as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the samples, if any.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        Some(self.samples[idx])
    }

    /// The median sample, if any.
    pub fn median(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean of the samples, if any.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// Samples the CDF at logarithmically spaced points (the x-axes of
    /// Fig. 8b/8d are log scale); returns `(period, cumulative fraction)` pairs.
    pub fn log_spaced_points(&self, points_per_decade: u32) -> Vec<(u64, f64)> {
        let Some(&max) = self.samples.last() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut value = 1.0f64;
        let factor = 10f64.powf(1.0 / points_per_decade as f64);
        loop {
            let v = value.round() as u64;
            if out.last().map(|&(p, _)| p) != Some(v) {
                out.push((v, self.cdf(v)));
            }
            if v >= max {
                break;
            }
            value *= factor;
        }
        out
    }
}

impl fmt::Display for CumulativeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.median(), self.mean()) {
            (Some(median), Some(mean)) => {
                write!(f, "{} samples, median {median}, mean {mean:.1}", self.len())
            }
            _ => write!(f, "empty distribution"),
        }
    }
}

/// Locality summary of one benchmark's memory reference trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessLocalityReport {
    /// Number of distinct qubits referenced.
    pub referenced_qubits: usize,
    /// Total number of references.
    pub total_references: u64,
    /// Distribution of per-qubit reference periods.
    pub reference_periods: CumulativeDistribution,
    /// Fraction of references whose period is at most 10 beats (a measure of
    /// temporal locality; Fig. 8b shows most periods are short).
    pub short_period_fraction: f64,
    /// Fraction of consecutive references (program order) whose qubit indices
    /// differ by at most one — the sequential-access signature of Fig. 8a/8c.
    pub sequential_fraction: f64,
    /// Average beats between magic-state demands, if the trace horizon and a
    /// magic-state count were provided.
    pub beats_per_magic_state: Option<f64>,
}

impl AccessLocalityReport {
    /// Builds the report from a memory trace, optionally with the number of
    /// magic states the program consumed (to compute the demand rate).
    pub fn from_trace(trace: &MemoryTrace, magic_states: Option<u64>) -> Self {
        let per_qubit = trace.per_qubit();
        let periods = trace.reference_periods();
        let total = trace.len() as u64;
        let short = periods.iter().filter(|&&p| p <= 10).count();
        let short_period_fraction = if periods.is_empty() {
            0.0
        } else {
            short as f64 / periods.len() as f64
        };

        let events = trace.events();
        let sequential = events
            .windows(2)
            .filter(|w| w[0].qubit.index().abs_diff(w[1].qubit.index()) <= 1)
            .count();
        let sequential_fraction = if events.len() < 2 {
            0.0
        } else {
            sequential as f64 / (events.len() - 1) as f64
        };

        let beats_per_magic_state = match (magic_states, trace.horizon()) {
            (Some(m), Some(h)) if m > 0 => Some(h as f64 / m as f64),
            _ => None,
        };

        AccessLocalityReport {
            referenced_qubits: per_qubit.len(),
            total_references: total,
            reference_periods: CumulativeDistribution::from_samples(periods),
            short_period_fraction,
            sequential_fraction,
            beats_per_magic_state,
        }
    }
}

impl fmt::Display for AccessLocalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} references, {:.0}% short periods, {:.0}% sequential",
            self.referenced_qubits,
            self.total_references,
            100.0 * self.short_period_fraction,
            100.0 * self.sequential_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsqca_isa::MemAddr;

    #[test]
    fn cdf_basics() {
        let d = CumulativeDistribution::from_samples(vec![1, 2, 2, 5, 100]);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert!((d.cdf(0) - 0.0).abs() < 1e-12);
        assert!((d.cdf(2) - 0.6).abs() < 1e-12);
        assert!((d.cdf(100) - 1.0).abs() < 1e-12);
        assert_eq!(d.median(), Some(2));
        assert_eq!(d.quantile(1.0), Some(100));
        assert!((d.mean().unwrap() - 22.0).abs() < 1e-12);
        assert!(!d.to_string().is_empty());
    }

    #[test]
    fn empty_distribution_is_harmless() {
        let d = CumulativeDistribution::from_samples(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.cdf(10), 0.0);
        assert_eq!(d.median(), None);
        assert_eq!(d.mean(), None);
        assert!(d.log_spaced_points(4).is_empty());
        assert_eq!(d.to_string(), "empty distribution");
    }

    #[test]
    fn log_spaced_points_are_monotone() {
        let d = CumulativeDistribution::from_samples((1..=1000).collect());
        let pts = d.log_spaced_points(4);
        assert!(pts.len() > 8);
        for pair in pts.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn locality_report_detects_sequential_access() {
        let mut trace = MemoryTrace::new();
        // A sequential sweep over qubits 0..20, touched twice.
        let mut beat = 0;
        for round in 0..2 {
            for q in 0..20u32 {
                trace.record(MemAddr(q), beat + round);
                beat += 3;
            }
        }
        let report = AccessLocalityReport::from_trace(&trace, Some(10));
        assert_eq!(report.referenced_qubits, 20);
        assert_eq!(report.total_references, 40);
        assert!(report.sequential_fraction > 0.9);
        assert!(report.beats_per_magic_state.unwrap() > 1.0);
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn locality_report_detects_temporal_locality() {
        let mut trace = MemoryTrace::new();
        // Qubit 0 is touched every other beat (hot), qubit 1 twice far apart.
        for i in 0..50u64 {
            trace.record(MemAddr(0), 2 * i);
        }
        trace.record(MemAddr(1), 0);
        trace.record(MemAddr(1), 5000);
        let report = AccessLocalityReport::from_trace(&trace, None);
        assert!(report.short_period_fraction > 0.9);
        assert_eq!(report.beats_per_magic_state, None);
        // The long period shows up in the tail of the distribution.
        assert_eq!(report.reference_periods.quantile(1.0), Some(5000));
    }
}
