//! Hot-set selection for hybrid floorplans (Sec. VI-C).
//!
//! The hybrid floorplan puts the `n·f` most frequently accessed data qubits into
//! a conventional unit-latency region and the rest into SAM. The ranking can be
//! computed statically from the compiled program (the evaluation in the paper
//! does exactly this: "we put the most frequently accessed nf data cells into
//! the conventional floorplan"), or structurally from the circuit's register
//! roles (Fig. 15 pins the control and temporal registers of SELECT).

use lsqca_circuit::{Circuit, RegisterMap, RegisterRole};
use lsqca_isa::Program;
use lsqca_lattice::QubitTag;

/// Number of hot qubits implied by a hybrid fraction `f` over `num_qubits`.
pub fn hot_set_size(num_qubits: u32, fraction: f64) -> usize {
    let f = fraction.clamp(0.0, 1.0);
    ((num_qubits as f64) * f).round() as usize
}

/// Selects the `count` most frequently referenced memory qubits of `program`,
/// breaking ties by lower qubit index.
pub fn hot_set_by_access_count(program: &Program, count: usize) -> Vec<QubitTag> {
    let stats = program.stats();
    let mut ranked: Vec<(u64, u32)> = stats
        .memory_reference_counts
        .iter()
        .map(|(addr, &refs)| (refs, addr.index()))
        .collect();
    // Most referenced first; ties by ascending index for determinism.
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked
        .into_iter()
        .take(count)
        .map(|(_, q)| QubitTag(q))
        .collect()
}

/// Selects every qubit belonging to a register with one of the given roles
/// (e.g. pin SELECT's control and temporal registers, as in Fig. 15).
pub fn hot_set_by_role(circuit: &Circuit, roles: &[RegisterRole]) -> Vec<QubitTag> {
    hot_set_by_role_map(circuit.registers(), roles)
}

/// Role-based selection from a bare register map — what compiled-workload
/// artifacts carry when the source circuit is no longer around.
pub fn hot_set_by_role_map(registers: &RegisterMap, roles: &[RegisterRole]) -> Vec<QubitTag> {
    roles
        .iter()
        .flat_map(|&role| registers.qubits_with_role(role))
        .map(QubitTag)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsqca_circuit::register::RegisterRole;
    use lsqca_isa::{Instruction, MemAddr};

    #[test]
    fn hot_set_size_rounds_the_fraction() {
        assert_eq!(hot_set_size(100, 0.0), 0);
        assert_eq!(hot_set_size(100, 0.05), 5);
        assert_eq!(hot_set_size(143, 0.95), 136);
        assert_eq!(hot_set_size(100, 1.0), 100);
        assert_eq!(hot_set_size(100, 2.0), 100);
    }

    #[test]
    fn access_count_ranking_picks_the_hottest_qubits() {
        let mut program = Program::new("ranked");
        // Qubit 5 is touched three times, qubit 2 twice, qubit 9 once.
        for _ in 0..3 {
            program.push(Instruction::HdM { mem: MemAddr(5) });
        }
        for _ in 0..2 {
            program.push(Instruction::PhM { mem: MemAddr(2) });
        }
        program.push(Instruction::HdM { mem: MemAddr(9) });
        assert_eq!(
            hot_set_by_access_count(&program, 2),
            vec![QubitTag(5), QubitTag(2)]
        );
        assert_eq!(hot_set_by_access_count(&program, 0), vec![]);
        // Asking for more than exist returns everything referenced.
        assert_eq!(hot_set_by_access_count(&program, 10).len(), 3);
    }

    #[test]
    fn ties_break_by_qubit_index() {
        let mut program = Program::new("tie");
        program.push(Instruction::HdM { mem: MemAddr(7) });
        program.push(Instruction::HdM { mem: MemAddr(3) });
        assert_eq!(hot_set_by_access_count(&program, 1), vec![QubitTag(3)]);
    }

    #[test]
    fn role_based_selection_pins_registers() {
        let mut circuit = Circuit::with_registers("select-like");
        circuit.add_register("control", RegisterRole::Control, 3);
        circuit.add_register("temporal", RegisterRole::Temporal, 2);
        circuit.add_register("system", RegisterRole::System, 10);
        let hot = hot_set_by_role(&circuit, &[RegisterRole::Control, RegisterRole::Temporal]);
        assert_eq!(hot.len(), 5);
        assert!(hot.contains(&QubitTag(0)));
        assert!(hot.contains(&QubitTag(4)));
        assert!(!hot.contains(&QubitTag(5)));
    }
}
