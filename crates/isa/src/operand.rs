//! Operand spaces of the LSQCA instruction set.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An abstract memory qubit address (`M` operand).
///
/// Addresses name logical qubits stored in SAM; the controller maintains the map
/// from address to the physical cell currently holding the qubit, so the same
/// compiled program runs on any SAM geometry (the paper's portability argument).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MemAddr(pub u32);

impl MemAddr {
    /// The raw address index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for MemAddr {
    fn from(value: u32) -> Self {
        MemAddr(value)
    }
}

/// A computational-register qubit identifier (`C` operand).
///
/// With the minimal CR of the paper there are two register slots; a hybrid
/// floorplan extends the identifier space to cover the attached conventional
/// region as well.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RegId(pub u32);

impl RegId {
    /// The raw register index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for RegId {
    fn from(value: u32) -> Self {
        RegId(value)
    }
}

/// A classical value identifier (`V` operand) holding a measurement outcome.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ClassicalId(pub u32);

impl ClassicalId {
    /// The raw classical register index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassicalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for ClassicalId {
    fn from(value: u32) -> Self {
        ClassicalId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_distinguish_operand_spaces() {
        assert_eq!(MemAddr(3).to_string(), "m3");
        assert_eq!(RegId(1).to_string(), "c1");
        assert_eq!(ClassicalId(7).to_string(), "v7");
    }

    #[test]
    fn conversions_and_indexing() {
        assert_eq!(MemAddr::from(4u32).index(), 4);
        assert_eq!(RegId::from(2u32).index(), 2);
        assert_eq!(ClassicalId::from(9u32).index(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(MemAddr(1) < MemAddr(2));
        assert!(RegId(0) < RegId(5));
        assert!(ClassicalId(3) > ClassicalId(1));
    }
}
