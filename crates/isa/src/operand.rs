//! Operand spaces of the LSQCA instruction set.

use std::fmt;

/// An abstract memory qubit address (`M` operand).
///
/// Addresses name logical qubits stored in SAM; the controller maintains the map
/// from address to the physical cell currently holding the qubit, so the same
/// compiled program runs on any SAM geometry (the paper's portability argument).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemAddr(pub u32);

impl MemAddr {
    /// The raw address index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for MemAddr {
    fn from(value: u32) -> Self {
        MemAddr(value)
    }
}

/// A computational-register qubit identifier (`C` operand).
///
/// With the minimal CR of the paper there are two register slots; a hybrid
/// floorplan extends the identifier space to cover the attached conventional
/// region as well.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u32);

impl RegId {
    /// The raw register index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for RegId {
    fn from(value: u32) -> Self {
        RegId(value)
    }
}

/// Maximum number of operands of one kind a single instruction can reference
/// (two: the joint measurements and the optimized `CX`).
pub const MAX_OPERANDS: usize = 2;

/// A fixed-capacity, inline operand list.
///
/// [`Instruction::memory_operands`](crate::Instruction::memory_operands) and
/// friends are called several times per instruction on the simulator's hot
/// path; returning a `Vec` there costs one heap allocation per call.
/// `Operands` stores up to [`MAX_OPERANDS`] values inline (array plus length),
/// is `Copy`, and iterates by value, so operand extraction performs zero heap
/// allocations.
///
/// ```
/// use lsqca_isa::{Instruction, MemAddr, RegId};
///
/// let ld = Instruction::Ld { mem: MemAddr(3), reg: RegId(1) };
/// let mems = ld.memory_operands(); // Copy, no allocation
/// assert_eq!(mems.len(), 1);
/// assert_eq!(mems[0], MemAddr(3));
/// assert!(mems.iter().eq([MemAddr(3)].iter()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Operands<T> {
    items: [T; MAX_OPERANDS],
    len: u8,
}

impl<T: Copy + Default> Operands<T> {
    /// The empty operand list.
    pub fn none() -> Self {
        Operands {
            items: [T::default(); MAX_OPERANDS],
            len: 0,
        }
    }

    /// A single-operand list.
    pub fn one(a: T) -> Self {
        Operands {
            items: [a, T::default()],
            len: 1,
        }
    }

    /// A two-operand list, in syntactic order.
    pub fn two(a: T, b: T) -> Self {
        Operands {
            items: [a, b],
            len: 2,
        }
    }
}

impl<T> Operands<T> {
    /// The operands as a slice, in syntactic order.
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }
}

impl<T> std::ops::Deref for Operands<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> IntoIterator for Operands<T> {
    type Item = T;
    type IntoIter = OperandsIter<T>;
    fn into_iter(self) -> OperandsIter<T> {
        OperandsIter { ops: self, pos: 0 }
    }
}

impl<'a, T> IntoIterator for &'a Operands<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// By-value iterator over an [`Operands`] list.
#[derive(Debug, Clone)]
pub struct OperandsIter<T> {
    ops: Operands<T>,
    pos: u8,
}

impl<T: Copy> Iterator for OperandsIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.pos < self.ops.len {
            let item = self.ops.items[self.pos as usize];
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.ops.len - self.pos) as usize;
        (remaining, Some(remaining))
    }
}

impl<T: Copy> ExactSizeIterator for OperandsIter<T> {}

impl<T: PartialEq> PartialEq for Operands<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for Operands<T> {}

impl<T: PartialEq> PartialEq<Vec<T>> for Operands<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<Operands<T>> for Vec<T> {
    fn eq(&self, other: &Operands<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<[T; N]> for Operands<T> {
    fn eq(&self, other: &[T; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A classical value identifier (`V` operand) holding a measurement outcome.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassicalId(pub u32);

impl ClassicalId {
    /// The raw classical register index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassicalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for ClassicalId {
    fn from(value: u32) -> Self {
        ClassicalId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_distinguish_operand_spaces() {
        assert_eq!(MemAddr(3).to_string(), "m3");
        assert_eq!(RegId(1).to_string(), "c1");
        assert_eq!(ClassicalId(7).to_string(), "v7");
    }

    #[test]
    fn conversions_and_indexing() {
        assert_eq!(MemAddr::from(4u32).index(), 4);
        assert_eq!(RegId::from(2u32).index(), 2);
        assert_eq!(ClassicalId::from(9u32).index(), 9);
    }

    #[test]
    fn operands_are_inline_and_iterate_in_order() {
        let none: Operands<MemAddr> = Operands::none();
        assert!(none.is_empty());
        assert_eq!(none.into_iter().count(), 0);

        let one = Operands::one(MemAddr(7));
        assert_eq!(one.len(), 1);
        assert_eq!(one, vec![MemAddr(7)]);

        let two = Operands::two(RegId(1), RegId(2));
        assert_eq!(two.as_slice(), &[RegId(1), RegId(2)]);
        assert_eq!(
            two.into_iter().collect::<Vec<_>>(),
            vec![RegId(1), RegId(2)]
        );
        let mut it = two.into_iter();
        assert_eq!(it.len(), 2);
        it.next();
        assert_eq!(it.len(), 1);

        // By-reference iteration and slice equality.
        assert!((&two).into_iter().eq([RegId(1), RegId(2)].iter()));
        assert_eq!(two, [RegId(1), RegId(2)]);
        assert_eq!(vec![RegId(1), RegId(2)], two);
    }

    #[test]
    fn operands_are_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Operands<MemAddr>>();
        assert_copy::<Operands<RegId>>();
        let a = Operands::two(MemAddr(0), MemAddr(1));
        let b = a; // copies
        assert_eq!(a, b);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(MemAddr(1) < MemAddr(2));
        assert!(RegId(0) < RegId(5));
        assert!(ClassicalId(3) > ClassicalId(1));
    }
}
