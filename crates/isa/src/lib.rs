//! The LSQCA instruction set architecture (Table I of the paper).
//!
//! LSQCA programs are sequences of instructions over three operand spaces:
//!
//! * **Memory qubit addresses** ([`MemAddr`]) — abstract locations in Scan-Access
//!   Memory (SAM). The controller, not the program, decides which physical cell an
//!   address currently maps to.
//! * **Register qubit identifiers** ([`RegId`]) — slots of the Computational
//!   Register (CR) or, with a hybrid floorplan, cells of the attached conventional
//!   region.
//! * **Classical value identifiers** ([`ClassicalId`]) — storage for measurement
//!   outcomes, used by the `SK` (skip) instruction for adaptive execution.
//!
//! The characteristic instructions are `LD`/`ST`, which move logical qubits between
//! SAM and CR with *variable* latency; all other instructions have the fixed
//! latencies listed in Table I. In-memory variants (`*.M`) operate on qubits while
//! they stay in SAM, using the scan cell/line as the surgery ancilla.
//!
//! # Example
//!
//! ```
//! use lsqca_isa::{Instruction, MemAddr, Program, RegId, ClassicalId};
//!
//! let mut program = Program::new("teleport-t-gate");
//! program.push(Instruction::Pm { reg: RegId(0) });
//! program.push(Instruction::MzzM {
//!     reg: RegId(0),
//!     mem: MemAddr(5),
//!     out: ClassicalId(0),
//! });
//! program.push(Instruction::Sk { cond: ClassicalId(0) });
//! program.push(Instruction::PhM { mem: MemAddr(5) });
//! assert_eq!(program.len(), 4);
//! assert!(program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Version of the instruction set this crate implements.
///
/// The on-disk compiled-workload artifacts (`lsqca_workloads::cache`) embed
/// this number in their cache key and in the artifact document itself, so a
/// change to the instruction set, the assembly syntax, or the latency table
/// invalidates every previously cached artifact instead of silently serving
/// instruction streams compiled against an older contract. Bump it whenever
/// any of those change shape or meaning.
pub const ISA_VERSION: u32 = 1;

pub mod asm;
pub mod instruction;
pub mod latency;
pub mod operand;
pub mod program;
pub mod trace_compile;
pub mod validate;

pub use instruction::{Instruction, InstructionKind, OperandLocation};
pub use latency::{InstructionLatency, LatencyClass, LatencyTable};
pub use operand::{ClassicalId, MemAddr, Operands, RegId, MAX_OPERANDS};
pub use program::{Program, ProgramStats};
pub use trace_compile::{
    lower, lower_into, lowering_count, ExecKind, ExecutionTrace, TraceDecodeError, TRACE_REVISION,
};
pub use validate::{ValidationError, ValidationReport};
