//! Lowering LSQCA programs into dense, pre-resolved execution traces.
//!
//! The simulator's inner loop used to re-discover the same static facts about
//! every instruction on every run: its operand lists (`memory_operands`,
//! `register_operands`), whether it occupies a SAM scan resource, whether it
//! is an in-memory operation, its latency class, and — via a 21-arm `match`
//! — which duration rule applies. All of that is a pure function of the
//! instruction variant, so it can be computed **once per program** by a
//! lowering pass and stored in a dense struct-of-arrays [`ExecutionTrace`]:
//!
//! ```text
//! Program ──lower()──▶ ExecutionTrace ──Simulator::run_trace──▶ ExecutionStats
//!   (enum stream)        (flat SoA columns)                       (identical to
//!                                                                  the interpreter)
//! ```
//!
//! Per record the trace stores the execution kind (the pre-resolved duration
//! dispatch arm, [`ExecKind`]), a flags byte (operand shape, scan-resource,
//! in-memory, classical in/out), the fixed beat component, and the operand
//! slots. The raw opcode is kept in its own column that only the cold error
//! path reads (to reconstruct the offending [`Instruction`] for
//! `SimError::Instruction`).
//!
//! Traces are derived data, exactly like the precompiled latency classes:
//! `CompiledWorkload` embeds the serialized trace in its artifact (see
//! [`ExecutionTrace::encode`]) so a warm cache load *decodes* the trace
//! instead of re-lowering — the process-wide [`lowering_count`] stays flat
//! across warm sweeps, mirroring the zero-compile / zero-simulation
//! assertions.

use crate::instruction::Instruction;
use crate::operand::{ClassicalId, MemAddr, RegId};
use crate::program::Program;
use std::fmt;
use std::sync::OnceLock;

/// Revision of the trace lowering (record layout, opcode numbering, encode
/// format, and the static per-opcode metadata baked into each record).
///
/// Compiled-workload artifacts embed this number next to `ISA_VERSION`, and
/// the on-disk cache mixes it into its key: bump it whenever lowering changes
/// what a record contains or means, so stale traces are quarantined and
/// relowered instead of silently driving the engine with an older contract.
pub const TRACE_REVISION: u32 = 1;

/// The registry counter behind [`lowering_count`]: every [`lower`] /
/// [`lower_into`] call, including the one inside `CompiledWorkload::compile`.
/// Decoding a cached trace does **not** count. The warm-cache acceptance
/// tests assert this stays flat across a sweep served entirely from disk.
fn lowering_counter() -> &'static lsqca_telemetry::Counter {
    static COUNTER: OnceLock<&'static lsqca_telemetry::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| lsqca_telemetry::counter("trace.lowered"))
}

/// Total trace lowerings performed by this process so far (the registry's
/// `trace.lowered` counter).
pub fn lowering_count() -> u64 {
    lowering_counter().get()
}

/// The pre-resolved duration dispatch arm of one trace record.
///
/// The interpreter's 21-arm duration `match` collapses into these nine
/// execution kinds; everything variant-specific beyond the kind (the fixed
/// beat component, operand shape) lives in the other trace columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ExecKind {
    /// Fixed zero-beat latency, excluded from CPI command counts.
    Negligible,
    /// Fixed non-zero latency (`fixed_beats` holds the duration).
    Fixed,
    /// `LD`: variable-latency load through the memory controller.
    Load,
    /// `ST`: variable-latency store through the memory controller.
    Store,
    /// `PM`: wait for the magic-state supply, then `fixed_beats` to move the
    /// state into the CR.
    Magic,
    /// In-memory unitary: scan seek plus `fixed_beats` of surgery.
    Seek,
    /// In-memory joint measurement: two-qubit scan access plus `fixed_beats`.
    TwoQubitAccess,
    /// The optimized `CX` expansion (peek both, load the cheaper operand,
    /// access the other in memory, store back; `fixed_beats` of surgery).
    Cx,
    /// `SK`: zero-beat, but arms the skip guard for the next instruction.
    Skip,
}

impl ExecKind {
    /// Every kind, in `repr(u8)` discriminant order — `ALL[k as usize] == k`.
    pub const ALL: [ExecKind; 9] = [
        ExecKind::Negligible,
        ExecKind::Fixed,
        ExecKind::Load,
        ExecKind::Store,
        ExecKind::Magic,
        ExecKind::Seek,
        ExecKind::TwoQubitAccess,
        ExecKind::Cx,
        ExecKind::Skip,
    ];

    /// Stable lower-snake name, used to key per-kind telemetry
    /// (`sim.beats.<name>` histograms).
    pub const fn name(self) -> &'static str {
        match self {
            ExecKind::Negligible => "negligible",
            ExecKind::Fixed => "fixed",
            ExecKind::Load => "load",
            ExecKind::Store => "store",
            ExecKind::Magic => "magic",
            ExecKind::Seek => "seek",
            ExecKind::TwoQubitAccess => "two_qubit_access",
            ExecKind::Cx => "cx",
            ExecKind::Skip => "skip",
        }
    }
}

/// Flag bits of one trace record (the `flags` column).
pub mod flags {
    /// Record has a first SAM operand (`mem0`).
    pub const HAS_MEM0: u8 = 1 << 0;
    /// Record has a second SAM operand (`mem1`); implies [`HAS_MEM0`].
    pub const HAS_MEM1: u8 = 1 << 1;
    /// Record has a first CR operand (`reg0`).
    pub const HAS_REG0: u8 = 1 << 2;
    /// Record has a second CR operand (`reg1`); implies [`HAS_REG0`].
    pub const HAS_REG1: u8 = 1 << 3;
    /// Instruction occupies its SAM bank's scan cell / scan line.
    pub const NEEDS_SCAN: u8 = 1 << 4;
    /// Instruction operates on SAM contents in place (`Instruction::is_in_memory`).
    pub const IN_MEMORY: u8 = 1 << 5;
    /// Record reads a classical value (`cio` column; only `SK`).
    pub const HAS_CIN: u8 = 1 << 6;
    /// Record writes a classical value (`cio` column; the measurements).
    pub const HAS_COUT: u8 = 1 << 7;
}

/// A program lowered into dense struct-of-arrays execution records.
///
/// Columns are parallel vectors, one entry per instruction. The hot loop
/// streams `exec` / `flags` / `fixed_beats` / operand columns and never
/// touches `op`, which exists for the cold paths only (error reconstruction
/// and serialization).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    op: Vec<u8>,
    exec: Vec<ExecKind>,
    flags: Vec<u8>,
    fixed: Vec<u8>,
    mem0: Vec<u32>,
    mem1: Vec<u32>,
    reg0: Vec<u32>,
    reg1: Vec<u32>,
    cio: Vec<u32>,
    /// One past the highest SAM address referenced (0 if none): the engine
    /// presizes its per-address ready table to this bound so the loop indexes
    /// directly instead of bounds-probing per access.
    mem_bound: u32,
    /// One past the highest classical identifier referenced (0 if none).
    classical_bound: u32,
}

impl ExecutionTrace {
    /// An empty trace (also the reusable-scratch starting point for
    /// [`lower_into`]).
    pub fn new() -> Self {
        ExecutionTrace::default()
    }

    /// Number of records (= instructions of the lowered program).
    pub fn len(&self) -> usize {
        self.exec.len()
    }

    /// True if the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.exec.is_empty()
    }

    /// The execution-kind column.
    #[inline]
    pub fn exec_kinds(&self) -> &[ExecKind] {
        &self.exec
    }

    /// The flags column (see [`flags`]).
    #[inline]
    pub fn flag_bits(&self) -> &[u8] {
        &self.flags
    }

    /// The fixed beat component column.
    #[inline]
    pub fn fixed_beats(&self) -> &[u8] {
        &self.fixed
    }

    /// The first SAM operand column (valid where [`flags::HAS_MEM0`] is set).
    #[inline]
    pub fn mem0(&self) -> &[u32] {
        &self.mem0
    }

    /// The second SAM operand column (valid where [`flags::HAS_MEM1`] is set).
    #[inline]
    pub fn mem1(&self) -> &[u32] {
        &self.mem1
    }

    /// The first CR operand column (valid where [`flags::HAS_REG0`] is set).
    #[inline]
    pub fn reg0(&self) -> &[u32] {
        &self.reg0
    }

    /// The second CR operand column (valid where [`flags::HAS_REG1`] is set).
    #[inline]
    pub fn reg1(&self) -> &[u32] {
        &self.reg1
    }

    /// The classical in/out column (valid where [`flags::HAS_CIN`] or
    /// [`flags::HAS_COUT`] is set).
    #[inline]
    pub fn cio(&self) -> &[u32] {
        &self.cio
    }

    /// One past the highest SAM address referenced by any record.
    pub fn mem_bound(&self) -> u32 {
        self.mem_bound
    }

    /// One past the highest classical identifier referenced by any record.
    pub fn classical_bound(&self) -> u32 {
        self.classical_bound
    }

    /// Clears every column, keeping allocated capacity (scratch reuse).
    pub fn clear(&mut self) {
        self.op.clear();
        self.exec.clear();
        self.flags.clear();
        self.fixed.clear();
        self.mem0.clear();
        self.mem1.clear();
        self.reg0.clear();
        self.reg1.clear();
        self.cio.clear();
        self.mem_bound = 0;
        self.classical_bound = 0;
    }

    fn reserve(&mut self, additional: usize) {
        self.op.reserve(additional);
        self.exec.reserve(additional);
        self.flags.reserve(additional);
        self.fixed.reserve(additional);
        self.mem0.reserve(additional);
        self.mem1.reserve(additional);
        self.reg0.reserve(additional);
        self.reg1.reserve(additional);
        self.cio.reserve(additional);
    }

    /// Appends the lowered record for one instruction. This is the **only**
    /// place that matches on the instruction variant; everything downstream
    /// reads the precomputed columns.
    fn push_instruction(&mut self, instr: &Instruction) {
        use flags::*;
        use ExecKind as E;
        use Instruction::*;
        // (opcode, exec kind, fixed beats, shape flags, m0, m1, r0, r1, cio)
        let (op, exec, fixed, fl, m0, m1, r0, r1, cio) = match *instr {
            Ld { mem, reg } => (
                0,
                E::Load,
                0,
                HAS_MEM0 | HAS_REG0 | NEEDS_SCAN,
                mem.0,
                0,
                reg.0,
                0,
                0,
            ),
            St { reg, mem } => (
                1,
                E::Store,
                0,
                HAS_MEM0 | HAS_REG0 | NEEDS_SCAN,
                mem.0,
                0,
                reg.0,
                0,
                0,
            ),
            PzC { reg } => (2, E::Negligible, 0, HAS_REG0, 0, 0, reg.0, 0, 0),
            PpC { reg } => (3, E::Negligible, 0, HAS_REG0, 0, 0, reg.0, 0, 0),
            Pm { reg } => (4, E::Magic, 1, HAS_REG0, 0, 0, reg.0, 0, 0),
            HdC { reg } => (5, E::Fixed, 3, HAS_REG0, 0, 0, reg.0, 0, 0),
            PhC { reg } => (6, E::Fixed, 2, HAS_REG0, 0, 0, reg.0, 0, 0),
            MxC { reg, out } => (
                7,
                E::Negligible,
                0,
                HAS_REG0 | HAS_COUT,
                0,
                0,
                reg.0,
                0,
                out.0,
            ),
            MzC { reg, out } => (
                8,
                E::Negligible,
                0,
                HAS_REG0 | HAS_COUT,
                0,
                0,
                reg.0,
                0,
                out.0,
            ),
            MxxC { reg1, reg2, out } => (
                9,
                E::Fixed,
                1,
                HAS_REG0 | HAS_REG1 | HAS_COUT,
                0,
                0,
                reg1.0,
                reg2.0,
                out.0,
            ),
            MzzC { reg1, reg2, out } => (
                10,
                E::Fixed,
                1,
                HAS_REG0 | HAS_REG1 | HAS_COUT,
                0,
                0,
                reg1.0,
                reg2.0,
                out.0,
            ),
            Sk { cond } => (11, E::Skip, 0, HAS_CIN, 0, 0, 0, 0, cond.0),
            PzM { mem } => (
                12,
                E::Negligible,
                0,
                HAS_MEM0 | IN_MEMORY,
                mem.0,
                0,
                0,
                0,
                0,
            ),
            PpM { mem } => (
                13,
                E::Negligible,
                0,
                HAS_MEM0 | IN_MEMORY,
                mem.0,
                0,
                0,
                0,
                0,
            ),
            HdM { mem } => (
                14,
                E::Seek,
                3,
                HAS_MEM0 | NEEDS_SCAN | IN_MEMORY,
                mem.0,
                0,
                0,
                0,
                0,
            ),
            PhM { mem } => (
                15,
                E::Seek,
                2,
                HAS_MEM0 | NEEDS_SCAN | IN_MEMORY,
                mem.0,
                0,
                0,
                0,
                0,
            ),
            MxM { mem, out } => (
                16,
                E::Negligible,
                0,
                HAS_MEM0 | IN_MEMORY | HAS_COUT,
                mem.0,
                0,
                0,
                0,
                out.0,
            ),
            MzM { mem, out } => (
                17,
                E::Negligible,
                0,
                HAS_MEM0 | IN_MEMORY | HAS_COUT,
                mem.0,
                0,
                0,
                0,
                out.0,
            ),
            MxxM { reg, mem, out } => (
                18,
                E::TwoQubitAccess,
                1,
                HAS_MEM0 | HAS_REG0 | NEEDS_SCAN | IN_MEMORY | HAS_COUT,
                mem.0,
                0,
                reg.0,
                0,
                out.0,
            ),
            MzzM { reg, mem, out } => (
                19,
                E::TwoQubitAccess,
                1,
                HAS_MEM0 | HAS_REG0 | NEEDS_SCAN | IN_MEMORY | HAS_COUT,
                mem.0,
                0,
                reg.0,
                0,
                out.0,
            ),
            Cx { control, target } => (
                20,
                E::Cx,
                2,
                HAS_MEM0 | HAS_MEM1 | NEEDS_SCAN | IN_MEMORY,
                control.0,
                target.0,
                0,
                0,
                0,
            ),
        };
        if fl & HAS_MEM0 != 0 {
            self.mem_bound = self.mem_bound.max(m0 + 1);
        }
        if fl & HAS_MEM1 != 0 {
            self.mem_bound = self.mem_bound.max(m1 + 1);
        }
        if fl & (HAS_CIN | HAS_COUT) != 0 {
            self.classical_bound = self.classical_bound.max(cio + 1);
        }
        self.op.push(op);
        self.exec.push(exec);
        self.flags.push(fl);
        self.fixed.push(fixed);
        self.mem0.push(m0);
        self.mem1.push(m1);
        self.reg0.push(r0);
        self.reg1.push(r1);
        self.cio.push(cio);
    }

    /// Reconstructs the instruction behind record `index` — the cold path for
    /// `SimError::Instruction` and for display; the hot loop never calls this.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn instruction(&self, index: usize) -> Instruction {
        use flags::*;
        let fl = self.flags[index];
        let mut operands = [0u32; 5];
        let mut n = 0;
        if fl & HAS_MEM0 != 0 {
            operands[n] = self.mem0[index];
            n += 1;
        }
        if fl & HAS_MEM1 != 0 {
            operands[n] = self.mem1[index];
            n += 1;
        }
        if fl & HAS_REG0 != 0 {
            operands[n] = self.reg0[index];
            n += 1;
        }
        if fl & HAS_REG1 != 0 {
            operands[n] = self.reg1[index];
            n += 1;
        }
        if fl & (HAS_CIN | HAS_COUT) != 0 {
            operands[n] = self.cio[index];
            n += 1;
        }
        match reconstruct(self.op[index], &operands[..n]) {
            Some(instr) => instr,
            None => unreachable!("trace record {index} holds an invalid opcode"),
        }
    }

    /// Serializes the trace to its compact artifact text: one record per
    /// instruction (`;`-separated), each record the hex opcode followed by
    /// its hex operand values (`.`-separated, canonical order: memory
    /// operands, register operands, classical in/out).
    ///
    /// Only the opcode and operand slots are stored — every derived column
    /// (execution kind, flags, fixed beats, bounds) is a pure function of
    /// the opcode and is rebuilt by [`ExecutionTrace::decode`].
    pub fn encode(&self) -> String {
        use flags::*;
        let mut text = String::with_capacity(self.len() * 6);
        for index in 0..self.len() {
            if index > 0 {
                text.push(';');
            }
            let fl = self.flags[index];
            push_hex(&mut text, self.op[index] as u32);
            if fl & HAS_MEM0 != 0 {
                text.push('.');
                push_hex(&mut text, self.mem0[index]);
            }
            if fl & HAS_MEM1 != 0 {
                text.push('.');
                push_hex(&mut text, self.mem1[index]);
            }
            if fl & HAS_REG0 != 0 {
                text.push('.');
                push_hex(&mut text, self.reg0[index]);
            }
            if fl & HAS_REG1 != 0 {
                text.push('.');
                push_hex(&mut text, self.reg1[index]);
            }
            if fl & (HAS_CIN | HAS_COUT) != 0 {
                text.push('.');
                push_hex(&mut text, self.cio[index]);
            }
        }
        text
    }

    /// Decodes [`ExecutionTrace::encode`] output. Does **not** count as a
    /// lowering: this is the warm cache-load path, and the zero-lowering
    /// acceptance checks rely on the distinction.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceDecodeError`] for unknown opcodes, operand counts
    /// that do not match the opcode's shape, or malformed hex fields.
    pub fn decode(text: &str) -> Result<Self, TraceDecodeError> {
        let mut trace = ExecutionTrace::new();
        if text.is_empty() {
            return Ok(trace);
        }
        for (index, record) in text.split(';').enumerate() {
            let mut fields = record.split('.');
            let op = parse_hex(fields.next().unwrap_or(""), index)?;
            let mut operands = [0u32; 5];
            let mut n = 0;
            for field in fields {
                if n == operands.len() {
                    return Err(TraceDecodeError {
                        what: format!("record {index} has too many operand fields"),
                    });
                }
                operands[n] = parse_hex(field, index)?;
                n += 1;
            }
            let op = u8::try_from(op).unwrap_or(u8::MAX);
            let instr = reconstruct(op, &operands[..n]).ok_or_else(|| TraceDecodeError {
                what: format!(
                    "record {index}: opcode {op} with {n} operand field(s) \
                     matches no instruction shape"
                ),
            })?;
            trace.push_instruction(&instr);
        }
        Ok(trace)
    }
}

fn push_hex(text: &mut String, value: u32) {
    use fmt::Write;
    let _ = write!(text, "{value:x}");
}

fn parse_hex(field: &str, index: usize) -> Result<u32, TraceDecodeError> {
    if field.is_empty() {
        return Err(TraceDecodeError {
            what: format!("record {index} has an empty field"),
        });
    }
    u32::from_str_radix(field, 16).map_err(|_| TraceDecodeError {
        what: format!("record {index}: `{field}` is not a hex operand"),
    })
}

/// Rebuilds an [`Instruction`] from an opcode and its operand values in
/// canonical (encode) order. `None` if the opcode or operand count is
/// invalid — the decode-side shape validation.
fn reconstruct(op: u8, operands: &[u32]) -> Option<Instruction> {
    use Instruction::*;
    let instr = match (op, operands) {
        (0, &[m, r]) => Ld {
            mem: MemAddr(m),
            reg: RegId(r),
        },
        (1, &[m, r]) => St {
            reg: RegId(r),
            mem: MemAddr(m),
        },
        (2, &[r]) => PzC { reg: RegId(r) },
        (3, &[r]) => PpC { reg: RegId(r) },
        (4, &[r]) => Pm { reg: RegId(r) },
        (5, &[r]) => HdC { reg: RegId(r) },
        (6, &[r]) => PhC { reg: RegId(r) },
        (7, &[r, v]) => MxC {
            reg: RegId(r),
            out: ClassicalId(v),
        },
        (8, &[r, v]) => MzC {
            reg: RegId(r),
            out: ClassicalId(v),
        },
        (9, &[r1, r2, v]) => MxxC {
            reg1: RegId(r1),
            reg2: RegId(r2),
            out: ClassicalId(v),
        },
        (10, &[r1, r2, v]) => MzzC {
            reg1: RegId(r1),
            reg2: RegId(r2),
            out: ClassicalId(v),
        },
        (11, &[v]) => Sk {
            cond: ClassicalId(v),
        },
        (12, &[m]) => PzM { mem: MemAddr(m) },
        (13, &[m]) => PpM { mem: MemAddr(m) },
        (14, &[m]) => HdM { mem: MemAddr(m) },
        (15, &[m]) => PhM { mem: MemAddr(m) },
        (16, &[m, v]) => MxM {
            mem: MemAddr(m),
            out: ClassicalId(v),
        },
        (17, &[m, v]) => MzM {
            mem: MemAddr(m),
            out: ClassicalId(v),
        },
        (18, &[m, r, v]) => MxxM {
            reg: RegId(r),
            mem: MemAddr(m),
            out: ClassicalId(v),
        },
        (19, &[m, r, v]) => MzzM {
            reg: RegId(r),
            mem: MemAddr(m),
            out: ClassicalId(v),
        },
        (20, &[c, t]) => Cx {
            control: MemAddr(c),
            target: MemAddr(t),
        },
        _ => return None,
    };
    Some(instr)
}

/// Lowers `program` into a fresh [`ExecutionTrace`]. Counted by
/// [`lowering_count`].
pub fn lower(program: &Program) -> ExecutionTrace {
    let mut trace = ExecutionTrace::new();
    lower_into(program, &mut trace);
    trace
}

/// Lowers `program` into `trace`, reusing its allocated capacity — the
/// scratch-reuse entry point for engines that lower ad-hoc programs per run.
/// Counted by [`lowering_count`].
pub fn lower_into(program: &Program, trace: &mut ExecutionTrace) {
    lowering_counter().inc();
    let _span = lsqca_telemetry::span("trace.lower");
    trace.clear();
    trace.reserve(program.len());
    for instr in program.iter() {
        trace.push_instruction(instr);
    }
}

/// Why a serialized trace was rejected by [`ExecutionTrace::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDecodeError {
    /// Description of the malformed content.
    pub what: String,
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed execution trace: {}", self.what)
    }
}

impl std::error::Error for TraceDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::example_instructions;
    use crate::latency::{LatencyClass, LatencyTable};

    fn example_program() -> Program {
        let mut program = Program::new("every-variant");
        for instr in example_instructions() {
            program.push(instr);
        }
        program
    }

    #[test]
    fn lowering_counts_and_decoding_does_not() {
        let program = example_program();
        let before = lowering_count();
        let trace = lower(&program);
        assert_eq!(lowering_count(), before + 1);
        let decoded = ExecutionTrace::decode(&trace.encode()).unwrap();
        assert_eq!(lowering_count(), before + 1, "decode must not count");
        assert_eq!(decoded, trace);
    }

    #[test]
    fn records_reconstruct_their_instructions() {
        let program = example_program();
        let trace = lower(&program);
        assert_eq!(trace.len(), program.len());
        for (index, instr) in program.iter().enumerate() {
            assert_eq!(trace.instruction(index), *instr, "record {index}");
        }
    }

    #[test]
    fn static_columns_agree_with_instruction_metadata() {
        // The lowering table is the one place that re-derives per-variant
        // facts; this pins every column to the Instruction/LatencyTable
        // metadata so the two can never drift apart silently.
        let table = LatencyTable::paper();
        let program = example_program();
        let trace = lower(&program);
        for (i, instr) in program.iter().enumerate() {
            let fl = trace.flag_bits()[i];
            let mems = instr.memory_operands();
            let regs = instr.register_operands();
            let mem_count =
                usize::from(fl & flags::HAS_MEM0 != 0) + usize::from(fl & flags::HAS_MEM1 != 0);
            let reg_count =
                usize::from(fl & flags::HAS_REG0 != 0) + usize::from(fl & flags::HAS_REG1 != 0);
            assert_eq!(mem_count, mems.len(), "{instr}");
            assert_eq!(reg_count, regs.len(), "{instr}");
            if !mems.is_empty() {
                assert_eq!(trace.mem0()[i], mems[0].0, "{instr}");
            }
            if mems.len() > 1 {
                assert_eq!(trace.mem1()[i], mems[1].0, "{instr}");
            }
            if !regs.is_empty() {
                assert_eq!(trace.reg0()[i], regs[0].0, "{instr}");
            }
            if regs.len() > 1 {
                assert_eq!(trace.reg1()[i], regs[1].0, "{instr}");
            }
            assert_eq!(
                fl & flags::IN_MEMORY != 0,
                instr.is_in_memory(),
                "{instr}: IN_MEMORY"
            );
            assert_eq!(
                fl & flags::HAS_CIN != 0,
                instr.classical_input().is_some(),
                "{instr}: HAS_CIN"
            );
            assert_eq!(
                fl & flags::HAS_COUT != 0,
                instr.classical_output().is_some(),
                "{instr}: HAS_COUT"
            );
            if let Some(v) = instr.classical_input().or(instr.classical_output()) {
                assert_eq!(trace.cio()[i], v.0, "{instr}: cio");
            }
            // Negligible exec kind ⟺ negligible latency class; the engine's
            // CPI bookkeeping relies on this equivalence.
            assert_eq!(
                trace.exec_kinds()[i] == ExecKind::Negligible,
                table.classify(instr) == LatencyClass::Negligible,
                "{instr}: negligible"
            );
            // The scan-resource set is the engine's historical list.
            use Instruction::*;
            let needs_scan = matches!(
                instr,
                Ld { .. }
                    | St { .. }
                    | HdM { .. }
                    | PhM { .. }
                    | MxxM { .. }
                    | MzzM { .. }
                    | Cx { .. }
            );
            assert_eq!(
                fl & flags::NEEDS_SCAN != 0,
                needs_scan,
                "{instr}: NEEDS_SCAN"
            );
        }
    }

    #[test]
    fn bounds_cover_the_highest_operands() {
        use crate::instruction::Instruction::*;
        let mut program = Program::new("bounds");
        program.push(Cx {
            control: MemAddr(7),
            target: MemAddr(41),
        });
        program.push(MzM {
            mem: MemAddr(3),
            out: ClassicalId(9),
        });
        let trace = lower(&program);
        assert_eq!(trace.mem_bound(), 42);
        assert_eq!(trace.classical_bound(), 10);
        assert_eq!(lower(&Program::new("empty")).mem_bound(), 0);
    }

    #[test]
    fn empty_traces_round_trip() {
        let trace = lower(&Program::new("empty"));
        assert!(trace.is_empty());
        assert_eq!(trace.encode(), "");
        assert_eq!(ExecutionTrace::decode("").unwrap(), trace);
    }

    #[test]
    fn scratch_reuse_clears_previous_contents() {
        let mut trace = lower(&example_program());
        let small = {
            let mut p = Program::new("small");
            p.push(Instruction::HdM { mem: MemAddr(2) });
            p
        };
        lower_into(&small, &mut trace);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.mem_bound(), 3);
        assert_eq!(trace.classical_bound(), 0);
        assert_eq!(trace, lower(&small));
    }

    #[test]
    fn malformed_trace_text_is_rejected() {
        // Unknown opcode.
        let err = ExecutionTrace::decode("7f.0").unwrap_err();
        assert!(err.to_string().contains("no instruction shape"));
        // Operand count mismatching the opcode's shape (LD needs two).
        assert!(ExecutionTrace::decode("0.1").is_err());
        // Non-hex operand and empty field.
        assert!(ExecutionTrace::decode("0.xyz.1").is_err());
        assert!(ExecutionTrace::decode("0..1").is_err());
        // Too many fields.
        assert!(ExecutionTrace::decode("0.1.2.3.4.5.6").is_err());
        // Errors render through the std Error trait.
        let err = ExecutionTrace::decode("zz").unwrap_err();
        assert!(std::error::Error::source(&err).is_none());
        assert!(err.to_string().contains("malformed execution trace"));
    }
}
