//! Static validation of LSQCA programs.
//!
//! The checks are the ones a memory controller would demand before accepting a
//! program:
//!
//! * `SK` only reads classical values that some earlier instruction produced.
//! * `SK` must be followed by an instruction it can actually skip.
//! * A `LD` must not target a register slot that already holds a loaded qubit,
//!   and a `ST` must store a slot that was previously loaded or prepared
//!   (register liveness discipline).
//! * A qubit cannot be loaded twice without an intervening store (it would be in
//!   two places at once).

use crate::instruction::Instruction;
use crate::operand::{ClassicalId, MemAddr, RegId};
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// A violation detected by [`validate_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// `SK` reads a classical value never written before it.
    UndefinedClassicalValue {
        /// Index of the offending instruction.
        index: usize,
        /// The classical value that was never written.
        value: ClassicalId,
    },
    /// `SK` is the last instruction, so there is nothing to skip.
    DanglingSkip {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A register slot was used as a gate/measurement operand while empty.
    EmptyRegisterUse {
        /// Index of the offending instruction.
        index: usize,
        /// The register slot that held no qubit.
        reg: RegId,
    },
    /// A `LD` targets a register slot that is already occupied.
    RegisterOverwrite {
        /// Index of the offending instruction.
        index: usize,
        /// The register slot that was still occupied.
        reg: RegId,
    },
    /// A memory qubit was loaded while it was already checked out to the CR.
    DoubleLoad {
        /// Index of the offending instruction.
        index: usize,
        /// The memory address loaded twice.
        mem: MemAddr,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UndefinedClassicalValue { index, value } => {
                write!(f, "instruction {index}: skip reads undefined value {value}")
            }
            ValidationError::DanglingSkip { index } => {
                write!(f, "instruction {index}: skip has no following instruction")
            }
            ValidationError::EmptyRegisterUse { index, reg } => {
                write!(f, "instruction {index}: register {reg} is used while empty")
            }
            ValidationError::RegisterOverwrite { index, reg } => {
                write!(
                    f,
                    "instruction {index}: register {reg} is loaded while occupied"
                )
            }
            ValidationError::DoubleLoad { index, mem } => {
                write!(
                    f,
                    "instruction {index}: memory qubit {mem} is already loaded"
                )
            }
        }
    }
}

impl Error for ValidationError {}

/// Summary of a successful validation.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Distinct register slots used by the program.
    pub registers_used: BTreeSet<RegId>,
    /// Distinct memory addresses referenced.
    pub memory_used: BTreeSet<MemAddr>,
    /// Distinct classical values written.
    pub classical_written: BTreeSet<ClassicalId>,
    /// Maximum number of register slots simultaneously holding loaded qubits.
    pub peak_register_pressure: usize,
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} registers, {} memory qubits, {} classical values, peak register pressure {}",
            self.registers_used.len(),
            self.memory_used.len(),
            self.classical_written.len(),
            self.peak_register_pressure
        )
    }
}

/// What a register slot currently holds during abstract interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    /// Holds a qubit checked out from this SAM address.
    LoadedFrom(MemAddr),
    /// Holds a locally prepared state (|0⟩, |+⟩, or magic).
    Prepared,
}

/// Validates a program; returns a report on success or the first error found.
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered while scanning the program
/// in order.
pub fn validate_program(program: &Program) -> Result<ValidationReport, ValidationError> {
    let mut report = ValidationReport::default();
    let mut defined_values: BTreeSet<ClassicalId> = BTreeSet::new();
    let mut slots: BTreeMap<RegId, SlotState> = BTreeMap::new();
    let mut loaded_mem: BTreeSet<MemAddr> = BTreeSet::new();

    let slot_state = |slots: &BTreeMap<RegId, SlotState>, reg: RegId| {
        slots.get(&reg).copied().unwrap_or(SlotState::Empty)
    };

    let instructions = program.instructions();
    for (index, instr) in instructions.iter().enumerate() {
        for r in instr.register_operands() {
            report.registers_used.insert(r);
        }
        for m in instr.memory_operands() {
            report.memory_used.insert(m);
        }

        match *instr {
            Instruction::Ld { mem, reg } => {
                if loaded_mem.contains(&mem) {
                    return Err(ValidationError::DoubleLoad { index, mem });
                }
                if !matches!(slot_state(&slots, reg), SlotState::Empty) {
                    return Err(ValidationError::RegisterOverwrite { index, reg });
                }
                loaded_mem.insert(mem);
                slots.insert(reg, SlotState::LoadedFrom(mem));
            }
            Instruction::St { reg, mem: _ } => {
                match slot_state(&slots, reg) {
                    SlotState::Empty => {
                        return Err(ValidationError::EmptyRegisterUse { index, reg })
                    }
                    SlotState::LoadedFrom(m) => {
                        loaded_mem.remove(&m);
                    }
                    SlotState::Prepared => {}
                }
                slots.insert(reg, SlotState::Empty);
            }
            Instruction::PzC { reg } | Instruction::PpC { reg } | Instruction::Pm { reg } => {
                // Preparations may freely reinitialize a slot.
                if let SlotState::LoadedFrom(m) = slot_state(&slots, reg) {
                    loaded_mem.remove(&m);
                }
                slots.insert(reg, SlotState::Prepared);
            }
            Instruction::HdC { reg } | Instruction::PhC { reg } => {
                if matches!(slot_state(&slots, reg), SlotState::Empty) {
                    return Err(ValidationError::EmptyRegisterUse { index, reg });
                }
            }
            Instruction::MxC { reg, .. } | Instruction::MzC { reg, .. } => {
                if matches!(slot_state(&slots, reg), SlotState::Empty) {
                    return Err(ValidationError::EmptyRegisterUse { index, reg });
                }
                // Destructive measurement frees the slot.
                if let SlotState::LoadedFrom(m) = slot_state(&slots, reg) {
                    loaded_mem.remove(&m);
                }
                slots.insert(reg, SlotState::Empty);
            }
            Instruction::MxxC { reg1, reg2, .. } | Instruction::MzzC { reg1, reg2, .. } => {
                for reg in [reg1, reg2] {
                    if matches!(slot_state(&slots, reg), SlotState::Empty) {
                        return Err(ValidationError::EmptyRegisterUse { index, reg });
                    }
                }
            }
            Instruction::MxxM { reg, .. } | Instruction::MzzM { reg, .. } => {
                if matches!(slot_state(&slots, reg), SlotState::Empty) {
                    return Err(ValidationError::EmptyRegisterUse { index, reg });
                }
            }
            Instruction::Sk { cond } => {
                if !defined_values.contains(&cond) {
                    return Err(ValidationError::UndefinedClassicalValue { index, value: cond });
                }
                if index + 1 >= instructions.len() {
                    return Err(ValidationError::DanglingSkip { index });
                }
            }
            // Pure in-memory instructions have no register discipline to check.
            Instruction::PzM { .. }
            | Instruction::PpM { .. }
            | Instruction::HdM { .. }
            | Instruction::PhM { .. }
            | Instruction::MxM { .. }
            | Instruction::MzM { .. }
            | Instruction::Cx { .. } => {}
        }

        if let Some(out) = instr.classical_output() {
            defined_values.insert(out);
            report.classical_written.insert(out);
        }

        let pressure = slots
            .values()
            .filter(|s| !matches!(s, SlotState::Empty))
            .count();
        report.peak_register_pressure = report.peak_register_pressure.max(pressure);
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_program() -> Program {
        let mut p = Program::new("ok");
        p.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        p.push(Instruction::Pm { reg: RegId(1) });
        p.push(Instruction::MzzC {
            reg1: RegId(0),
            reg2: RegId(1),
            out: ClassicalId(0),
        });
        p.push(Instruction::MxC {
            reg: RegId(1),
            out: ClassicalId(1),
        });
        p.push(Instruction::Sk {
            cond: ClassicalId(0),
        });
        p.push(Instruction::PhC { reg: RegId(0) });
        p.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(0),
        });
        p
    }

    #[test]
    fn valid_program_produces_report() {
        let report = validate_program(&ok_program()).unwrap();
        assert_eq!(report.registers_used.len(), 2);
        assert_eq!(report.memory_used.len(), 1);
        assert_eq!(report.classical_written.len(), 2);
        assert_eq!(report.peak_register_pressure, 2);
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn skip_of_undefined_value_is_rejected() {
        let mut p = Program::new("bad");
        p.push(Instruction::Sk {
            cond: ClassicalId(0),
        });
        p.push(Instruction::PzC { reg: RegId(0) });
        let err = validate_program(&p).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::UndefinedClassicalValue { .. }
        ));
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn trailing_skip_is_rejected() {
        let mut p = Program::new("bad");
        p.push(Instruction::MzM {
            mem: MemAddr(0),
            out: ClassicalId(0),
        });
        p.push(Instruction::Sk {
            cond: ClassicalId(0),
        });
        let err = validate_program(&p).unwrap_err();
        assert!(matches!(err, ValidationError::DanglingSkip { .. }));
    }

    #[test]
    fn empty_register_use_is_rejected() {
        let mut p = Program::new("bad");
        p.push(Instruction::HdC { reg: RegId(0) });
        let err = validate_program(&p).unwrap_err();
        assert!(matches!(err, ValidationError::EmptyRegisterUse { .. }));

        let mut p = Program::new("bad-store");
        p.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(0),
        });
        assert!(matches!(
            validate_program(&p).unwrap_err(),
            ValidationError::EmptyRegisterUse { .. }
        ));
    }

    #[test]
    fn register_overwrite_is_rejected() {
        let mut p = Program::new("bad");
        p.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        p.push(Instruction::Ld {
            mem: MemAddr(1),
            reg: RegId(0),
        });
        let err = validate_program(&p).unwrap_err();
        assert!(matches!(err, ValidationError::RegisterOverwrite { .. }));
    }

    #[test]
    fn double_load_of_same_qubit_is_rejected() {
        let mut p = Program::new("bad");
        p.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        p.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(1),
        });
        let err = validate_program(&p).unwrap_err();
        assert!(matches!(err, ValidationError::DoubleLoad { .. }));
    }

    #[test]
    fn measurement_frees_the_slot_for_reload() {
        let mut p = Program::new("ok");
        p.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        p.push(Instruction::MzC {
            reg: RegId(0),
            out: ClassicalId(0),
        });
        p.push(Instruction::Ld {
            mem: MemAddr(1),
            reg: RegId(0),
        });
        p.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(1),
        });
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn in_memory_instructions_need_no_register_state() {
        let mut p = Program::new("ok");
        p.push(Instruction::HdM { mem: MemAddr(0) });
        p.push(Instruction::Cx {
            control: MemAddr(0),
            target: MemAddr(1),
        });
        p.push(Instruction::MzM {
            mem: MemAddr(1),
            out: ClassicalId(0),
        });
        let report = validate_program(&p).unwrap();
        assert_eq!(report.memory_used.len(), 2);
        assert_eq!(report.peak_register_pressure, 0);
    }
}
