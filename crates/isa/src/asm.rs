//! A textual assembly format for LSQCA programs.
//!
//! The syntax follows Table I: one instruction per line, mnemonic followed by
//! whitespace-separated operands. Operands are written with a one-letter prefix
//! identifying their space: `m<N>` for memory addresses, `c<N>` for register
//! slots, `v<N>` for classical values. Lines starting with `;` or `#` are
//! comments; blank lines are ignored.
//!
//! ```
//! use lsqca_isa::asm::{format_program, parse_program};
//!
//! let source = "\n; a tiny program\nLD m0 c0\nHD.C c0\nST c0 m0\n";
//! let program = parse_program("tiny", source).unwrap();
//! assert_eq!(program.len(), 3);
//! let text = format_program(&program);
//! assert!(text.contains("HD.C c0"));
//! // Round trip: parsing the formatted text yields the same program.
//! assert_eq!(parse_program("tiny", &text).unwrap(), program);
//! ```

use crate::instruction::Instruction;
use crate::operand::{ClassicalId, MemAddr, RegId};
use crate::program::Program;
use std::error::Error;
use std::fmt;

/// An error produced while parsing LSQCA assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Formats a program in the assembly syntax (identical to `Program`'s `Display`).
pub fn format_program(program: &Program) -> String {
    program.to_string()
}

/// Parses assembly text into a [`Program`] named `name`.
///
/// # Errors
///
/// Returns a [`ParseError`] identifying the first malformed line: unknown
/// mnemonic, wrong operand count, or an operand with the wrong prefix for its
/// position.
pub fn parse_program(name: &str, source: &str) -> Result<Program, ParseError> {
    let mut program = Program::new(name);
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
            continue;
        }
        let instruction = parse_line(line).map_err(|message| ParseError {
            line: line_no,
            message,
        })?;
        program.push(instruction);
    }
    Ok(program)
}

fn parse_line(line: &str) -> Result<Instruction, String> {
    let mut parts = line.split_whitespace();
    let mnemonic = parts.next().ok_or_else(|| "empty line".to_string())?;
    // Operands live inline on the stack (no instruction takes more than
    // three); the count keeps tallying past the cap so operand-count errors
    // still report what was actually found.
    let mut operands = [""; 3];
    let mut found = 0usize;
    for part in parts {
        if found < operands.len() {
            operands[found] = part;
        }
        found += 1;
    }
    let expect = |n: usize| -> Result<(), String> {
        if found == n {
            Ok(())
        } else {
            Err(format!("{mnemonic} expects {n} operand(s), found {found}"))
        }
    };

    // The canonical spelling is uppercase (what `format_program` emits);
    // parsing stays case-insensitive, but only a lowercase source line pays
    // for the uppercased copy.
    let uppercased;
    let canonical = if mnemonic.bytes().any(|b| b.is_ascii_lowercase()) {
        uppercased = mnemonic.to_ascii_uppercase();
        uppercased.as_str()
    } else {
        mnemonic
    };
    let instr = match canonical {
        "LD" => {
            expect(2)?;
            Instruction::Ld {
                mem: parse_mem(operands[0])?,
                reg: parse_reg(operands[1])?,
            }
        }
        "ST" => {
            expect(2)?;
            Instruction::St {
                reg: parse_reg(operands[0])?,
                mem: parse_mem(operands[1])?,
            }
        }
        "PZ.C" => {
            expect(1)?;
            Instruction::PzC {
                reg: parse_reg(operands[0])?,
            }
        }
        "PP.C" => {
            expect(1)?;
            Instruction::PpC {
                reg: parse_reg(operands[0])?,
            }
        }
        "PM" => {
            expect(1)?;
            Instruction::Pm {
                reg: parse_reg(operands[0])?,
            }
        }
        "HD.C" => {
            expect(1)?;
            Instruction::HdC {
                reg: parse_reg(operands[0])?,
            }
        }
        "PH.C" => {
            expect(1)?;
            Instruction::PhC {
                reg: parse_reg(operands[0])?,
            }
        }
        "MX.C" => {
            expect(2)?;
            Instruction::MxC {
                reg: parse_reg(operands[0])?,
                out: parse_classical(operands[1])?,
            }
        }
        "MZ.C" => {
            expect(2)?;
            Instruction::MzC {
                reg: parse_reg(operands[0])?,
                out: parse_classical(operands[1])?,
            }
        }
        "MXX.C" => {
            expect(3)?;
            Instruction::MxxC {
                reg1: parse_reg(operands[0])?,
                reg2: parse_reg(operands[1])?,
                out: parse_classical(operands[2])?,
            }
        }
        "MZZ.C" => {
            expect(3)?;
            Instruction::MzzC {
                reg1: parse_reg(operands[0])?,
                reg2: parse_reg(operands[1])?,
                out: parse_classical(operands[2])?,
            }
        }
        "SK" => {
            expect(1)?;
            Instruction::Sk {
                cond: parse_classical(operands[0])?,
            }
        }
        "PZ.M" => {
            expect(1)?;
            Instruction::PzM {
                mem: parse_mem(operands[0])?,
            }
        }
        "PP.M" => {
            expect(1)?;
            Instruction::PpM {
                mem: parse_mem(operands[0])?,
            }
        }
        "HD.M" => {
            expect(1)?;
            Instruction::HdM {
                mem: parse_mem(operands[0])?,
            }
        }
        "PH.M" => {
            expect(1)?;
            Instruction::PhM {
                mem: parse_mem(operands[0])?,
            }
        }
        "MX.M" => {
            expect(2)?;
            Instruction::MxM {
                mem: parse_mem(operands[0])?,
                out: parse_classical(operands[1])?,
            }
        }
        "MZ.M" => {
            expect(2)?;
            Instruction::MzM {
                mem: parse_mem(operands[0])?,
                out: parse_classical(operands[1])?,
            }
        }
        "MXX.M" => {
            expect(3)?;
            Instruction::MxxM {
                reg: parse_reg(operands[0])?,
                mem: parse_mem(operands[1])?,
                out: parse_classical(operands[2])?,
            }
        }
        "MZZ.M" => {
            expect(3)?;
            Instruction::MzzM {
                reg: parse_reg(operands[0])?,
                mem: parse_mem(operands[1])?,
                out: parse_classical(operands[2])?,
            }
        }
        "CX" => {
            expect(2)?;
            Instruction::Cx {
                control: parse_mem(operands[0])?,
                target: parse_mem(operands[1])?,
            }
        }
        other => return Err(format!("unknown mnemonic `{other}`")),
    };
    Ok(instr)
}

fn parse_index(token: &str, prefix: char, space: &str) -> Result<u32, String> {
    let mut chars = token.chars();
    match chars.next() {
        Some(c) if c.eq_ignore_ascii_case(&prefix) => {}
        _ => {
            return Err(format!(
                "expected {space} operand like `{prefix}3`, found `{token}`"
            ))
        }
    }
    chars
        .as_str()
        .parse::<u32>()
        .map_err(|_| format!("invalid {space} index in `{token}`"))
}

fn parse_mem(token: &str) -> Result<MemAddr, String> {
    parse_index(token, 'm', "memory").map(MemAddr)
}

fn parse_reg(token: &str) -> Result<RegId, String> {
    parse_index(token, 'c', "register").map(RegId)
}

fn parse_classical(token: &str) -> Result<ClassicalId, String> {
    parse_index(token, 'v', "classical").map(ClassicalId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::example_instructions;

    #[test]
    fn every_instruction_round_trips_through_text() {
        let mut program = Program::new("all");
        program.extend(example_instructions());
        let text = format_program(&program);
        let parsed = parse_program("all", &text).unwrap();
        assert_eq!(parsed, program);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "; header\n\n# another comment\nPZ.C c0\n";
        let p = parse_program("p", src).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unknown_mnemonic_is_rejected_with_line_number() {
        let err = parse_program("p", "PZ.C c0\nFROB c1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn wrong_operand_count_is_rejected() {
        let err = parse_program("p", "LD m0\n").unwrap_err();
        assert!(err.message.contains("expects 2"));
    }

    #[test]
    fn wrong_operand_space_is_rejected() {
        let err = parse_program("p", "LD c0 m0\n").unwrap_err();
        assert!(err.message.contains("memory operand"));
        let err = parse_program("p", "SK m0\n").unwrap_err();
        assert!(err.message.contains("classical"));
    }

    #[test]
    fn invalid_index_is_rejected() {
        let err = parse_program("p", "PZ.C cX\n").unwrap_err();
        assert!(err.message.contains("invalid register index"));
    }

    #[test]
    fn mnemonics_are_case_insensitive_but_canonicalized() {
        let p = parse_program("p", "ld m1 c0\nhd.c c0\n").unwrap();
        assert_eq!(p.instructions()[0].mnemonic(), "LD");
        assert_eq!(p.instructions()[1].mnemonic(), "HD.C");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::instruction::Instruction;
    use proptest::prelude::*;

    fn arbitrary_instruction() -> impl Strategy<Value = Instruction> {
        let mem = (0u32..10_000).prop_map(MemAddr);
        let reg = (0u32..64).prop_map(RegId);
        let val = (0u32..10_000).prop_map(ClassicalId);
        prop_oneof![
            (mem.clone(), reg.clone()).prop_map(|(mem, reg)| Instruction::Ld { mem, reg }),
            (reg.clone(), mem.clone()).prop_map(|(reg, mem)| Instruction::St { reg, mem }),
            reg.clone().prop_map(|reg| Instruction::PzC { reg }),
            reg.clone().prop_map(|reg| Instruction::Pm { reg }),
            reg.clone().prop_map(|reg| Instruction::HdC { reg }),
            (reg.clone(), val.clone()).prop_map(|(reg, out)| Instruction::MxC { reg, out }),
            (reg.clone(), reg.clone(), val.clone())
                .prop_map(|(reg1, reg2, out)| Instruction::MzzC { reg1, reg2, out }),
            val.clone().prop_map(|cond| Instruction::Sk { cond }),
            mem.clone().prop_map(|mem| Instruction::HdM { mem }),
            (reg, mem.clone(), val).prop_map(|(reg, mem, out)| Instruction::MzzM { reg, mem, out }),
            (mem.clone(), mem).prop_map(|(control, target)| Instruction::Cx { control, target }),
        ]
    }

    proptest! {
        /// Formatting then parsing any program reproduces it exactly.
        #[test]
        fn format_parse_round_trip(instrs in proptest::collection::vec(arbitrary_instruction(), 0..100)) {
            let mut program = Program::new("prop");
            program.extend(instrs);
            let text = format_program(&program);
            let parsed = parse_program("prop", &text).unwrap();
            prop_assert_eq!(parsed, program);
        }
    }
}
