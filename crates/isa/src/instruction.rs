//! The LSQCA instructions (Table I).

use crate::operand::{ClassicalId, MemAddr, Operands, RegId};
use std::fmt;

/// The instruction categories of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstructionKind {
    /// `LD` / `ST` data movement between SAM and CR.
    Memory,
    /// State preparations executed in the CR.
    Preparation,
    /// Unitary gates executed in the CR.
    Unitary,
    /// Measurements executed in the CR.
    Measurement,
    /// Classical control flow.
    Control,
    /// State preparations executed in place inside SAM.
    InMemoryPreparation,
    /// Unitary gates executed in place inside SAM.
    InMemoryUnitary,
    /// Measurements executed in place inside SAM.
    InMemoryMeasurement,
    /// Locally optimized composite unitaries (the `CX` instruction).
    OptimizedUnitary,
}

impl fmt::Display for InstructionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionKind::Memory => "memory",
            InstructionKind::Preparation => "preparation",
            InstructionKind::Unitary => "unitary",
            InstructionKind::Measurement => "measurement",
            InstructionKind::Control => "control",
            InstructionKind::InMemoryPreparation => "in-memory preparation",
            InstructionKind::InMemoryUnitary => "in-memory unitary",
            InstructionKind::InMemoryMeasurement => "in-memory measurement",
            InstructionKind::OptimizedUnitary => "optimized unitary",
        };
        f.write_str(s)
    }
}

/// The location of a logical-qubit operand: a CR register slot or a SAM address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandLocation {
    /// Operand lives in the computational register.
    Register(RegId),
    /// Operand lives in scan-access memory.
    Memory(MemAddr),
}

impl Default for OperandLocation {
    fn default() -> Self {
        OperandLocation::Register(RegId(0))
    }
}

impl fmt::Display for OperandLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperandLocation::Register(r) => write!(f, "{r}"),
            OperandLocation::Memory(m) => write!(f, "{m}"),
        }
    }
}

/// One LSQCA instruction (Table I of the paper).
///
/// Variants ending in `C` act on CR register slots, variants ending in `M` act on
/// SAM addresses in place, and `Cx` is the locally-optimized CNOT whose operand
/// placement is decided at runtime by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// `LD M C` — load a logical qubit from SAM into a CR register slot.
    Ld {
        /// SAM address to load from.
        mem: MemAddr,
        /// CR slot to load into.
        reg: RegId,
    },
    /// `ST C M` — store a logical qubit from a CR slot back into SAM.
    St {
        /// CR slot to store from.
        reg: RegId,
        /// SAM address to store to.
        mem: MemAddr,
    },
    /// `PZ.C C` — initialize a CR slot to |0⟩.
    PzC {
        /// Target CR slot.
        reg: RegId,
    },
    /// `PP.C C` — initialize a CR slot to |+⟩.
    PpC {
        /// Target CR slot.
        reg: RegId,
    },
    /// `PM C` — move a distilled magic state from the MSF buffer into a CR slot.
    Pm {
        /// Target CR slot.
        reg: RegId,
    },
    /// `HD.C C` — Hadamard gate on a CR slot (3 beats).
    HdC {
        /// Target CR slot.
        reg: RegId,
    },
    /// `PH.C C` — phase (S) gate on a CR slot (2 beats).
    PhC {
        /// Target CR slot.
        reg: RegId,
    },
    /// `MX.C C V` — destructive Pauli-X measurement of a CR slot.
    MxC {
        /// Measured CR slot.
        reg: RegId,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `MZ.C C V` — destructive Pauli-Z measurement of a CR slot.
    MzC {
        /// Measured CR slot.
        reg: RegId,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `MXX.C C1 C2 V` — joint Pauli-XX measurement of two CR slots (1 beat).
    MxxC {
        /// First CR slot.
        reg1: RegId,
        /// Second CR slot.
        reg2: RegId,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `MZZ.C C1 C2 V` — joint Pauli-ZZ measurement of two CR slots (1 beat).
    MzzC {
        /// First CR slot.
        reg1: RegId,
        /// Second CR slot.
        reg2: RegId,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `SK V` — skip the next instruction if the classical value is zero.
    Sk {
        /// Classical value controlling the skip.
        cond: ClassicalId,
    },
    /// `PZ.M M` — initialize a SAM qubit to |0⟩ in place.
    PzM {
        /// Target SAM address.
        mem: MemAddr,
    },
    /// `PP.M M` — initialize a SAM qubit to |+⟩ in place.
    PpM {
        /// Target SAM address.
        mem: MemAddr,
    },
    /// `HD.M M` — in-memory Hadamard (scan cell/line provides the ancilla).
    HdM {
        /// Target SAM address.
        mem: MemAddr,
    },
    /// `PH.M M` — in-memory phase gate.
    PhM {
        /// Target SAM address.
        mem: MemAddr,
    },
    /// `MX.M M V` — in-memory destructive Pauli-X measurement.
    MxM {
        /// Measured SAM address.
        mem: MemAddr,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `MZ.M M V` — in-memory destructive Pauli-Z measurement.
    MzM {
        /// Measured SAM address.
        mem: MemAddr,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `MXX.M C M V` — joint Pauli-XX measurement between a CR slot and a SAM qubit.
    MxxM {
        /// CR slot operand.
        reg: RegId,
        /// SAM address operand.
        mem: MemAddr,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `MZZ.M C M V` — joint Pauli-ZZ measurement between a CR slot and a SAM qubit.
    MzzM {
        /// CR slot operand.
        reg: RegId,
        /// SAM address operand.
        mem: MemAddr,
        /// Classical destination for the outcome.
        out: ClassicalId,
    },
    /// `CX M1 M2` — locally optimized CNOT between two SAM qubits.
    Cx {
        /// Control qubit address.
        control: MemAddr,
        /// Target qubit address.
        target: MemAddr,
    },
}

impl Instruction {
    /// The Table I category of this instruction.
    pub fn kind(&self) -> InstructionKind {
        use Instruction::*;
        match self {
            Ld { .. } | St { .. } => InstructionKind::Memory,
            PzC { .. } | PpC { .. } | Pm { .. } => InstructionKind::Preparation,
            HdC { .. } | PhC { .. } => InstructionKind::Unitary,
            MxC { .. } | MzC { .. } | MxxC { .. } | MzzC { .. } => InstructionKind::Measurement,
            Sk { .. } => InstructionKind::Control,
            PzM { .. } | PpM { .. } => InstructionKind::InMemoryPreparation,
            HdM { .. } | PhM { .. } => InstructionKind::InMemoryUnitary,
            MxM { .. } | MzM { .. } | MxxM { .. } | MzzM { .. } => {
                InstructionKind::InMemoryMeasurement
            }
            Cx { .. } => InstructionKind::OptimizedUnitary,
        }
    }

    /// The assembler mnemonic of this instruction (Table I syntax column).
    pub fn mnemonic(&self) -> &'static str {
        use Instruction::*;
        match self {
            Ld { .. } => "LD",
            St { .. } => "ST",
            PzC { .. } => "PZ.C",
            PpC { .. } => "PP.C",
            Pm { .. } => "PM",
            HdC { .. } => "HD.C",
            PhC { .. } => "PH.C",
            MxC { .. } => "MX.C",
            MzC { .. } => "MZ.C",
            MxxC { .. } => "MXX.C",
            MzzC { .. } => "MZZ.C",
            Sk { .. } => "SK",
            PzM { .. } => "PZ.M",
            PpM { .. } => "PP.M",
            HdM { .. } => "HD.M",
            PhM { .. } => "PH.M",
            MxM { .. } => "MX.M",
            MzM { .. } => "MZ.M",
            MxxM { .. } => "MXX.M",
            MzzM { .. } => "MZZ.M",
            Cx { .. } => "CX",
        }
    }

    /// All logical-qubit operands (registers and memory addresses) of this
    /// instruction, in syntactic order. Allocation-free: the list is returned
    /// inline (see [`Operands`]).
    pub fn qubit_operands(&self) -> Operands<OperandLocation> {
        use Instruction::*;
        use OperandLocation::{Memory, Register};
        match *self {
            Ld { mem, reg } => Operands::two(Memory(mem), Register(reg)),
            St { reg, mem } => Operands::two(Register(reg), Memory(mem)),
            PzC { reg } | PpC { reg } | Pm { reg } | HdC { reg } | PhC { reg } => {
                Operands::one(Register(reg))
            }
            MxC { reg, .. } | MzC { reg, .. } => Operands::one(Register(reg)),
            MxxC { reg1, reg2, .. } | MzzC { reg1, reg2, .. } => {
                Operands::two(Register(reg1), Register(reg2))
            }
            Sk { .. } => Operands::none(),
            PzM { mem } | PpM { mem } | HdM { mem } | PhM { mem } => Operands::one(Memory(mem)),
            MxM { mem, .. } | MzM { mem, .. } => Operands::one(Memory(mem)),
            MxxM { reg, mem, .. } | MzzM { reg, mem, .. } => {
                Operands::two(Register(reg), Memory(mem))
            }
            Cx { control, target } => Operands::two(Memory(control), Memory(target)),
        }
    }

    /// The SAM addresses referenced by this instruction, in syntactic order.
    /// Allocation-free: one direct match per variant, returned inline.
    pub fn memory_operands(&self) -> Operands<MemAddr> {
        use Instruction::*;
        match *self {
            Ld { mem, .. } | St { mem, .. } => Operands::one(mem),
            PzM { mem } | PpM { mem } | HdM { mem } | PhM { mem } => Operands::one(mem),
            MxM { mem, .. } | MzM { mem, .. } => Operands::one(mem),
            MxxM { mem, .. } | MzzM { mem, .. } => Operands::one(mem),
            Cx { control, target } => Operands::two(control, target),
            PzC { .. }
            | PpC { .. }
            | Pm { .. }
            | HdC { .. }
            | PhC { .. }
            | MxC { .. }
            | MzC { .. }
            | MxxC { .. }
            | MzzC { .. }
            | Sk { .. } => Operands::none(),
        }
    }

    /// The CR slots referenced by this instruction, in syntactic order.
    /// Allocation-free: one direct match per variant, returned inline.
    pub fn register_operands(&self) -> Operands<RegId> {
        use Instruction::*;
        match *self {
            Ld { reg, .. } | St { reg, .. } => Operands::one(reg),
            PzC { reg } | PpC { reg } | Pm { reg } | HdC { reg } | PhC { reg } => {
                Operands::one(reg)
            }
            MxC { reg, .. } | MzC { reg, .. } => Operands::one(reg),
            MxxC { reg1, reg2, .. } | MzzC { reg1, reg2, .. } => Operands::two(reg1, reg2),
            MxxM { reg, .. } | MzzM { reg, .. } => Operands::one(reg),
            Sk { .. }
            | PzM { .. }
            | PpM { .. }
            | HdM { .. }
            | PhM { .. }
            | MxM { .. }
            | MzM { .. }
            | Cx { .. } => Operands::none(),
        }
    }

    /// The classical value written by this instruction, if any.
    pub fn classical_output(&self) -> Option<ClassicalId> {
        use Instruction::*;
        match *self {
            MxC { out, .. }
            | MzC { out, .. }
            | MxxC { out, .. }
            | MzzC { out, .. }
            | MxM { out, .. }
            | MzM { out, .. }
            | MxxM { out, .. }
            | MzzM { out, .. } => Some(out),
            _ => None,
        }
    }

    /// The classical value read by this instruction, if any (only `SK`).
    pub fn classical_input(&self) -> Option<ClassicalId> {
        match *self {
            Instruction::Sk { cond } => Some(cond),
            _ => None,
        }
    }

    /// True if this instruction consumes a distilled magic state.
    pub fn consumes_magic_state(&self) -> bool {
        matches!(self, Instruction::Pm { .. })
    }

    /// True if the instruction operates on SAM contents in place (the `*.M`
    /// variants and the optimized `CX`).
    pub fn is_in_memory(&self) -> bool {
        matches!(
            self.kind(),
            InstructionKind::InMemoryPreparation
                | InstructionKind::InMemoryUnitary
                | InstructionKind::InMemoryMeasurement
                | InstructionKind::OptimizedUnitary
        )
    }

    /// True if the instruction references at least one SAM address.
    pub fn touches_memory(&self) -> bool {
        !self.memory_operands().is_empty()
    }

    /// True if this instruction may take a data-dependent, variable number of
    /// beats (the "variable" rows of Table I).
    pub fn has_variable_latency(&self) -> bool {
        use Instruction::*;
        matches!(
            self,
            Ld { .. }
                | St { .. }
                | Pm { .. }
                | Sk { .. }
                | HdM { .. }
                | PhM { .. }
                | MxxM { .. }
                | MzzM { .. }
                | Cx { .. }
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Ld { mem, reg } => write!(f, "LD {mem} {reg}"),
            St { reg, mem } => write!(f, "ST {reg} {mem}"),
            PzC { reg } => write!(f, "PZ.C {reg}"),
            PpC { reg } => write!(f, "PP.C {reg}"),
            Pm { reg } => write!(f, "PM {reg}"),
            HdC { reg } => write!(f, "HD.C {reg}"),
            PhC { reg } => write!(f, "PH.C {reg}"),
            MxC { reg, out } => write!(f, "MX.C {reg} {out}"),
            MzC { reg, out } => write!(f, "MZ.C {reg} {out}"),
            MxxC { reg1, reg2, out } => write!(f, "MXX.C {reg1} {reg2} {out}"),
            MzzC { reg1, reg2, out } => write!(f, "MZZ.C {reg1} {reg2} {out}"),
            Sk { cond } => write!(f, "SK {cond}"),
            PzM { mem } => write!(f, "PZ.M {mem}"),
            PpM { mem } => write!(f, "PP.M {mem}"),
            HdM { mem } => write!(f, "HD.M {mem}"),
            PhM { mem } => write!(f, "PH.M {mem}"),
            MxM { mem, out } => write!(f, "MX.M {mem} {out}"),
            MzM { mem, out } => write!(f, "MZ.M {mem} {out}"),
            MxxM { reg, mem, out } => write!(f, "MXX.M {reg} {mem} {out}"),
            MzzM { reg, mem, out } => write!(f, "MZZ.M {reg} {mem} {out}"),
            Cx { control, target } => write!(f, "CX {control} {target}"),
        }
    }
}

/// Enumerates one instance of every instruction variant, useful for exhaustive
/// tests and for printing the ISA reference table.
pub fn example_instructions() -> Vec<Instruction> {
    use Instruction::*;
    vec![
        Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        },
        St {
            reg: RegId(0),
            mem: MemAddr(0),
        },
        PzC { reg: RegId(0) },
        PpC { reg: RegId(0) },
        Pm { reg: RegId(0) },
        HdC { reg: RegId(0) },
        PhC { reg: RegId(0) },
        MxC {
            reg: RegId(0),
            out: ClassicalId(0),
        },
        MzC {
            reg: RegId(0),
            out: ClassicalId(0),
        },
        MxxC {
            reg1: RegId(0),
            reg2: RegId(1),
            out: ClassicalId(0),
        },
        MzzC {
            reg1: RegId(0),
            reg2: RegId(1),
            out: ClassicalId(0),
        },
        Sk {
            cond: ClassicalId(0),
        },
        PzM { mem: MemAddr(0) },
        PpM { mem: MemAddr(0) },
        HdM { mem: MemAddr(0) },
        PhM { mem: MemAddr(0) },
        MxM {
            mem: MemAddr(0),
            out: ClassicalId(0),
        },
        MzM {
            mem: MemAddr(0),
            out: ClassicalId(0),
        },
        MxxM {
            reg: RegId(0),
            mem: MemAddr(0),
            out: ClassicalId(0),
        },
        MzzM {
            reg: RegId(0),
            mem: MemAddr(0),
            out: ClassicalId(0),
        },
        Cx {
            control: MemAddr(0),
            target: MemAddr(1),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_is_enumerated_exactly_once() {
        let all = example_instructions();
        assert_eq!(all.len(), 21);
        let mut mnemonics: Vec<_> = all.iter().map(|i| i.mnemonic()).collect();
        mnemonics.sort_unstable();
        mnemonics.dedup();
        assert_eq!(mnemonics.len(), 21, "mnemonics must be unique");
    }

    #[test]
    fn kind_classification_matches_table_one() {
        use Instruction::*;
        assert_eq!(
            Ld {
                mem: MemAddr(0),
                reg: RegId(0)
            }
            .kind(),
            InstructionKind::Memory
        );
        assert_eq!(Pm { reg: RegId(0) }.kind(), InstructionKind::Preparation);
        assert_eq!(HdC { reg: RegId(0) }.kind(), InstructionKind::Unitary);
        assert_eq!(
            MzzC {
                reg1: RegId(0),
                reg2: RegId(1),
                out: ClassicalId(0)
            }
            .kind(),
            InstructionKind::Measurement
        );
        assert_eq!(
            Sk {
                cond: ClassicalId(0)
            }
            .kind(),
            InstructionKind::Control
        );
        assert_eq!(
            PzM { mem: MemAddr(0) }.kind(),
            InstructionKind::InMemoryPreparation
        );
        assert_eq!(
            HdM { mem: MemAddr(0) }.kind(),
            InstructionKind::InMemoryUnitary
        );
        assert_eq!(
            MzzM {
                reg: RegId(0),
                mem: MemAddr(0),
                out: ClassicalId(0)
            }
            .kind(),
            InstructionKind::InMemoryMeasurement
        );
        assert_eq!(
            Cx {
                control: MemAddr(0),
                target: MemAddr(1)
            }
            .kind(),
            InstructionKind::OptimizedUnitary
        );
    }

    #[test]
    fn operand_extraction() {
        let ld = Instruction::Ld {
            mem: MemAddr(3),
            reg: RegId(1),
        };
        assert_eq!(ld.memory_operands(), vec![MemAddr(3)]);
        assert_eq!(ld.register_operands(), vec![RegId(1)]);
        assert!(ld.touches_memory());
        assert!(!ld.is_in_memory());

        let mzzm = Instruction::MzzM {
            reg: RegId(0),
            mem: MemAddr(7),
            out: ClassicalId(2),
        };
        assert_eq!(mzzm.classical_output(), Some(ClassicalId(2)));
        assert_eq!(mzzm.classical_input(), None);
        assert!(mzzm.is_in_memory());

        let sk = Instruction::Sk {
            cond: ClassicalId(4),
        };
        assert_eq!(sk.classical_input(), Some(ClassicalId(4)));
        assert_eq!(sk.classical_output(), None);
        assert!(sk.qubit_operands().is_empty());
        assert!(!sk.touches_memory());
    }

    #[test]
    fn variable_latency_matches_table_one() {
        use Instruction::*;
        assert!(Ld {
            mem: MemAddr(0),
            reg: RegId(0)
        }
        .has_variable_latency());
        assert!(St {
            reg: RegId(0),
            mem: MemAddr(0)
        }
        .has_variable_latency());
        assert!(Pm { reg: RegId(0) }.has_variable_latency());
        assert!(HdM { mem: MemAddr(0) }.has_variable_latency());
        assert!(Cx {
            control: MemAddr(0),
            target: MemAddr(1)
        }
        .has_variable_latency());
        assert!(!HdC { reg: RegId(0) }.has_variable_latency());
        assert!(!PzC { reg: RegId(0) }.has_variable_latency());
        assert!(!MzzC {
            reg1: RegId(0),
            reg2: RegId(1),
            out: ClassicalId(0)
        }
        .has_variable_latency());
    }

    #[test]
    fn magic_state_consumption() {
        assert!(Instruction::Pm { reg: RegId(0) }.consumes_magic_state());
        for instr in example_instructions() {
            if !matches!(instr, Instruction::Pm { .. }) {
                assert!(!instr.consumes_magic_state());
            }
        }
    }

    #[test]
    fn operands_fit_the_inline_capacity_for_every_variant() {
        for instr in example_instructions() {
            assert!(instr.qubit_operands().len() <= crate::MAX_OPERANDS);
            assert!(instr.memory_operands().len() <= crate::MAX_OPERANDS);
            assert!(instr.register_operands().len() <= crate::MAX_OPERANDS);
        }
    }

    #[test]
    fn display_round_trips_mnemonic() {
        for instr in example_instructions() {
            let text = instr.to_string();
            assert!(
                text.starts_with(instr.mnemonic()),
                "{text} should start with {}",
                instr.mnemonic()
            );
        }
        assert_eq!(
            Instruction::MzzM {
                reg: RegId(1),
                mem: MemAddr(5),
                out: ClassicalId(3)
            }
            .to_string(),
            "MZZ.M c1 m5 v3"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A strategy covering every one of the 21 instruction variants.
    fn any_instruction() -> impl Strategy<Value = Instruction> {
        use Instruction::*;
        (
            0u32..21,
            0u32..10_000,
            0u32..10_000,
            0u32..64,
            0u32..64,
            0u32..10_000,
        )
            .prop_map(|(variant, m1, m2, r1, r2, v)| {
                let (mem, mem2) = (MemAddr(m1), MemAddr(m2));
                let (reg, reg2) = (RegId(r1), RegId(r2));
                let out = ClassicalId(v);
                match variant {
                    0 => Ld { mem, reg },
                    1 => St { reg, mem },
                    2 => PzC { reg },
                    3 => PpC { reg },
                    4 => Pm { reg },
                    5 => HdC { reg },
                    6 => PhC { reg },
                    7 => MxC { reg, out },
                    8 => MzC { reg, out },
                    9 => MxxC {
                        reg1: reg,
                        reg2,
                        out,
                    },
                    10 => MzzC {
                        reg1: reg,
                        reg2,
                        out,
                    },
                    11 => Sk { cond: out },
                    12 => PzM { mem },
                    13 => PpM { mem },
                    14 => HdM { mem },
                    15 => PhM { mem },
                    16 => MxM { mem, out },
                    17 => MzM { mem, out },
                    18 => MxxM { reg, mem, out },
                    19 => MzzM { reg, mem, out },
                    _ => Cx {
                        control: mem,
                        target: mem2,
                    },
                }
            })
    }

    proptest! {
        /// The inline `Operands` extraction is observationally identical to the
        /// seed's `Vec` semantics: filtering `qubit_operands` by location gives
        /// exactly `memory_operands` / `register_operands`, in syntactic order.
        #[test]
        fn operand_extraction_matches_the_vec_semantics(instr in any_instruction()) {
            let qubits: Vec<OperandLocation> = instr.qubit_operands().into_iter().collect();
            let legacy_mems: Vec<MemAddr> = qubits
                .iter()
                .filter_map(|op| match op {
                    OperandLocation::Memory(m) => Some(*m),
                    OperandLocation::Register(_) => None,
                })
                .collect();
            let legacy_regs: Vec<RegId> = qubits
                .iter()
                .filter_map(|op| match op {
                    OperandLocation::Register(r) => Some(*r),
                    OperandLocation::Memory(_) => None,
                })
                .collect();
            prop_assert_eq!(instr.memory_operands(), legacy_mems);
            prop_assert_eq!(instr.register_operands(), legacy_regs);
            prop_assert_eq!(instr.touches_memory(), !instr.memory_operands().is_empty());
        }

        /// `Operands` iteration agrees with its slice view, and the by-value
        /// iterator is exact-size.
        #[test]
        fn operands_iteration_matches_the_slice_view(instr in any_instruction()) {
            let mems = instr.memory_operands();
            let collected: Vec<MemAddr> = mems.into_iter().collect();
            prop_assert_eq!(collected.as_slice(), mems.as_slice());
            prop_assert_eq!(mems.into_iter().len(), mems.len());
            let regs = instr.register_operands();
            let collected: Vec<RegId> = regs.into_iter().collect();
            prop_assert_eq!(collected.as_slice(), regs.as_slice());
        }
    }
}
