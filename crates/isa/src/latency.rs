//! Static latency information for the instruction set (Table I, latency column).
//!
//! Instructions either have a *fixed* latency in code beats or a *variable*
//! latency decided at runtime by the memory controller (loads, stores, magic-state
//! fetches, in-memory gates whose seek distance depends on the SAM layout). The
//! table here is the architectural contract; the simulator resolves the variable
//! entries against a concrete SAM model.

use crate::instruction::Instruction;
use std::fmt;

/// Code-beat latency of one instruction as specified by the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionLatency {
    /// The instruction always takes exactly this many code beats.
    Fixed(u64),
    /// The latency depends on the memory layout / runtime state.
    Variable,
}

impl InstructionLatency {
    /// The fixed beat count, if this latency is fixed.
    pub fn fixed_beats(self) -> Option<u64> {
        match self {
            InstructionLatency::Fixed(beats) => Some(beats),
            InstructionLatency::Variable => None,
        }
    }

    /// True if the latency is resolved at runtime.
    pub fn is_variable(self) -> bool {
        matches!(self, InstructionLatency::Variable)
    }
}

impl fmt::Display for InstructionLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstructionLatency::Fixed(b) => write!(f, "{b} beat"),
            InstructionLatency::Variable => f.write_str("variable"),
        }
    }
}

/// The architectural latency table (Table I).
///
/// ```
/// use lsqca_isa::{Instruction, LatencyTable, RegId, InstructionLatency};
/// let table = LatencyTable::paper();
/// assert_eq!(
///     table.latency(&Instruction::HdC { reg: RegId(0) }),
///     InstructionLatency::Fixed(3)
/// );
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    _private: (),
}

impl LatencyTable {
    /// The latency table as published in the paper.
    pub const fn paper() -> Self {
        LatencyTable { _private: () }
    }

    /// The ISA latency of `instruction`.
    pub fn latency(&self, instruction: &Instruction) -> InstructionLatency {
        use Instruction::*;
        use InstructionLatency::{Fixed, Variable};
        match instruction {
            Ld { .. } | St { .. } => Variable,
            PzC { .. } | PpC { .. } => Fixed(0),
            Pm { .. } => Variable,
            HdC { .. } => Fixed(3),
            PhC { .. } => Fixed(2),
            MxC { .. } | MzC { .. } => Fixed(0),
            MxxC { .. } | MzzC { .. } => Fixed(1),
            Sk { .. } => Variable,
            PzM { .. } | PpM { .. } => Fixed(0),
            HdM { .. } | PhM { .. } => Variable,
            MxM { .. } | MzM { .. } => Fixed(0),
            MxxM { .. } | MzzM { .. } => Variable,
            Cx { .. } => Variable,
        }
    }

    /// True if the instruction has negligible (zero-beat) fixed latency; the
    /// paper ignores such instructions when counting commands for CPI.
    pub fn is_negligible(&self, instruction: &Instruction) -> bool {
        self.latency(instruction) == InstructionLatency::Fixed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::example_instructions;
    use crate::operand::{ClassicalId, MemAddr, RegId};

    #[test]
    fn table_one_fixed_latencies() {
        let t = LatencyTable::paper();
        assert_eq!(
            t.latency(&Instruction::PzC { reg: RegId(0) }),
            InstructionLatency::Fixed(0)
        );
        assert_eq!(
            t.latency(&Instruction::HdC { reg: RegId(0) }),
            InstructionLatency::Fixed(3)
        );
        assert_eq!(
            t.latency(&Instruction::PhC { reg: RegId(0) }),
            InstructionLatency::Fixed(2)
        );
        assert_eq!(
            t.latency(&Instruction::MzzC {
                reg1: RegId(0),
                reg2: RegId(1),
                out: ClassicalId(0)
            }),
            InstructionLatency::Fixed(1)
        );
        assert_eq!(
            t.latency(&Instruction::MxM {
                mem: MemAddr(0),
                out: ClassicalId(0)
            }),
            InstructionLatency::Fixed(0)
        );
    }

    #[test]
    fn table_one_variable_latencies() {
        let t = LatencyTable::paper();
        for instr in example_instructions() {
            assert_eq!(
                t.latency(&instr).is_variable(),
                instr.has_variable_latency(),
                "latency table and instruction metadata disagree for {instr}"
            );
        }
    }

    #[test]
    fn negligible_instructions_are_the_zero_beat_ones() {
        let t = LatencyTable::paper();
        assert!(t.is_negligible(&Instruction::PzC { reg: RegId(0) }));
        assert!(t.is_negligible(&Instruction::MzM {
            mem: MemAddr(0),
            out: ClassicalId(0)
        }));
        assert!(!t.is_negligible(&Instruction::HdC { reg: RegId(0) }));
        assert!(!t.is_negligible(&Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0)
        }));
    }

    #[test]
    fn latency_display() {
        assert_eq!(InstructionLatency::Fixed(2).to_string(), "2 beat");
        assert_eq!(InstructionLatency::Variable.to_string(), "variable");
        assert_eq!(InstructionLatency::Fixed(2).fixed_beats(), Some(2));
        assert_eq!(InstructionLatency::Variable.fixed_beats(), None);
    }
}
