//! Static latency information for the instruction set (Table I, latency column).
//!
//! Instructions either have a *fixed* latency in code beats or a *variable*
//! latency decided at runtime by the memory controller (loads, stores, magic-state
//! fetches, in-memory gates whose seek distance depends on the SAM layout). The
//! table here is the architectural contract; the simulator resolves the variable
//! entries against a concrete SAM model.

use crate::instruction::Instruction;
use crate::program::Program;
use std::fmt;

/// Code-beat latency of one instruction as specified by the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionLatency {
    /// The instruction always takes exactly this many code beats.
    Fixed(u64),
    /// The latency depends on the memory layout / runtime state.
    Variable,
}

impl InstructionLatency {
    /// The fixed beat count, if this latency is fixed.
    pub fn fixed_beats(self) -> Option<u64> {
        match self {
            InstructionLatency::Fixed(beats) => Some(beats),
            InstructionLatency::Variable => None,
        }
    }

    /// True if the latency is resolved at runtime.
    pub fn is_variable(self) -> bool {
        matches!(self, InstructionLatency::Variable)
    }
}

impl fmt::Display for InstructionLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstructionLatency::Fixed(b) => write!(f, "{b} beat"),
            InstructionLatency::Variable => f.write_str("variable"),
        }
    }
}

/// The architectural latency table (Table I).
///
/// ```
/// use lsqca_isa::{Instruction, LatencyTable, RegId, InstructionLatency};
/// let table = LatencyTable::paper();
/// assert_eq!(
///     table.latency(&Instruction::HdC { reg: RegId(0) }),
///     InstructionLatency::Fixed(3)
/// );
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LatencyTable {
    _private: (),
}

impl LatencyTable {
    /// The latency table as published in the paper.
    pub const fn paper() -> Self {
        LatencyTable { _private: () }
    }

    /// The ISA latency of `instruction`.
    pub fn latency(&self, instruction: &Instruction) -> InstructionLatency {
        use Instruction::*;
        use InstructionLatency::{Fixed, Variable};
        match instruction {
            Ld { .. } | St { .. } => Variable,
            PzC { .. } | PpC { .. } => Fixed(0),
            Pm { .. } => Variable,
            HdC { .. } => Fixed(3),
            PhC { .. } => Fixed(2),
            MxC { .. } | MzC { .. } => Fixed(0),
            MxxC { .. } | MzzC { .. } => Fixed(1),
            Sk { .. } => Variable,
            PzM { .. } | PpM { .. } => Fixed(0),
            HdM { .. } | PhM { .. } => Variable,
            MxM { .. } | MzM { .. } => Fixed(0),
            MxxM { .. } | MzzM { .. } => Variable,
            Cx { .. } => Variable,
        }
    }

    /// True if the instruction has negligible (zero-beat) fixed latency; the
    /// paper ignores such instructions when counting commands for CPI.
    pub fn is_negligible(&self, instruction: &Instruction) -> bool {
        self.latency(instruction) == InstructionLatency::Fixed(0)
    }

    /// The compact [`LatencyClass`] of `instruction`.
    pub fn classify(&self, instruction: &Instruction) -> LatencyClass {
        match self.latency(instruction) {
            InstructionLatency::Fixed(0) => LatencyClass::Negligible,
            InstructionLatency::Fixed(_) => LatencyClass::Command,
            InstructionLatency::Variable => LatencyClass::Variable,
        }
    }

    /// Precompiles the latency class of every instruction of `program` into a
    /// vector parallel to the instruction stream, so per-instruction consumers
    /// (the simulator's CPI bookkeeping, program statistics) replace the
    /// per-instruction latency match with a single array read.
    pub fn classify_program(&self, program: &Program) -> Vec<LatencyClass> {
        program.iter().map(|instr| self.classify(instr)).collect()
    }
}

/// Compact per-instruction latency classification, precompiled per program by
/// [`LatencyTable::classify_program`] so hot loops read a dense byte vector
/// instead of re-matching on the instruction variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LatencyClass {
    /// Fixed zero-beat latency; excluded from CPI command counts.
    Negligible,
    /// Fixed non-zero latency (a counted command).
    Command,
    /// Latency resolved at runtime by the memory controller (also counted).
    Variable,
}

impl LatencyClass {
    /// True for the zero-beat fixed class the paper excludes from CPI.
    #[inline]
    pub fn is_negligible(self) -> bool {
        matches!(self, LatencyClass::Negligible)
    }

    /// The stable single-byte encoding used by serialized class vectors
    /// (compiled-workload artifacts store one ASCII digit per instruction).
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes [`LatencyClass::as_u8`]; `None` for any other byte.
    #[inline]
    pub fn from_u8(byte: u8) -> Option<LatencyClass> {
        match byte {
            0 => Some(LatencyClass::Negligible),
            1 => Some(LatencyClass::Command),
            2 => Some(LatencyClass::Variable),
            _ => None,
        }
    }
}

/// Number of non-negligible (CPI-counted) commands in a precompiled class
/// vector.
///
/// This is what the dense `repr(u8)` vector buys beyond replacing the
/// per-instruction latency match with an array read: eight classes are
/// processed per machine word (the eight single-byte reads fuse into one word
/// load), which no walk over the instruction stream itself can do.
pub fn command_count(classes: &[LatencyClass]) -> usize {
    const ONES: u64 = 0x0101_0101_0101_0101;
    let mut chunks = classes.chunks_exact(8);
    let mut total = 0u64;
    for ch in chunks.by_ref() {
        let word = u64::from_ne_bytes([
            ch[0] as u8,
            ch[1] as u8,
            ch[2] as u8,
            ch[3] as u8,
            ch[4] as u8,
            ch[5] as u8,
            ch[6] as u8,
            ch[7] as u8,
        ]);
        // Class bytes are 0 (negligible), 1, or 2: fold the two value bits
        // into one non-negligible flag bit per byte, then the multiply sums
        // the eight flags into the top byte.
        total += ((word | (word >> 1)) & ONES).wrapping_mul(ONES) >> 56;
    }
    total as usize
        + chunks
            .remainder()
            .iter()
            .filter(|c| !c.is_negligible())
            .count()
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LatencyClass::Negligible => "negligible",
            LatencyClass::Command => "command",
            LatencyClass::Variable => "variable",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::example_instructions;
    use crate::operand::{ClassicalId, MemAddr, RegId};

    #[test]
    fn table_one_fixed_latencies() {
        let t = LatencyTable::paper();
        assert_eq!(
            t.latency(&Instruction::PzC { reg: RegId(0) }),
            InstructionLatency::Fixed(0)
        );
        assert_eq!(
            t.latency(&Instruction::HdC { reg: RegId(0) }),
            InstructionLatency::Fixed(3)
        );
        assert_eq!(
            t.latency(&Instruction::PhC { reg: RegId(0) }),
            InstructionLatency::Fixed(2)
        );
        assert_eq!(
            t.latency(&Instruction::MzzC {
                reg1: RegId(0),
                reg2: RegId(1),
                out: ClassicalId(0)
            }),
            InstructionLatency::Fixed(1)
        );
        assert_eq!(
            t.latency(&Instruction::MxM {
                mem: MemAddr(0),
                out: ClassicalId(0)
            }),
            InstructionLatency::Fixed(0)
        );
    }

    #[test]
    fn table_one_variable_latencies() {
        let t = LatencyTable::paper();
        for instr in example_instructions() {
            assert_eq!(
                t.latency(&instr).is_variable(),
                instr.has_variable_latency(),
                "latency table and instruction metadata disagree for {instr}"
            );
        }
    }

    #[test]
    fn negligible_instructions_are_the_zero_beat_ones() {
        let t = LatencyTable::paper();
        assert!(t.is_negligible(&Instruction::PzC { reg: RegId(0) }));
        assert!(t.is_negligible(&Instruction::MzM {
            mem: MemAddr(0),
            out: ClassicalId(0)
        }));
        assert!(!t.is_negligible(&Instruction::HdC { reg: RegId(0) }));
        assert!(!t.is_negligible(&Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0)
        }));
    }

    #[test]
    fn classes_agree_with_the_latency_table() {
        let t = LatencyTable::paper();
        for instr in example_instructions() {
            let class = t.classify(&instr);
            assert_eq!(class.is_negligible(), t.is_negligible(&instr), "{instr}");
            assert_eq!(
                class == LatencyClass::Variable,
                t.latency(&instr).is_variable(),
                "{instr}"
            );
        }
    }

    #[test]
    fn word_parallel_command_count_matches_the_naive_count() {
        use LatencyClass::*;
        // Lengths around the 8-class word boundary, including the empty vector.
        for len in [0usize, 1, 7, 8, 9, 16, 23, 1000] {
            let classes: Vec<LatencyClass> = (0..len)
                .map(|i| match i % 3 {
                    0 => Negligible,
                    1 => Command,
                    _ => Variable,
                })
                .collect();
            let naive = classes.iter().filter(|c| !c.is_negligible()).count();
            assert_eq!(command_count(&classes), naive, "len {len}");
        }
        assert_eq!(command_count(&[Negligible; 20]), 0);
        assert_eq!(command_count(&[Variable; 20]), 20);
    }

    #[test]
    fn classify_program_is_parallel_to_the_stream() {
        use crate::program::Program;
        let t = LatencyTable::paper();
        let mut program = Program::new("classes");
        for instr in example_instructions() {
            program.push(instr);
        }
        let classes = t.classify_program(&program);
        assert_eq!(classes.len(), program.len());
        for (instr, class) in program.iter().zip(&classes) {
            assert_eq!(*class, t.classify(instr));
        }
        assert_eq!(LatencyClass::Negligible.to_string(), "negligible");
        assert_eq!(LatencyClass::Command.to_string(), "command");
        assert_eq!(LatencyClass::Variable.to_string(), "variable");
    }

    #[test]
    fn class_byte_encoding_round_trips() {
        for class in [
            LatencyClass::Negligible,
            LatencyClass::Command,
            LatencyClass::Variable,
        ] {
            assert_eq!(LatencyClass::from_u8(class.as_u8()), Some(class));
        }
        assert_eq!(LatencyClass::from_u8(3), None);
        assert_eq!(LatencyClass::from_u8(255), None);
    }

    #[test]
    fn latency_display() {
        assert_eq!(InstructionLatency::Fixed(2).to_string(), "2 beat");
        assert_eq!(InstructionLatency::Variable.to_string(), "variable");
        assert_eq!(InstructionLatency::Fixed(2).fixed_beats(), Some(2));
        assert_eq!(InstructionLatency::Variable.fixed_beats(), None);
    }
}
