//! LSQCA programs: ordered instruction sequences plus summary statistics.

use crate::instruction::{Instruction, InstructionKind};
use crate::latency::LatencyTable;
use crate::operand::{ClassicalId, MemAddr, RegId};
use crate::validate::{validate_program, ValidationReport};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered sequence of LSQCA instructions with a name.
///
/// A program is the unit the compiler produces and the simulator executes. The
/// paper counts "commands" excluding negligible-latency instructions when
/// computing CPI; [`ProgramStats`] exposes both counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            instructions: Vec::new(),
        }
    }

    /// The program name (usually the benchmark it was compiled from).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// Appends every instruction from an iterator.
    pub fn extend<I: IntoIterator<Item = Instruction>>(&mut self, instructions: I) {
        self.instructions.extend(instructions);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instructions as a slice.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.iter()
    }

    /// Validates operand usage; see [`validate_program`].
    pub fn validate(&self) -> Result<ValidationReport, crate::validate::ValidationError> {
        validate_program(self)
    }

    /// Computes summary statistics for the program.
    pub fn stats(&self) -> ProgramStats {
        let table = LatencyTable::paper();
        let mut stats = ProgramStats::default();
        let mut mem_touch: BTreeMap<MemAddr, u64> = BTreeMap::new();
        for instr in &self.instructions {
            stats.instruction_count += 1;
            if !table.is_negligible(instr) {
                stats.command_count += 1;
            }
            *stats.kind_counts.entry(instr.kind()).or_insert(0) += 1;
            if instr.consumes_magic_state() {
                stats.magic_state_count += 1;
            }
            if instr.is_in_memory() {
                stats.in_memory_count += 1;
            }
            for m in instr.memory_operands() {
                *mem_touch.entry(m).or_insert(0) += 1;
            }
            if let Some(out) = instr.classical_output() {
                stats.max_classical_id = Some(
                    stats
                        .max_classical_id
                        .map_or(out, |cur: ClassicalId| cur.max(out)),
                );
            }
            for r in instr.register_operands() {
                stats.max_register_id =
                    Some(stats.max_register_id.map_or(r, |cur: RegId| cur.max(r)));
            }
        }
        stats.memory_reference_counts = mem_touch;
        stats
    }

    /// The number of distinct SAM addresses referenced by the program, which is
    /// the number of data qubits the memory must hold.
    pub fn memory_footprint(&self) -> usize {
        self.stats().memory_reference_counts.len()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {}", self.name)?;
        for instr in &self.instructions {
            writeln!(f, "{instr}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        let mut p = Program::new("anonymous");
        p.extend(iter);
        p
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

/// Summary statistics of a [`Program`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total number of instructions, including negligible-latency ones.
    pub instruction_count: u64,
    /// Number of non-negligible instructions (the CPI denominator in the paper).
    pub command_count: u64,
    /// Number of magic states consumed (`PM` count).
    pub magic_state_count: u64,
    /// Number of in-memory instructions.
    pub in_memory_count: u64,
    /// Instruction count per Table I category.
    pub kind_counts: BTreeMap<InstructionKind, u64>,
    /// How many instructions reference each SAM address.
    pub memory_reference_counts: BTreeMap<MemAddr, u64>,
    /// The largest register identifier used, if any.
    pub max_register_id: Option<RegId>,
    /// The largest classical identifier written, if any.
    pub max_classical_id: Option<ClassicalId>,
}

impl ProgramStats {
    /// Average magic states consumed per non-negligible command; `None` if the
    /// program has no commands.
    pub fn magic_states_per_command(&self) -> Option<f64> {
        if self.command_count == 0 {
            None
        } else {
            Some(self.magic_state_count as f64 / self.command_count as f64)
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions ({} commands), {} magic states, {} memory qubits",
            self.instruction_count,
            self.command_count,
            self.magic_state_count,
            self.memory_reference_counts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut p = Program::new("sample");
        p.push(Instruction::PzM { mem: MemAddr(0) });
        p.push(Instruction::PzM { mem: MemAddr(1) });
        p.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        p.push(Instruction::Pm { reg: RegId(1) });
        p.push(Instruction::MzzC {
            reg1: RegId(0),
            reg2: RegId(1),
            out: ClassicalId(0),
        });
        p.push(Instruction::Sk {
            cond: ClassicalId(0),
        });
        p.push(Instruction::PhC { reg: RegId(0) });
        p.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(0),
        });
        p.push(Instruction::Cx {
            control: MemAddr(0),
            target: MemAddr(1),
        });
        p
    }

    #[test]
    fn push_and_iterate() {
        let p = sample_program();
        assert_eq!(p.len(), 9);
        assert!(!p.is_empty());
        assert_eq!(p.name(), "sample");
        assert_eq!(p.iter().count(), 9);
        assert_eq!((&p).into_iter().count(), 9);
    }

    #[test]
    fn stats_count_commands_and_magic() {
        let stats = sample_program().stats();
        assert_eq!(stats.instruction_count, 9);
        // Negligible: the two PZ.M. Everything else counts as a command.
        assert_eq!(stats.command_count, 7);
        assert_eq!(stats.magic_state_count, 1);
        assert_eq!(stats.memory_reference_counts.len(), 2);
        assert_eq!(stats.memory_reference_counts[&MemAddr(0)], 4);
        assert_eq!(stats.max_register_id, Some(RegId(1)));
        assert_eq!(stats.max_classical_id, Some(ClassicalId(0)));
        assert!(stats.magic_states_per_command().unwrap() > 0.0);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn memory_footprint_counts_distinct_addresses() {
        assert_eq!(sample_program().memory_footprint(), 2);
        assert_eq!(Program::new("empty").memory_footprint(), 0);
        assert_eq!(
            Program::new("empty").stats().magic_states_per_command(),
            None
        );
    }

    #[test]
    fn collect_from_iterator() {
        let p: Program = vec![
            Instruction::PzC { reg: RegId(0) },
            Instruction::HdC { reg: RegId(0) },
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn display_contains_every_instruction() {
        let p = sample_program();
        let text = p.to_string();
        assert!(text.contains("; program sample"));
        assert!(text.contains("LD m0 c0"));
        assert!(text.contains("CX m0 m1"));
        assert_eq!(text.lines().count(), 10);
    }
}
