//! Property tests for the crash-safety contract: under any seeded fault
//! schedule or kill-point the store returns correct payloads, and what it
//! leaves on disk is either fully consistent or cleanly quarantined — never a
//! silently wrong record.

use lsqca_json::Json;
use lsqca_store::{FaultPlan, FaultyIo, ResultStore, StoreEvent};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const POINTS: u64 = 10;

fn key(n: u64) -> String {
    format!("workload-{n}|experiment=point-{n}|isa=v1")
}

/// Ground-truth payload for point `n` — what an uninterrupted run computes.
fn truth(n: u64) -> Json {
    Json::obj([
        ("point", Json::U64(n)),
        ("total_beats", Json::U64(1000 + 7 * n)),
        ("cpi", Json::F64(1.25 + n as f64 / 8.0)),
    ])
}

fn store_over(io: Arc<FaultyIo>) -> ResultStore {
    ResultStore::with_io(Some(PathBuf::from("/store")), io)
}

/// Render the merged report the way the experiments CLI does: every point's
/// payload pretty-printed in sweep order.
fn merged_report(store: &ResultStore) -> String {
    (0..POINTS)
        .map(|n| store.load_or_compute(&key(n), || truth(n)).0.pretty())
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    /// A sweep killed at a random operation and resumed over the surviving
    /// image produces a byte-identical merged report versus an uninterrupted
    /// run, without recomputing the surviving prefix.
    #[test]
    fn kill_at_any_point_then_resume_is_byte_identical(kill_op in 1u64..120) {
        let clean = merged_report(&store_over(Arc::new(FaultyIo::reliable())));

        let io = Arc::new(FaultyIo::with_plan(FaultPlan {
            kill_at_op: Some(kill_op),
            ..FaultPlan::default()
        }));
        // First pass: the process dies at `kill_op`; whatever it computed
        // after that point never became durable.
        merged_report(&store_over(io.clone()));
        io.revive();

        let resumed = store_over(io);
        prop_assert_eq!(merged_report(&resumed), clean);
        let stats = resumed.stats();
        prop_assert_eq!(stats.hits + stats.computed, POINTS);
        prop_assert_eq!(stats.quarantined, 0);
    }

    /// Every seeded fault-injection schedule (short writes, ENOSPC, EIO, torn
    /// renames) yields correct results during the faulty run, and leaves the
    /// store either consistent or cleanly quarantined: a later clean run over
    /// the same image never observes a wrong payload.
    #[test]
    fn fault_schedules_never_corrupt_served_results(
        seed in 0u64..1_000_000,
        permille in 50u32..450,
        crash_after in proptest::bool::ANY,
    ) {
        let io = Arc::new(FaultyIo::seeded(seed, permille));
        let store = store_over(io.clone());
        for n in 0..POINTS {
            let (value, event) = store.load_or_compute(&key(n), || truth(n));
            prop_assert_eq!(value, truth(n), "faulty run served a wrong payload");
            prop_assert_ne!(
                event,
                StoreEvent::Hit,
                "a fresh store has nothing to hit on the first pass"
            );
        }
        if crash_after {
            io.crash();
        }

        // Clean pass over whatever the faulty run left behind: every key is
        // either a verified hit with the true payload, a recomputation, or a
        // quarantine-and-recompute — never a silent wrong value.
        io.set_plan(FaultPlan::default());
        let clean = store_over(io);
        for n in 0..POINTS {
            let (value, _event) = clean.load_or_compute(&key(n), || truth(n));
            prop_assert_eq!(value, truth(n), "surviving store image served a wrong payload");
        }
        let stats = clean.stats();
        prop_assert_eq!(stats.hits + stats.computed + stats.quarantined, POINTS);
    }

    /// Resume verification over a faulted image never reports more verified
    /// records than were journaled and quarantines rather than trusting
    /// corrupt records.
    #[test]
    fn resume_verification_is_conservative(seed in 0u64..1_000_000, permille in 50u32..450) {
        let io = Arc::new(FaultyIo::seeded(seed, permille));
        merged_report(&store_over(io.clone()));
        io.crash();
        io.set_plan(FaultPlan::default());

        let resumed = store_over(io.clone());
        let report = resumed.verify_resume();
        prop_assert!(report.verified + report.missing + report.quarantined == report.journaled);

        // After verification, a full resume still reconstructs ground truth.
        for n in 0..POINTS {
            let (value, _) = resumed.load_or_compute(&key(n), || truth(n));
            prop_assert_eq!(value, truth(n));
        }
    }
}
