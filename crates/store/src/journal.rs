//! Append-only shard journal: the audit trail of which result records a sweep
//! shard has durably published.
//!
//! Each successful record write appends one line; an interrupted process
//! leaves at most one torn line at the tail (append then fsync), which the
//! loader tolerates and reports instead of failing. On resume the journal
//! tells the operator exactly where the previous run died and lets the store
//! cross-check every journaled record against its on-disk checksum.

use crate::io::StoreIo;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal line format version tag.
const LINE_TAG: &str = "v1";

/// One journal line: a record file the shard claims to have published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Hex checksum the record carried when it was written.
    pub checksum: String,
    /// Record file name, relative to the store directory.
    pub file: String,
}

/// Result of loading a journal, torn tail included.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalLoad {
    /// Entries parsed from well-formed lines, in append order.
    pub entries: Vec<JournalEntry>,
    /// Lines that did not parse — at most the final line after a kill, but
    /// counted for all positions so tampering is visible too.
    pub torn_lines: usize,
}

/// Append-only journal for one sweep shard.
#[derive(Debug, Clone)]
pub struct ShardJournal {
    io: Arc<dyn StoreIo>,
    path: PathBuf,
}

impl ShardJournal {
    /// Journal for shard `label` inside `dir`.
    pub fn new(io: Arc<dyn StoreIo>, dir: &Path, label: &str) -> Self {
        ShardJournal {
            io,
            path: dir.join(format!("journal-{label}.log")),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `path` names a shard journal file.
    pub fn is_journal_file(path: &Path) -> bool {
        matches!(
            path.file_name().and_then(|n| n.to_str()),
            Some(name) if name.starts_with("journal-") && name.ends_with(".log")
        )
    }

    /// Append one entry and fsync so the line survives a kill right after.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let _span = lsqca_telemetry::span("journal.append");
        let line = format!("{LINE_TAG} {} {}\n", entry.checksum, entry.file);
        self.io.append(&self.path, line.as_bytes())?;
        self.io.sync_file(&self.path)
    }

    /// Load all entries, tolerating a torn final line. A missing journal is an
    /// empty one.
    pub fn load(&self) -> io::Result<JournalLoad> {
        match self.io.read(&self.path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(err) if err.kind() == io::ErrorKind::NotFound => Ok(JournalLoad::default()),
            Err(err) => Err(err),
        }
    }

    /// Parse journal text: `v1 <checksum> <file>` per line.
    pub fn parse(text: &str) -> JournalLoad {
        let mut load = JournalLoad::default();
        for line in text.split('\n') {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(' ');
            let entry = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(LINE_TAG), Some(checksum), Some(file), None)
                    if !checksum.is_empty() && !file.is_empty() =>
                {
                    JournalEntry {
                        checksum: checksum.to_string(),
                        file: file.to_string(),
                    }
                }
                _ => {
                    load.torn_lines += 1;
                    continue;
                }
            };
            load.entries.push(entry);
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FaultyIo;

    fn journal() -> (Arc<FaultyIo>, ShardJournal) {
        let io = Arc::new(FaultyIo::reliable());
        let journal = ShardJournal::new(io.clone(), Path::new("/store"), "0");
        (io, journal)
    }

    fn entry(n: u32) -> JournalEntry {
        JournalEntry {
            checksum: format!("{n:016x}"),
            file: format!("point-{n}.json"),
        }
    }

    #[test]
    fn appended_entries_round_trip() {
        let (_io, journal) = journal();
        journal.append(&entry(1)).unwrap();
        journal.append(&entry(2)).unwrap();
        let load = journal.load().unwrap();
        assert_eq!(load.entries, vec![entry(1), entry(2)]);
        assert_eq!(load.torn_lines, 0);
    }

    #[test]
    fn missing_journal_is_empty() {
        let (_io, journal) = journal();
        assert_eq!(journal.load().unwrap(), JournalLoad::default());
    }

    #[test]
    fn torn_tail_is_tolerated_and_counted() {
        let (io, journal) = journal();
        journal.append(&entry(1)).unwrap();
        io.append(journal.path(), b"v1 00ff").unwrap();
        let load = journal.load().unwrap();
        assert_eq!(load.entries, vec![entry(1)]);
        assert_eq!(load.torn_lines, 1);
    }

    #[test]
    fn entries_survive_a_crash_because_appends_fsync() {
        let (io, journal) = journal();
        journal.append(&entry(1)).unwrap();
        io.crash();
        assert_eq!(journal.load().unwrap().entries, vec![entry(1)]);
    }

    #[test]
    fn journal_file_names_are_recognized() {
        assert!(ShardJournal::is_journal_file(Path::new(
            "/store/journal-0.log"
        )));
        assert!(!ShardJournal::is_journal_file(Path::new(
            "/store/point-1.json"
        )));
    }
}
