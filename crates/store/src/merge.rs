//! Deterministic cross-shard merge audit.
//!
//! After a sharded sweep, each worker shard has appended to its own
//! `journal-<shard>.log` while publishing records into the shared store
//! directory. [`merge_audit`] reconciles all of it, read-only:
//!
//! * every shard journal is parsed (torn tails tolerated and counted);
//! * duplicate publications of the same record file are resolved by content
//!   hash — byte-identical records merge silently, while two journals
//!   claiming *different* checksums for the same file are a hard
//!   [`MergeError::ChecksumConflict`], because one of them would silently
//!   lose data;
//! * every journaled record is verified on disk against its journaled
//!   checksum (verified / missing / corrupt tallies);
//! * quarantined sweep points from every `quarantine-<shard>.log` are
//!   surfaced so the merged report can disclose what was skipped.
//!
//! The audit never mutates the store: merging is a property of the
//! content-addressed layout (all shards compute identical bytes for
//! identical keys), so "merge" is verification plus disclosure, after which
//! any single process can serve the merged sweep entirely from hits.

use crate::io::StoreIo;
use crate::journal::ShardJournal;
use crate::quarantine::quarantined_keys;
use crate::store::{verify_record, Miss};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::io;
use std::path::Path;

/// What a cross-shard merge audit found.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Shard journals present in the store directory.
    pub shards: usize,
    /// Unique record files across all journals.
    pub journaled: usize,
    /// Journal lines beyond the first for a record file (byte-identical
    /// re-publications, e.g. after a worker restart replayed a point).
    pub duplicates: usize,
    /// Records that verified on disk against their journaled checksum.
    pub verified: usize,
    /// Journaled records whose file is absent or unreadable.
    pub missing: usize,
    /// Journaled records present on disk but failing verification.
    pub corrupt: usize,
    /// Torn journal lines tolerated across all shards.
    pub torn_lines: usize,
    /// Sweep points quarantined by the supervisor, sorted.
    pub quarantined_points: Vec<String>,
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shards, {} journaled ({} duplicates), {} verified, {} missing, \
             {} corrupt, {} torn lines, {} quarantined points",
            self.shards,
            self.journaled,
            self.duplicates,
            self.verified,
            self.missing,
            self.corrupt,
            self.torn_lines,
            self.quarantined_points.len()
        )
    }
}

/// Why a merge audit refused to merge.
#[derive(Debug)]
pub enum MergeError {
    /// Two shard journals claim different content checksums for the same
    /// record file — the shards did not compute identical bytes, so a silent
    /// merge would lose one of the results.
    ChecksumConflict {
        /// Record file both journals claim.
        file: String,
        /// The distinct checksums claimed, sorted.
        checksums: Vec<String>,
    },
    /// The store directory itself could not be audited.
    Io(io::Error),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::ChecksumConflict { file, checksums } => write!(
                f,
                "shard journals disagree on `{file}`: checksums {}",
                checksums.join(" vs ")
            ),
            MergeError::Io(err) => write!(f, "store directory unreadable: {err}"),
        }
    }
}

impl Error for MergeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MergeError::ChecksumConflict { .. } => None,
            MergeError::Io(err) => Some(err),
        }
    }
}

/// Audit every shard journal in `dir` against the records on disk.
///
/// # Errors
///
/// [`MergeError::ChecksumConflict`] when two journals claim different
/// checksums for the same record file; [`MergeError::Io`] when the directory
/// listing or a journal read fails outright (a *missing* journal or record is
/// a tally, not an error).
pub fn merge_audit(io: &dyn StoreIo, dir: &Path) -> Result<MergeReport, MergeError> {
    let _span = lsqca_telemetry::span("merge.audit");
    let mut report = MergeReport::default();
    let entries = io.list_dir(dir).map_err(MergeError::Io)?;
    let mut journal_files: Vec<_> = entries
        .into_iter()
        .filter(|p| ShardJournal::is_journal_file(p))
        .collect();
    journal_files.sort();
    report.shards = journal_files.len();

    // file -> distinct checksums claimed for it, plus the total line count to
    // derive how many lines were byte-identical duplicates.
    let mut claims: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut lines = 0usize;
    for journal in &journal_files {
        let text = match io.read(journal) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => continue,
            Err(err) => return Err(MergeError::Io(err)),
        };
        let load = ShardJournal::parse(&text);
        report.torn_lines += load.torn_lines;
        lines += load.entries.len();
        for entry in load.entries {
            claims.entry(entry.file).or_default().insert(entry.checksum);
        }
    }
    report.journaled = claims.len();
    report.duplicates = lines - claims.len();

    for (file, checksums) in &claims {
        if checksums.len() > 1 {
            return Err(MergeError::ChecksumConflict {
                file: file.clone(),
                checksums: checksums.iter().cloned().collect(),
            });
        }
        let checksum = checksums.iter().next().expect("non-empty checksum set");
        match verify_record(io, &dir.join(file), checksum) {
            Ok(()) => report.verified += 1,
            Err(Miss::Absent) | Err(Miss::Io(_)) => report.missing += 1,
            Err(Miss::Corrupt(_)) => report.corrupt += 1,
        }
    }

    report.quarantined_points = quarantined_keys(io, dir).into_iter().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FaultyIo;
    use crate::quarantine::{QuarantineEntry, QuarantineLog};
    use crate::store::ResultStore;
    use lsqca_json::Json;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn payload(n: u64) -> Json {
        Json::obj([("point", Json::U64(n))])
    }

    fn shard_store(io: &Arc<FaultyIo>, label: &str) -> ResultStore {
        let mut store = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
        store.set_shard_label(label).unwrap();
        store
    }

    #[test]
    fn disjoint_shards_merge_cleanly() {
        let io = Arc::new(FaultyIo::reliable());
        shard_store(&io, "0").load_or_compute("k1", || payload(1));
        shard_store(&io, "1").load_or_compute("k2", || payload(2));

        let report = merge_audit(io.as_ref(), Path::new("/store")).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.journaled, 2);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.verified, 2);
        assert_eq!(report.missing, 0);
        assert_eq!(report.corrupt, 0);
        assert!(report.quarantined_points.is_empty());
    }

    #[test]
    fn byte_identical_duplicates_merge_silently() {
        let io = Arc::new(FaultyIo::reliable());
        // Both shards compute the same point (e.g. a restart replayed it):
        // same key, same payload, same checksum — two journal lines, one file.
        shard_store(&io, "0").load_or_compute("k1", || payload(1));
        let path = shard_store(&io, "0").path_for("k1").unwrap();
        io.remove_file(&path).unwrap();
        shard_store(&io, "1").load_or_compute("k1", || payload(1));

        let report = merge_audit(io.as_ref(), Path::new("/store")).unwrap();
        assert_eq!(report.journaled, 1);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.verified, 1);
    }

    #[test]
    fn conflicting_checksums_are_a_hard_error() {
        let io = Arc::new(FaultyIo::reliable());
        let store = shard_store(&io, "0");
        store.load_or_compute("k1", || payload(1));
        let file = store
            .path_for("k1")
            .unwrap()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        // A second shard journals a different checksum for the same file —
        // i.e. it computed different bytes for the same key.
        ShardJournal::new(io.clone(), Path::new("/store"), "1")
            .append(&crate::journal::JournalEntry {
                checksum: "00000000deadbeef".to_string(),
                file: file.clone(),
            })
            .unwrap();

        let err = merge_audit(io.as_ref(), Path::new("/store")).unwrap_err();
        match err {
            MergeError::ChecksumConflict { file: f, checksums } => {
                assert_eq!(f, file);
                assert_eq!(checksums.len(), 2);
            }
            other => panic!("expected a checksum conflict, got {other}"),
        }
    }

    #[test]
    fn missing_and_quarantined_points_are_tallied() {
        let io = Arc::new(FaultyIo::reliable());
        let store = shard_store(&io, "0");
        store.load_or_compute("k1", || payload(1));
        store.load_or_compute("k2", || payload(2));
        io.remove_file(&store.path_for("k2").unwrap()).unwrap();
        QuarantineLog::new(io.clone(), Path::new("/store"), "0")
            .append(&QuarantineEntry {
                attempts: 3,
                key: "k3".to_string(),
            })
            .unwrap();

        let report = merge_audit(io.as_ref(), Path::new("/store")).unwrap();
        assert_eq!(report.verified, 1);
        assert_eq!(report.missing, 1);
        assert_eq!(report.quarantined_points, vec!["k3".to_string()]);
    }
}
