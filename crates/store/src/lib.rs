//! Crash-safe persistence layer for sweep results.
//!
//! The crate provides three pieces, deliberately independent of the
//! simulation stack so lower layers (the workload cache) can reuse them:
//!
//! - [`StoreIo`]/[`DiskIo`]/[`FaultyIo`]: a filesystem trait with a production
//!   backend and a deterministic fault-injection backend (seeded short writes,
//!   `ENOSPC`, `EIO`, torn renames, kill-points) plus the shared
//!   [`atomic_write`] primitive (tmp + fsync + rename + directory fsync).
//! - [`ResultStore`]: a content-addressed store of checksummed JSON payloads,
//!   quarantining anything that fails verification and degrading to in-memory
//!   operation when the filesystem does.
//! - [`ShardJournal`]: an append-only journal of published records so an
//!   interrupted sweep resumes exactly where it died.
//! - Sharded-execution records: [`validate_shard_label`] guards every label
//!   interpolated into a store filename, [`QuarantineLog`]/[`InflightLog`]
//!   record poisoned and in-flight sweep points for the supervisor, and
//!   [`merge_audit`] reconciles all shard journals into one deterministic
//!   merged view (conflicting checksums for the same record are a hard
//!   [`MergeError`], never a silent overwrite).
//!
//! Callers decide what the payloads mean; this crate only promises that a
//! payload read back equals a payload written, or is loudly recomputed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod io;
mod journal;
mod merge;
mod quarantine;
mod shard;
mod store;

pub use hash::{fnv1a64, slug, Fnv1a};
pub use io::{atomic_write, DiskIo, FaultPlan, FaultyIo, StoreIo};
pub use journal::{JournalEntry, JournalLoad, ShardJournal};
pub use merge::{merge_audit, MergeError, MergeReport};
pub use quarantine::{
    progress_signature, quarantined_keys, InflightLog, QuarantineEntry, QuarantineLog,
};
pub use shard::{validate_shard_label, ShardLabelError, MAX_SHARD_LABEL_LEN};
pub use store::{
    default_store_dir, QuarantineReason, ResultStore, ResumeReport, StoreEvent, StoreStats,
    RESULT_SCHEMA,
};
