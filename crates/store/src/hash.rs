//! Content hashing and filename slugging shared by the result store and the
//! workload cache.

/// Streaming FNV-1a 64-bit hasher; feeding chunks is equivalent to hashing
/// their concatenation, so payloads never need to be materialized.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in the initial state.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(Self::PRIME);
        }
        self.0 = hash;
    }

    /// The hash of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// FNV-1a 64-bit hash of one buffer, the content hash of store and cache keys.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = Fnv1a::new();
    hash.update(bytes);
    hash.finish()
}

/// A filesystem-friendly prefix keeping store entries human-identifiable.
pub fn slug(descriptor: &str) -> String {
    let mut slug: String = descriptor
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    slug.truncate(48);
    while slug.ends_with('-') {
        slug.pop();
    }
    if slug.is_empty() {
        slug.push_str("workload");
    }
    slug
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut streaming = Fnv1a::new();
        streaming.update(b"foo");
        streaming.update(b"bar");
        assert_eq!(streaming.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn slugs_are_filesystem_friendly() {
        assert_eq!(slug("Shor n=15 (toy)"), "shor-n-15--toy");
        assert_eq!(slug("§§§"), "workload");
        assert!(slug(&"x".repeat(100)).len() <= 48);
    }
}
