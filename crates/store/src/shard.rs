//! Shard label validation.
//!
//! Shard labels come from the environment (`LSQCA_SHARD`) and from CLI flags,
//! and are interpolated into store-directory filenames (`journal-<label>.log`,
//! `quarantine-<label>.log`, `inflight-<label>.log`). An unvalidated label
//! containing `/`, `\`, or `..` would escape the store directory, so every
//! external label must pass [`validate_shard_label`] before it reaches a
//! filename.

use std::error::Error;
use std::fmt;

/// Maximum accepted shard-label length, in bytes.
pub const MAX_SHARD_LABEL_LEN: usize = 64;

/// Why a shard label was rejected.
///
/// The accepted alphabet is `[A-Za-z0-9_-]`, which structurally rules out
/// path separators, `..`, and every other traversal trick — rejection happens
/// *before* the label is interpolated into any filename.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardLabelError {
    /// The label is empty.
    Empty,
    /// The label exceeds [`MAX_SHARD_LABEL_LEN`] bytes.
    TooLong {
        /// Actual length of the rejected label.
        len: usize,
    },
    /// The label contains a character outside `[A-Za-z0-9_-]`.
    BadChar {
        /// The rejected label.
        label: String,
        /// The first offending character.
        ch: char,
    },
}

impl fmt::Display for ShardLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardLabelError::Empty => write!(f, "shard label is empty"),
            ShardLabelError::TooLong { len } => write!(
                f,
                "shard label is {len} bytes long (maximum {MAX_SHARD_LABEL_LEN})"
            ),
            ShardLabelError::BadChar { label, ch } => write!(
                f,
                "shard label `{label}` contains {ch:?}; only [A-Za-z0-9_-] is allowed"
            ),
        }
    }
}

impl Error for ShardLabelError {}

/// Validates a shard label against the `[A-Za-z0-9_-]{1,64}` contract.
///
/// # Errors
///
/// Returns the first violation found: empty label, over-long label, or a
/// character outside the allowed alphabet (which includes every path
/// separator and the `.` needed to spell `..`).
pub fn validate_shard_label(label: &str) -> Result<(), ShardLabelError> {
    if label.is_empty() {
        return Err(ShardLabelError::Empty);
    }
    if label.len() > MAX_SHARD_LABEL_LEN {
        return Err(ShardLabelError::TooLong { len: label.len() });
    }
    if let Some(ch) = label
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
    {
        return Err(ShardLabelError::BadChar {
            label: label.to_string(),
            ch,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_labels_pass() {
        for label in ["0", "7", "merge", "worker-3", "A_b-9", &"x".repeat(64)] {
            assert_eq!(validate_shard_label(label), Ok(()), "{label}");
        }
    }

    #[test]
    fn traversal_and_separator_labels_are_rejected() {
        for label in ["..", "../x", "a/b", "a\\b", ".", "a.b", "/etc", "a b"] {
            assert!(
                matches!(
                    validate_shard_label(label),
                    Err(ShardLabelError::BadChar { .. })
                ),
                "{label} must be rejected"
            );
        }
    }

    #[test]
    fn empty_and_overlong_labels_are_rejected() {
        assert_eq!(validate_shard_label(""), Err(ShardLabelError::Empty));
        assert_eq!(
            validate_shard_label(&"x".repeat(65)),
            Err(ShardLabelError::TooLong { len: 65 })
        );
    }

    #[test]
    fn errors_render_a_useful_message() {
        let err = validate_shard_label("../etc").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("../etc"), "{text}");
        assert!(text.contains("A-Za-z0-9_-"), "{text}");
    }
}
