//! Content-addressed result store for sweep points.
//!
//! # Record contract
//!
//! One record file per result key, named `<slug>-<fnv64>.json`. The document
//! carries the full key, the JSON payload, and an FNV-1a checksum over
//! `key + "\n" + compact(payload)`; a record is served only if the schema tag,
//! the key, and the checksum all verify. Anything else — truncated JSON from a
//! torn write, a hand-edited payload, a hash-collision record for another key
//! — is quarantined (renamed to `*.quarantined`), reported once on stderr, and
//! recomputed.
//!
//! # Durability contract
//!
//! Records are published with [`atomic_write`] (tmp + fsync + rename + dir
//! fsync) and each publication is journaled (see
//! [`ShardJournal`](crate::journal::ShardJournal)), so a SIGKILL at any point
//! loses at most the in-flight point: a resumed run replays every surviving
//! record as a hit and recomputes only what never became durable, which makes
//! the merged report byte-identical to an uninterrupted run's.
//!
//! An unwritable or failing store directory never aborts a sweep: after the
//! first filesystem error the store degrades to a process-local in-memory map
//! with a single stderr warning.

use crate::hash::{fnv1a64, slug};
use crate::io::{atomic_write, DiskIo, StoreIo};
use crate::journal::{JournalEntry, ShardJournal};
use crate::merge::{merge_audit, MergeError, MergeReport};
use crate::shard::{validate_shard_label, ShardLabelError};
use lsqca_json::Json;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Schema tag every result record carries.
pub const RESULT_SCHEMA: &str = "lsqca-result-v1";

/// How a [`ResultStore::load_or_compute`] request was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreEvent {
    /// A verified record was served; no computation happened.
    Hit,
    /// No record existed (or the store is disabled/degraded); computed.
    Computed,
    /// A record existed but failed verification; it was quarantined and the
    /// point recomputed.
    Quarantined(QuarantineReason),
}

/// Why a stored record was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The file is not valid JSON (e.g. truncated by a torn write).
    NotJson(String),
    /// The document is JSON but not a result record of the expected schema.
    Schema(String),
    /// The record's checksum does not match its content (bit rot, hand edit).
    Checksum {
        /// Checksum stored in the record.
        stored: String,
        /// Checksum recomputed from the record's key and payload.
        actual: String,
    },
    /// The record belongs to a different key (hash collision or copied file).
    KeyMismatch {
        /// The key recorded in the file.
        stored: String,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::NotJson(e) => write!(f, "not valid JSON: {e}"),
            QuarantineReason::Schema(e) => write!(f, "not a result record: {e}"),
            QuarantineReason::Checksum { stored, actual } => {
                write!(f, "checksum mismatch: stored {stored}, computed {actual}")
            }
            QuarantineReason::KeyMismatch { stored } => {
                write!(f, "record belongs to key `{stored}`")
            }
        }
    }
}

/// Counters of one store instance (monotonic over its lifetime).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Points computed because no verified record existed.
    pub computed: u64,
    /// Points served from a verified record (disk or in-process memory).
    pub hits: u64,
    /// Records that failed verification and were quarantined.
    pub quarantined: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} computed, {} hits, {} quarantined",
            self.computed, self.hits, self.quarantined
        )
    }
}

/// What a resume verification pass found in the journals.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResumeReport {
    /// Journal entries across all shards (after deduplication).
    pub journaled: usize,
    /// Entries whose record verified against its journaled checksum.
    pub verified: usize,
    /// Entries whose record file no longer exists.
    pub missing: usize,
    /// Entries whose record existed but failed verification (quarantined).
    pub quarantined: usize,
    /// Torn journal lines tolerated (at most one per killed shard).
    pub torn_lines: usize,
}

impl fmt::Display for ResumeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} journaled, {} verified, {} missing, {} quarantined, {} torn lines",
            self.journaled, self.verified, self.missing, self.quarantined, self.torn_lines
        )
    }
}

/// A crash-safe, content-addressed store of JSON result payloads.
#[derive(Debug)]
pub struct ResultStore {
    io: Arc<dyn StoreIo>,
    /// `None` when persistence is disabled: every request computes (but the
    /// in-process memo still serves repeats).
    dir: Option<PathBuf>,
    shard: String,
    /// In-process memo and the fallback medium once the store degrades.
    memory: Mutex<HashMap<String, Json>>,
    degraded: AtomicBool,
    computed: AtomicU64,
    hits: AtomicU64,
    quarantined: AtomicU64,
}

impl ResultStore {
    /// A store rooted at `dir` on the real filesystem.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self::with_io(Some(dir.into()), Arc::new(DiskIo))
    }

    /// A store that never persists and never memoizes: every request computes.
    /// This is the `--no-store` escape hatch, and what benchmarks run under so
    /// repeated timed sweeps really re-simulate (unlike a *degraded* store,
    /// which keeps memoizing in memory after losing its directory).
    pub fn disabled() -> Self {
        Self::with_io(None, Arc::new(DiskIo))
    }

    /// A store over an explicit [`StoreIo`] backend — the fault-injection
    /// entry point.
    pub fn with_io(dir: Option<PathBuf>, io: Arc<dyn StoreIo>) -> Self {
        ResultStore {
            io,
            dir,
            shard: env_shard_label(),
            memory: Mutex::new(HashMap::new()),
            degraded: AtomicBool::new(false),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The store the environment selects: `$LSQCA_STORE_DIR` if set, disabled
    /// if `$LSQCA_NO_STORE` is set to anything but `0`/empty, otherwise
    /// `lsqca-store/` inside the build's `target/` directory.
    pub fn from_env() -> Self {
        if let Ok(no_store) = std::env::var("LSQCA_NO_STORE") {
            if !no_store.is_empty() && no_store != "0" {
                return ResultStore::disabled();
            }
        }
        if let Ok(dir) = std::env::var("LSQCA_STORE_DIR") {
            if !dir.is_empty() {
                return ResultStore::at(dir);
            }
        }
        ResultStore::at(default_store_dir())
    }

    /// The directory records are stored in; `None` when disabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The shard label this store journals publications under.
    pub fn shard_label(&self) -> &str {
        &self.shard
    }

    /// Override the shard label (validated) — used by the supervisor and the
    /// merge path, which must not journal under a worker's label.
    ///
    /// # Errors
    ///
    /// [`ShardLabelError`] when `label` violates the `[A-Za-z0-9_-]{1,64}`
    /// contract; the current label is kept.
    pub fn set_shard_label(&mut self, label: &str) -> Result<(), ShardLabelError> {
        validate_shard_label(label)?;
        self.shard = label.to_string();
        Ok(())
    }

    /// Whether the store has degraded to in-memory operation after a
    /// filesystem error.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// This instance's computed/hit/quarantine counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            computed: self.computed.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// The on-disk path the record for `key` lives at. `None` when disabled.
    pub fn path_for(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| {
            d.join(format!(
                "{}-{:016x}.json",
                slug(key),
                fnv1a64(key.as_bytes())
            ))
        })
    }

    /// Serve the payload for `key` from a verified record, or compute it with
    /// `compute` and publish it durably. Returns the payload and how it was
    /// obtained.
    ///
    /// The payload returned on the computed path is the same value later hits
    /// will see (the compute result itself), so mixed hit/computed sweeps are
    /// value-identical to all-computed ones.
    pub fn load_or_compute(&self, key: &str, compute: impl FnOnce() -> Json) -> (Json, StoreEvent) {
        // A disabled store (no directory) computes every time; memoization is
        // reserved for real stores, where it backs the degraded-mode fallback.
        let memoize = self.dir.is_some();
        if memoize {
            if let Some(payload) = self.memory.lock().unwrap().get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (payload.clone(), StoreEvent::Hit);
            }
        }
        let mut event = StoreEvent::Computed;
        if let Some(path) = self.usable_path(key) {
            match load_record(self.io.as_ref(), &path, key) {
                Ok(payload) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.memory
                        .lock()
                        .unwrap()
                        .insert(key.to_string(), payload.clone());
                    return (payload, StoreEvent::Hit);
                }
                Err(Miss::Absent) => {}
                Err(Miss::Io(err)) => self.degrade("read", &err),
                Err(Miss::Corrupt(reason)) => {
                    self.quarantine(&path, &reason);
                    event = StoreEvent::Quarantined(reason);
                }
            }
        }
        let payload = compute();
        match event {
            StoreEvent::Quarantined(_) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.computed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(path) = self.usable_path(key) {
            if let Err(err) = self.publish(&path, key, &payload) {
                self.degrade("write", &err);
            }
        }
        if memoize {
            self.memory
                .lock()
                .unwrap()
                .insert(key.to_string(), payload.clone());
        }
        (payload, event)
    }

    /// Serve the payload for `key` only if a verified record already exists
    /// (in memory or on disk); never computes, never publishes.
    ///
    /// This is how a process renders sweep points *owned by other shards*: a
    /// record published by any shard is served, an absent record stays absent
    /// (the caller substitutes a placeholder). A corrupt record is
    /// quarantined as usual so the owning shard recomputes it.
    pub fn probe(&self, key: &str) -> Option<Json> {
        if self.dir.is_some() {
            if let Some(payload) = self.memory.lock().unwrap().get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(payload.clone());
            }
        }
        let path = self.usable_path(key)?;
        match load_record(self.io.as_ref(), &path, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.memory
                    .lock()
                    .unwrap()
                    .insert(key.to_string(), payload.clone());
                Some(payload)
            }
            Err(Miss::Absent) => None,
            Err(Miss::Io(err)) => {
                self.degrade("read", &err);
                None
            }
            Err(Miss::Corrupt(reason)) => {
                self.quarantine(&path, &reason);
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Audit all shard journals in this store's directory for a merge — see
    /// [`merge_audit`](crate::merge_audit). A disabled store merges trivially.
    ///
    /// # Errors
    ///
    /// Propagates [`MergeError`] from the underlying audit.
    pub fn merge_audit(&self) -> Result<MergeReport, MergeError> {
        match self.dir.as_deref() {
            Some(dir) => merge_audit(self.io.as_ref(), dir),
            None => Ok(MergeReport::default()),
        }
    }

    /// Cross-check every journaled record against its on-disk checksum; call
    /// before resuming an interrupted sweep. Corrupt records are quarantined
    /// so the resumed run recomputes them.
    pub fn verify_resume(&self) -> ResumeReport {
        let mut report = ResumeReport::default();
        let Some(dir) = self.usable_dir() else {
            return report;
        };
        let journal_files: Vec<PathBuf> = match self.io.list_dir(dir) {
            Ok(entries) => entries
                .into_iter()
                .filter(|p| ShardJournal::is_journal_file(p))
                .collect(),
            Err(_) => return report,
        };
        let mut seen = std::collections::BTreeMap::new();
        for journal in journal_files {
            let Ok(text) = self.io.read(&journal) else {
                continue;
            };
            let load = ShardJournal::parse(&text);
            report.torn_lines += load.torn_lines;
            for entry in load.entries {
                seen.insert(entry.file.clone(), entry);
            }
        }
        report.journaled = seen.len();
        for entry in seen.values() {
            let path = dir.join(&entry.file);
            match verify_record(self.io.as_ref(), &path, &entry.checksum) {
                Ok(()) => report.verified += 1,
                Err(Miss::Absent) | Err(Miss::Io(_)) => report.missing += 1,
                Err(Miss::Corrupt(reason)) => {
                    self.quarantine(&path, &reason);
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    report.quarantined += 1;
                }
            }
        }
        report
    }

    fn usable_dir(&self) -> Option<&Path> {
        if self.degraded.load(Ordering::Relaxed) {
            None
        } else {
            self.dir.as_deref()
        }
    }

    fn usable_path(&self, key: &str) -> Option<PathBuf> {
        self.usable_dir()?;
        self.path_for(key)
    }

    /// Publish a record durably and journal the publication.
    fn publish(&self, path: &Path, key: &str, payload: &Json) -> io::Result<()> {
        let _span = lsqca_telemetry::span("store.publish");
        let record = encode_record(key, payload);
        atomic_write(self.io.as_ref(), path, record.text.as_bytes())?;
        let dir = path.parent().expect("record paths have a parent directory");
        let file = path
            .file_name()
            .expect("record paths have a file name")
            .to_string_lossy()
            .into_owned();
        ShardJournal::new(self.io.clone(), dir, &self.shard).append(&JournalEntry {
            checksum: record.checksum,
            file,
        })
    }

    /// Flip to in-memory operation, warning exactly once.
    fn degrade(&self, what: &str, err: &io::Error) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            let dir = self
                .dir
                .as_deref()
                .map(|d| d.display().to_string())
                .unwrap_or_default();
            eprintln!(
                "warning: result store: {what} failed in {dir} ({err}); \
                 degrading to in-memory results for the rest of this run"
            );
        }
    }

    /// Move a corrupt record out of the addressable namespace, best-effort.
    fn quarantine(&self, path: &Path, reason: &QuarantineReason) {
        eprintln!(
            "warning: result store: quarantined {}: {reason}",
            path.display()
        );
        let target = path.with_extension("json.quarantined");
        if self.io.rename(path, &target).is_err() {
            // Removal is the fallback so the recomputed record can publish.
            let _ = self.io.remove_file(path);
        }
    }
}

/// The default store location: `lsqca-store/` inside the `target/` directory
/// the running executable was built into, next to the workload cache, so
/// binaries, tests, and benches all share one store per checkout. Falls back
/// to `./target/lsqca-store` when no ancestor directory is named `target`.
pub fn default_store_dir() -> PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors().skip(1) {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.join("lsqca-store");
            }
        }
    }
    PathBuf::from("target").join("lsqca-store")
}

struct EncodedRecord {
    text: String,
    checksum: String,
}

/// Render the record document for `(key, payload)`.
fn encode_record(key: &str, payload: &Json) -> EncodedRecord {
    let checksum = format!("{:016x}", record_checksum(key, payload));
    let doc = Json::obj([
        ("schema", Json::Str(RESULT_SCHEMA.to_string())),
        ("key", Json::Str(key.to_string())),
        ("checksum", Json::Str(checksum.clone())),
        ("payload", payload.clone()),
    ]);
    EncodedRecord {
        text: doc.pretty(),
        checksum,
    }
}

/// The integrity checksum: FNV-1a over the key and the compact payload
/// rendering. The pretty/compact printers are deterministic and parsing
/// round-trips, so the loader can recompute this from the parsed document.
fn record_checksum(key: &str, payload: &Json) -> u64 {
    let mut hash = crate::hash::Fnv1a::new();
    hash.update(key.as_bytes());
    hash.update(b"\n");
    hash.update(payload.compact().as_bytes());
    hash.finish()
}

/// The shard label the environment selects, falling back to `0` (with a
/// warning) when `LSQCA_SHARD` is set to something that could escape the
/// store directory once interpolated into a journal filename.
fn env_shard_label() -> String {
    let label = std::env::var("LSQCA_SHARD").unwrap_or_else(|_| "0".to_string());
    match validate_shard_label(&label) {
        Ok(()) => label,
        Err(err) => {
            eprintln!("warning: result store: ignoring LSQCA_SHARD: {err}; using shard label `0`");
            "0".to_string()
        }
    }
}

pub(crate) enum Miss {
    Absent,
    Io(io::Error),
    Corrupt(QuarantineReason),
}

/// Parse and verify a record document, returning its key, payload, and
/// stored checksum.
fn decode_record(text: &str) -> Result<(String, Json, String), QuarantineReason> {
    let doc = lsqca_json::parse(text).map_err(|e| QuarantineReason::NotJson(e.to_string()))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| QuarantineReason::Schema("missing `schema`".to_string()))?;
    if schema != RESULT_SCHEMA {
        return Err(QuarantineReason::Schema(format!(
            "schema `{schema}`, expected `{RESULT_SCHEMA}`"
        )));
    }
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| QuarantineReason::Schema("missing `key`".to_string()))?;
    let stored = doc
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or_else(|| QuarantineReason::Schema("missing `checksum`".to_string()))?;
    let payload = doc
        .get("payload")
        .ok_or_else(|| QuarantineReason::Schema("missing `payload`".to_string()))?;
    let actual = format!("{:016x}", record_checksum(key, payload));
    if stored != actual {
        return Err(QuarantineReason::Checksum {
            stored: stored.to_string(),
            actual,
        });
    }
    Ok((key.to_string(), payload.clone(), stored.to_string()))
}

fn read_record(io: &dyn StoreIo, path: &Path) -> Result<(String, Json, String), Miss> {
    let text = match io.read(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(Miss::Absent),
        Err(e) => return Err(Miss::Io(e)),
    };
    decode_record(&text).map_err(Miss::Corrupt)
}

fn load_record(io: &dyn StoreIo, path: &Path, key: &str) -> Result<Json, Miss> {
    let (stored_key, payload, _checksum) = read_record(io, path)?;
    if stored_key != key {
        return Err(Miss::Corrupt(QuarantineReason::KeyMismatch {
            stored: stored_key,
        }));
    }
    Ok(payload)
}

pub(crate) fn verify_record(
    io: &dyn StoreIo,
    path: &Path,
    journaled_checksum: &str,
) -> Result<(), Miss> {
    let (_key, _payload, checksum) = read_record(io, path)?;
    if checksum != journaled_checksum {
        return Err(Miss::Corrupt(QuarantineReason::Checksum {
            stored: checksum,
            actual: journaled_checksum.to_string(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultPlan, FaultyIo};

    fn payload(n: u64) -> Json {
        Json::obj([("point", Json::U64(n)), ("cpi", Json::F64(1.5 + n as f64))])
    }

    fn mem_store() -> (Arc<FaultyIo>, ResultStore) {
        let io = Arc::new(FaultyIo::reliable());
        let store = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
        (io, store)
    }

    #[test]
    fn second_request_is_a_hit_even_from_a_fresh_process() {
        let (io, store) = mem_store();
        let (first, event) = store.load_or_compute("k1", || payload(1));
        assert_eq!(event, StoreEvent::Computed);

        // Same process: served from memory.
        let (second, event) = store.load_or_compute("k1", || panic!("must not recompute"));
        assert_eq!(event, StoreEvent::Hit);
        assert_eq!(first, second);

        // Fresh process over the same backend: served from disk.
        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        let (third, event) = fresh.load_or_compute("k1", || panic!("must not recompute"));
        assert_eq!(event, StoreEvent::Hit);
        assert_eq!(first, third);
        assert_eq!(
            fresh.stats(),
            StoreStats {
                computed: 0,
                hits: 1,
                quarantined: 0
            }
        );
    }

    #[test]
    fn published_records_survive_a_crash() {
        let (io, store) = mem_store();
        let (first, _) = store.load_or_compute("k1", || payload(1));
        io.crash();
        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        let (second, event) = fresh.load_or_compute("k1", || panic!("must not recompute"));
        assert_eq!(event, StoreEvent::Hit);
        assert_eq!(first, second);
    }

    #[test]
    fn tampered_record_is_quarantined_and_recomputed() {
        let (io, store) = mem_store();
        store.load_or_compute("k1", || payload(1));
        let path = store.path_for("k1").unwrap();
        let mut text = io.read(&path).unwrap();
        text = text.replace("2.5", "9.5");
        io.tamper(&path, text.as_bytes());

        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
        let (value, event) = fresh.load_or_compute("k1", || payload(1));
        assert!(matches!(
            event,
            StoreEvent::Quarantined(QuarantineReason::Checksum { .. })
        ));
        assert_eq!(value, payload(1));
        assert_eq!(fresh.stats().quarantined, 1);
        // The corrupt bytes moved aside and a clean record took their place.
        assert!(io
            .read(&path.with_extension("json.quarantined"))
            .unwrap()
            .contains("9.5"));
        assert!(io.read(&path).unwrap().contains("2.5"));
    }

    #[test]
    fn truncated_record_is_detected() {
        let (io, store) = mem_store();
        store.load_or_compute("k1", || payload(1));
        let path = store.path_for("k1").unwrap();
        let text = io.read(&path).unwrap();
        io.tamper(&path, &text.as_bytes()[..text.len() / 2]);

        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        let (value, event) = fresh.load_or_compute("k1", || payload(1));
        assert!(matches!(
            event,
            StoreEvent::Quarantined(QuarantineReason::NotJson(_))
        ));
        assert_eq!(value, payload(1));
    }

    #[test]
    fn unwritable_store_degrades_once_and_still_serves_results() {
        let io = Arc::new(FaultyIo::unwritable());
        let store = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        let (first, event) = store.load_or_compute("k1", || payload(1));
        assert_eq!(event, StoreEvent::Computed);
        assert_eq!(first, payload(1));
        assert!(store.is_degraded());
        // Degraded operation memoizes in-process.
        let (second, event) = store.load_or_compute("k1", || panic!("must not recompute"));
        assert_eq!(event, StoreEvent::Hit);
        assert_eq!(first, second);
    }

    #[test]
    fn disabled_store_always_computes() {
        let store = ResultStore::disabled();
        let (_, event) = store.load_or_compute("k1", || payload(1));
        assert_eq!(event, StoreEvent::Computed);
        // No memoization either: `--no-store` (and the benchmarks that run
        // under it) must re-simulate every request.
        let (_, event) = store.load_or_compute("k1", || payload(1));
        assert_eq!(event, StoreEvent::Computed);
        assert_eq!(store.stats().computed, 2);
        assert_eq!(store.path_for("k1"), None);
    }

    #[test]
    fn verify_resume_reports_journal_state() {
        let (io, store) = mem_store();
        store.load_or_compute("k1", || payload(1));
        store.load_or_compute("k2", || payload(2));
        let report = store.verify_resume();
        assert_eq!(report.journaled, 2);
        assert_eq!(report.verified, 2);
        assert_eq!(report.missing, 0);
        assert_eq!(report.quarantined, 0);

        // Corrupt one record: resume verification quarantines it.
        let path = store.path_for("k2").unwrap();
        io.tamper(&path, b"{\"schema\": \"lsqca-result-v1\"");
        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        let report = fresh.verify_resume();
        assert_eq!(report.journaled, 2);
        assert_eq!(report.verified, 1);
        assert_eq!(report.quarantined, 1);
    }

    #[test]
    fn kill_mid_sweep_then_resume_recomputes_only_the_lost_tail() {
        // First pass: kill the backend partway through a 8-point sweep.
        let io = Arc::new(FaultyIo::with_plan(FaultPlan {
            kill_at_op: Some(40),
            ..FaultPlan::default()
        }));
        let store = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
        for n in 0..8 {
            // After the kill-point the store degrades but still returns
            // correct values; the process would normally be dead here.
            let (value, _) = store.load_or_compute(&format!("k{n}"), || payload(n));
            assert_eq!(value, payload(n));
        }
        io.revive();

        // Resumed process: everything durable is a hit, the rest recomputes,
        // and the merged values match an uninterrupted run exactly.
        let resumed = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        for n in 0..8 {
            let (value, _) = resumed.load_or_compute(&format!("k{n}"), || payload(n));
            assert_eq!(value, payload(n));
        }
        let stats = resumed.stats();
        assert_eq!(stats.hits + stats.computed, 8);
        assert!(stats.hits > 0, "the survived prefix must be served as hits");
        assert!(stats.computed > 0, "the lost tail must recompute");
    }

    #[test]
    fn probe_serves_hits_but_never_computes() {
        let (io, store) = mem_store();
        assert_eq!(store.probe("k1"), None);
        assert_eq!(store.stats().computed, 0);
        store.load_or_compute("k1", || payload(1));

        // A fresh process probes the record published by the first.
        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
        assert_eq!(fresh.probe("k1"), Some(payload(1)));
        assert_eq!(fresh.stats().hits, 1);
        assert_eq!(fresh.stats().computed, 0);

        // A corrupt record is quarantined, not served.
        let path = store.path_for("k1").unwrap();
        io.tamper(&path, b"{ torn");
        let fresh = ResultStore::with_io(Some(PathBuf::from("/store")), io);
        assert_eq!(fresh.probe("k1"), None);
        assert_eq!(fresh.stats().quarantined, 1);
    }

    #[test]
    fn shard_label_override_is_validated() {
        let (_io, mut store) = mem_store();
        store.set_shard_label("merge").unwrap();
        assert_eq!(store.shard_label(), "merge");
        assert!(store.set_shard_label("../evil").is_err());
        assert_eq!(store.shard_label(), "merge");
    }

    #[test]
    fn shards_journal_under_their_own_label() {
        let io = Arc::new(FaultyIo::reliable());
        let mut store = ResultStore::with_io(Some(PathBuf::from("/store")), io.clone());
        store.set_shard_label("w3").unwrap();
        store.load_or_compute("k1", || payload(1));
        let journal = crate::journal::ShardJournal::new(io, Path::new("/store"), "w3");
        assert_eq!(journal.load().unwrap().entries.len(), 1);
    }

    #[test]
    fn record_encoding_round_trips() {
        let record = encode_record("k1", &payload(7));
        let (key, value, checksum) = decode_record(&record.text).unwrap();
        assert_eq!(key, "k1");
        assert_eq!(value, payload(7));
        assert_eq!(checksum, record.checksum);
    }
}
