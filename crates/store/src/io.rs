//! Filesystem abstraction for the result store.
//!
//! Every byte the store reads or writes goes through the [`StoreIo`] trait, so
//! the same persistence code runs against the real filesystem ([`DiskIo`]) in
//! production and against a deterministic in-memory filesystem with seeded
//! fault injection ([`FaultyIo`]) under test. The in-memory backend models
//! durability the way a crash-consistency checker does: data written but not
//! fsynced does not survive [`FaultyIo::crash`], and a rename only becomes
//! durable once its parent directory has been synced.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Filesystem operations used by the store and the workload cache.
///
/// The trait is object-safe and implementations must be shareable across
/// threads; sweep drivers hit the store from `par_map` workers.
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// Read the full contents of `path` as UTF-8.
    fn read(&self, path: &Path) -> io::Result<String>;
    /// Create or truncate `path` and write `bytes` to it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append `bytes` to `path`, creating it if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically replace `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create `path` and any missing parent directories.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Flush the contents of `path` to durable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Flush directory metadata (completed renames) to durable storage.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// List the entries of the directory at `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Production [`StoreIo`] backend over the real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskIo;

impl StoreIo for DiskIo {
    fn read(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use io::Write as _;
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Not every platform lets a directory be opened as a file (Windows
        // notably does not); directory sync is best-effort there, which only
        // weakens the durability of the most recent rename, never integrity.
        match fs::File::open(path) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(path)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }
}

/// Fault classes the deterministic backend can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Injected {
    /// Write a prefix of the payload, then fail (`ENOSPC`-style short write).
    ShortWrite,
    /// Fail without touching the file (`EIO`).
    Eio,
    /// Fail a rename, leaving the temporary file behind (torn rename).
    RenameFail,
}

/// Deterministic fault schedule for [`FaultyIo`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Seed for the per-operation fault decision.
    pub seed: u64,
    /// Probability of a fault per operation, in permille (0..=1000).
    pub fault_permille: u32,
    /// When set, every mutating operation fails with `PermissionDenied`
    /// (models a read-only store directory).
    pub unwritable: bool,
    /// When set, the backend crashes at this operation index: volatile state
    /// is dropped and every subsequent operation fails until
    /// [`FaultyIo::revive`] is called (models SIGKILL mid-sweep).
    pub kill_at_op: Option<u64>,
}

#[derive(Debug, Default)]
struct MemState {
    /// Current (volatile) view of every file.
    files: BTreeMap<PathBuf, Vec<u8>>,
    /// What survives a crash: content as of the last `sync_file` per path.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// Renames applied to `files` but not yet made durable by a `sync_dir`.
    pending_renames: Vec<(PathBuf, PathBuf)>,
    ops: u64,
    killed: bool,
}

/// Deterministic in-memory [`StoreIo`] backend with seeded fault injection.
///
/// With the default [`FaultPlan`] it behaves as a reliable in-memory
/// filesystem; with a plan it injects short writes, `EIO`, torn renames, and a
/// kill-point, all as a pure function of `(seed, operation index)` so every
/// failing schedule replays exactly.
#[derive(Debug)]
pub struct FaultyIo {
    state: Mutex<MemState>,
    plan: Mutex<FaultPlan>,
}

impl Default for FaultyIo {
    fn default() -> Self {
        Self::reliable()
    }
}

impl FaultyIo {
    /// In-memory backend with no injected faults.
    pub fn reliable() -> Self {
        Self::with_plan(FaultPlan::default())
    }

    /// In-memory backend that fails ~`fault_permille`/1000 of operations,
    /// chosen deterministically from `seed`.
    pub fn seeded(seed: u64, fault_permille: u32) -> Self {
        Self::with_plan(FaultPlan {
            seed,
            fault_permille,
            ..FaultPlan::default()
        })
    }

    /// In-memory backend where every mutating operation fails.
    pub fn unwritable() -> Self {
        Self::with_plan(FaultPlan {
            unwritable: true,
            ..FaultPlan::default()
        })
    }

    /// In-memory backend with an explicit fault schedule.
    pub fn with_plan(plan: FaultPlan) -> Self {
        FaultyIo {
            state: Mutex::new(MemState::default()),
            plan: Mutex::new(plan),
        }
    }

    /// Replace the fault schedule (e.g. to make a store unwritable mid-run).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap() = plan;
    }

    /// Number of operations performed so far (kill-points index into this).
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Simulate a crash: drop all volatile state, keeping only what was
    /// synced. Un-synced renames roll back (the torn-rename case).
    pub fn crash(&self) {
        let mut state = self.state.lock().unwrap();
        state.files = state.durable.clone();
        state.pending_renames.clear();
    }

    /// Clear the killed flag after a [`FaultPlan::kill_at_op`] fired so a
    /// resumed process can reuse the same backend image.
    pub fn revive(&self) {
        let mut state = self.state.lock().unwrap();
        state.killed = false;
        let mut plan = self.plan.lock().unwrap();
        plan.kill_at_op = None;
    }

    /// Snapshot of the durable (crash-surviving) filesystem image.
    pub fn durable_snapshot(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.state.lock().unwrap().durable.clone()
    }

    /// Snapshot of the current (volatile) filesystem image.
    pub fn files_snapshot(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.state.lock().unwrap().files.clone()
    }

    /// Overwrite a file in both the volatile and durable images, bypassing the
    /// fault schedule. Test hook for modelling hand-edited or torn records.
    pub fn tamper(&self, path: &Path, bytes: &[u8]) {
        let mut state = self.state.lock().unwrap();
        state.files.insert(path.to_path_buf(), bytes.to_vec());
        state.durable.insert(path.to_path_buf(), bytes.to_vec());
    }

    /// Decide the fate of the next operation. `mutates` marks operations that
    /// an unwritable filesystem rejects.
    fn admit(&self, mutates: bool) -> Result<Option<Injected>, io::Error> {
        let plan = *self.plan.lock().unwrap();
        let mut state = self.state.lock().unwrap();
        state.ops += 1;
        if state.killed {
            return Err(io::Error::other("faulty io: killed"));
        }
        if plan.kill_at_op == Some(state.ops) {
            state.killed = true;
            state.files = state.durable.clone();
            state.pending_renames.clear();
            return Err(io::Error::other("faulty io: killed"));
        }
        if plan.unwritable && mutates {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "faulty io: unwritable",
            ));
        }
        if plan.fault_permille > 0 {
            let roll = splitmix64(plan.seed ^ state.ops);
            if ((roll % 1000) as u32) < plan.fault_permille {
                let injected = match (roll / 1000) % 3 {
                    0 => Injected::ShortWrite,
                    1 => Injected::Eio,
                    _ => Injected::RenameFail,
                };
                return Ok(Some(injected));
            }
        }
        Ok(None)
    }
}

fn eio() -> io::Error {
    io::Error::other("faulty io: injected EIO")
}

fn enospc() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "faulty io: injected ENOSPC")
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("faulty io: no such file {}", path.display()),
    )
}

impl StoreIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<String> {
        match self.admit(false)? {
            None | Some(Injected::RenameFail) => {}
            Some(Injected::ShortWrite) | Some(Injected::Eio) => return Err(eio()),
        }
        let state = self.state.lock().unwrap();
        let bytes = state.files.get(path).ok_or_else(|| not_found(path))?;
        String::from_utf8(bytes.clone())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "faulty io: not UTF-8"))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let injected = self.admit(true)?;
        let mut state = self.state.lock().unwrap();
        match injected {
            Some(Injected::ShortWrite) => {
                let keep = (splitmix64(state.ops) as usize) % (bytes.len() + 1);
                state
                    .files
                    .insert(path.to_path_buf(), bytes[..keep].to_vec());
                Err(enospc())
            }
            Some(Injected::Eio) => Err(eio()),
            Some(Injected::RenameFail) | None => {
                state.files.insert(path.to_path_buf(), bytes.to_vec());
                Ok(())
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let injected = self.admit(true)?;
        let mut state = self.state.lock().unwrap();
        let ops = state.ops;
        let file = state.files.entry(path.to_path_buf()).or_default();
        match injected {
            Some(Injected::ShortWrite) => {
                let keep = (splitmix64(ops) as usize) % (bytes.len() + 1);
                file.extend_from_slice(&bytes[..keep]);
                Err(enospc())
            }
            Some(Injected::Eio) => Err(eio()),
            Some(Injected::RenameFail) | None => {
                file.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let injected = self.admit(true)?;
        let mut state = self.state.lock().unwrap();
        if injected.is_some() {
            return Err(eio());
        }
        let bytes = state.files.remove(from).ok_or_else(|| not_found(from))?;
        state.files.insert(to.to_path_buf(), bytes);
        state
            .pending_renames
            .push((from.to_path_buf(), to.to_path_buf()));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let injected = self.admit(true)?;
        let mut state = self.state.lock().unwrap();
        if injected.is_some() {
            return Err(eio());
        }
        state.files.remove(path).ok_or_else(|| not_found(path))?;
        state.durable.remove(path);
        Ok(())
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        match self.admit(true)? {
            Some(Injected::Eio) => Err(eio()),
            _ => Ok(()),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let injected = self.admit(true)?;
        let mut state = self.state.lock().unwrap();
        if injected.is_some() {
            return Err(eio());
        }
        let bytes = state
            .files
            .get(path)
            .ok_or_else(|| not_found(path))?
            .clone();
        state.durable.insert(path.to_path_buf(), bytes);
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let injected = self.admit(true)?;
        let mut state = self.state.lock().unwrap();
        if injected.is_some() {
            return Err(eio());
        }
        let renames = std::mem::take(&mut state.pending_renames);
        let (commit, keep): (Vec<_>, Vec<_>) = renames
            .into_iter()
            .partition(|(_, to)| to.parent() == Some(path));
        for (from, to) in commit {
            // The rename becomes durable with the content the source had
            // synced. Renaming a never-synced file publishes a torn record:
            // the directory entry lands but only part of the data does — the
            // corruption mode that checksums (and the fsync in
            // [`atomic_write`]) exist for.
            if let Some(bytes) = state.durable.remove(&from) {
                state.durable.insert(to, bytes);
            } else if let Some(bytes) = state.files.get(&to) {
                let torn = bytes[..bytes.len() / 2].to_vec();
                state.durable.insert(to, torn);
            }
        }
        state.pending_renames = keep;
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        match self.admit(false)? {
            None | Some(Injected::RenameFail) => {}
            Some(Injected::ShortWrite) | Some(Injected::Eio) => return Err(eio()),
        }
        let state = self.state.lock().unwrap();
        Ok(state
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect())
    }
}

/// Write `bytes` to `path` crash-safely: unique temporary file in the same
/// directory, fsync the data, rename over the target, fsync the directory.
/// A crash at any point leaves either the old record or the new one, never a
/// truncated hybrid; at worst a stale `*.tmp.*` file remains, which loaders
/// ignore.
pub fn atomic_write(io: &dyn StoreIo, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no parent"))?;
    io.create_dir_all(dir)?;
    static WRITER: AtomicU64 = AtomicU64::new(0);
    let unique = WRITER.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{unique}", std::process::id()));
    let publish = (|| {
        io.write(&tmp, bytes)?;
        io.sync_file(&tmp)?;
        io.rename(&tmp, path)
    })();
    if let Err(err) = publish {
        let _ = io.remove_file(&tmp);
        return Err(err);
    }
    io.sync_dir(dir)
}

/// SplitMix64 mix function: the deterministic core of the fault schedule.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_do_not_survive_a_crash() {
        let io = FaultyIo::reliable();
        io.write(Path::new("/s/a"), b"synced").unwrap();
        io.sync_file(Path::new("/s/a")).unwrap();
        io.write(Path::new("/s/b"), b"volatile").unwrap();
        io.crash();
        assert_eq!(io.read(Path::new("/s/a")).unwrap(), "synced");
        assert!(io.read(Path::new("/s/b")).is_err());
    }

    #[test]
    fn rename_needs_a_directory_sync_to_become_durable() {
        let io = FaultyIo::reliable();
        io.write(Path::new("/s/x.tmp"), b"payload").unwrap();
        io.sync_file(Path::new("/s/x.tmp")).unwrap();
        io.rename(Path::new("/s/x.tmp"), Path::new("/s/x")).unwrap();
        // Crash before sync_dir: the rename rolls back to the synced tmp file.
        let durable = io.durable_snapshot();
        assert!(durable.contains_key(Path::new("/s/x.tmp")));
        assert!(!durable.contains_key(Path::new("/s/x")));

        io.sync_dir(Path::new("/s")).unwrap();
        let durable = io.durable_snapshot();
        assert_eq!(durable.get(Path::new("/s/x")).unwrap(), b"payload");
        assert!(!durable.contains_key(Path::new("/s/x.tmp")));
    }

    #[test]
    fn atomic_write_is_all_or_nothing_across_crashes() {
        let io = FaultyIo::reliable();
        atomic_write(&io, Path::new("/s/rec.json"), b"v1").unwrap();
        io.crash();
        assert_eq!(io.read(Path::new("/s/rec.json")).unwrap(), "v1");
    }

    #[test]
    fn kill_point_fails_everything_until_revived() {
        let io = FaultyIo::with_plan(FaultPlan {
            kill_at_op: Some(3),
            ..FaultPlan::default()
        });
        io.write(Path::new("/s/a"), b"one").unwrap();
        io.sync_file(Path::new("/s/a")).unwrap();
        assert!(io.write(Path::new("/s/b"), b"two").is_err());
        assert!(io.read(Path::new("/s/a")).is_err());
        io.revive();
        assert_eq!(io.read(Path::new("/s/a")).unwrap(), "one");
        assert!(io.read(Path::new("/s/b")).is_err());
    }

    #[test]
    fn unwritable_backend_rejects_mutation_but_serves_reads() {
        let io = FaultyIo::reliable();
        io.write(Path::new("/s/a"), b"before").unwrap();
        io.set_plan(FaultPlan {
            unwritable: true,
            ..FaultPlan::default()
        });
        assert!(io.write(Path::new("/s/a"), b"after").is_err());
        assert_eq!(io.read(Path::new("/s/a")).unwrap(), "before");
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let run = |seed| {
            let io = FaultyIo::seeded(seed, 400);
            (0..64)
                .map(|i| {
                    io.write(Path::new("/s/f"), format!("{i}").as_bytes())
                        .is_ok()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn disk_io_round_trips_through_a_real_directory() {
        let dir = std::env::temp_dir().join(format!("lsqca-store-io-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let io = DiskIo;
        let path = dir.join("rec.json");
        atomic_write(&io, &path, b"{\"k\":1}").unwrap();
        assert_eq!(io.read(&path).unwrap(), "{\"k\":1}");
        io.append(&path, b"\n").unwrap();
        assert_eq!(io.read(&path).unwrap(), "{\"k\":1}\n");
        assert_eq!(io.list_dir(&dir).unwrap(), vec![path.clone()]);
        io.remove_file(&path).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
