//! Poisoned-point quarantine records and in-flight point markers.
//!
//! Both files live next to the shard journals in the store directory and are
//! written by the sharded-sweep supervisor machinery:
//!
//! * `quarantine-<shard>.log` — append-only list of result keys a supervisor
//!   gave up on after a shard died repeatedly while computing them. A worker
//!   reloads the union of all quarantine logs at startup and *skips* those
//!   points instead of wedging the sweep; the merge audit surfaces them in
//!   the final report.
//! * `inflight-<shard>.log` — the set of result keys a worker is currently
//!   computing, rewritten on every point boundary. After a worker dies the
//!   supervisor reads this post-mortem to attribute the crash to a point.
//!
//! Unlike the shard journal, quarantine keys are free-form result keys that
//! contain spaces, so the line format is `v1 <attempts> <key-to-end-of-line>`.

use crate::io::StoreIo;
use crate::journal::ShardJournal;
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Quarantine line format version tag.
const LINE_TAG: &str = "v1";

/// One quarantined sweep point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// How many times a worker died while this point was in flight.
    pub attempts: u32,
    /// The result key of the quarantined point.
    pub key: String,
}

/// Append-only quarantine record for one shard.
#[derive(Debug, Clone)]
pub struct QuarantineLog {
    io: Arc<dyn StoreIo>,
    path: PathBuf,
}

impl QuarantineLog {
    /// Quarantine log for shard `label` inside `dir`.
    ///
    /// `label` must have passed
    /// [`validate_shard_label`](crate::validate_shard_label); this
    /// constructor interpolates it into a filename verbatim.
    pub fn new(io: Arc<dyn StoreIo>, dir: &Path, label: &str) -> Self {
        QuarantineLog {
            io,
            path: dir.join(format!("quarantine-{label}.log")),
        }
    }

    /// The quarantine file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `path` names a quarantine log.
    pub fn is_quarantine_file(path: &Path) -> bool {
        matches!(
            path.file_name().and_then(|n| n.to_str()),
            Some(name) if name.starts_with("quarantine-") && name.ends_with(".log")
        )
    }

    /// Append one quarantined point and fsync, so the decision survives a
    /// supervisor crash.
    pub fn append(&self, entry: &QuarantineEntry) -> io::Result<()> {
        let line = format!("{LINE_TAG} {} {}\n", entry.attempts, entry.key);
        self.io.append(&self.path, line.as_bytes())?;
        self.io.sync_file(&self.path)
    }

    /// Load all entries; a missing log is an empty one. Malformed lines are
    /// skipped (the journal's torn-tail tolerance, applied here too).
    pub fn load(&self) -> io::Result<Vec<QuarantineEntry>> {
        let text = match self.io.read(&self.path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(err) => return Err(err),
        };
        Ok(Self::parse(&text))
    }

    /// Parse quarantine text: `v1 <attempts> <key...>` per line, keys keep
    /// their embedded spaces.
    pub fn parse(text: &str) -> Vec<QuarantineEntry> {
        let mut entries = Vec::new();
        for line in text.split('\n') {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            if let (Some(LINE_TAG), Some(attempts), Some(key)) =
                (parts.next(), parts.next(), parts.next())
            {
                if let Ok(attempts) = attempts.parse() {
                    if !key.is_empty() {
                        entries.push(QuarantineEntry {
                            attempts,
                            key: key.to_string(),
                        });
                    }
                }
            }
        }
        entries
    }
}

/// The union of quarantined result keys across every shard's quarantine log
/// in `dir`, sorted. Unreadable logs are skipped (best effort: quarantine is
/// an availability mechanism, never a correctness gate).
pub fn quarantined_keys(io: &dyn StoreIo, dir: &Path) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let Ok(entries) = io.list_dir(dir) else {
        return keys;
    };
    for path in entries {
        if !QuarantineLog::is_quarantine_file(&path) {
            continue;
        }
        if let Ok(text) = io.read(&path) {
            keys.extend(QuarantineLog::parse(&text).into_iter().map(|e| e.key));
        }
    }
    keys
}

/// The in-flight marker for one worker shard: the result keys currently being
/// computed, one per line, rewritten at every point boundary. Advisory — the
/// supervisor reads it post-mortem to attribute a crash to a point, so plain
/// (un-fsynced) writes are enough: file content survives process death, and a
/// machine crash merely loses the attribution, not any result.
#[derive(Debug, Clone)]
pub struct InflightLog {
    io: Arc<dyn StoreIo>,
    path: PathBuf,
}

impl InflightLog {
    /// In-flight marker for shard `label` inside `dir` (validated label, as
    /// for [`QuarantineLog::new`]).
    pub fn new(io: Arc<dyn StoreIo>, dir: &Path, label: &str) -> Self {
        InflightLog {
            io,
            path: dir.join(format!("inflight-{label}.log")),
        }
    }

    /// The marker file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replace the marker with `keys`, one per line.
    pub fn set(&self, keys: &BTreeSet<String>) -> io::Result<()> {
        let mut text = String::new();
        for key in keys {
            text.push_str(key);
            text.push('\n');
        }
        self.io.write(&self.path, text.as_bytes())
    }

    /// Read the marker; a missing file is an empty set.
    pub fn read(&self) -> BTreeSet<String> {
        match self.io.read(&self.path) {
            Ok(text) => text
                .split('\n')
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
            Err(_) => BTreeSet::new(),
        }
    }
}

/// Journal metadata the supervisor polls as a liveness heartbeat: the byte
/// length of the shard's journal plus its in-flight marker content. Any
/// change — a point published, a new point started — counts as progress.
pub fn progress_signature(io: &dyn StoreIo, dir: &Path, label: &str) -> (usize, String) {
    let journal_len = io
        .read(ShardJournal::new_path(dir, label).as_path())
        .map(|t| t.len())
        .unwrap_or(0);
    let inflight = io
        .read(InflightLog::new_path(dir, label).as_path())
        .unwrap_or_default();
    (journal_len, inflight)
}

impl ShardJournal {
    /// The path a journal for shard `label` in `dir` would live at, without
    /// constructing the journal.
    pub fn new_path(dir: &Path, label: &str) -> PathBuf {
        dir.join(format!("journal-{label}.log"))
    }
}

impl InflightLog {
    /// The path an in-flight marker for shard `label` in `dir` would live at.
    pub fn new_path(dir: &Path, label: &str) -> PathBuf {
        dir.join(format!("inflight-{label}.log"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FaultyIo;

    fn setup() -> (Arc<FaultyIo>, QuarantineLog) {
        let io = Arc::new(FaultyIo::reliable());
        let log = QuarantineLog::new(io.clone(), Path::new("/store"), "3");
        (io, log)
    }

    fn entry(key: &str) -> QuarantineEntry {
        QuarantineEntry {
            attempts: 3,
            key: key.to_string(),
        }
    }

    #[test]
    fn keys_with_spaces_round_trip() {
        let (_io, log) = setup();
        let spaced = entry("Ghz(GhzConfig { qubits: 4 })|experiment=Foo { bar: 1 }");
        log.append(&spaced).unwrap();
        log.append(&entry("plain-key")).unwrap();
        assert_eq!(log.load().unwrap(), vec![spaced, entry("plain-key")]);
    }

    #[test]
    fn missing_log_is_empty_and_entries_survive_crashes() {
        let (io, log) = setup();
        assert_eq!(log.load().unwrap(), Vec::new());
        log.append(&entry("k1")).unwrap();
        io.crash();
        assert_eq!(log.load().unwrap(), vec![entry("k1")]);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let (io, log) = setup();
        log.append(&entry("good")).unwrap();
        io.append(log.path(), b"v1 not-a-number key\nv9 3 key\nv1 2")
            .unwrap();
        assert_eq!(log.load().unwrap(), vec![entry("good")]);
    }

    #[test]
    fn quarantined_keys_unions_every_shard() {
        let io = Arc::new(FaultyIo::reliable());
        let dir = Path::new("/store");
        QuarantineLog::new(io.clone(), dir, "0")
            .append(&entry("b"))
            .unwrap();
        QuarantineLog::new(io.clone(), dir, "1")
            .append(&entry("a"))
            .unwrap();
        QuarantineLog::new(io.clone(), dir, "1")
            .append(&entry("b"))
            .unwrap();
        let keys: Vec<String> = quarantined_keys(io.as_ref(), dir).into_iter().collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn inflight_marker_replaces_and_reads_back() {
        let io = Arc::new(FaultyIo::reliable());
        let log = InflightLog::new(io.clone(), Path::new("/store"), "0");
        assert!(log.read().is_empty());
        let keys: BTreeSet<String> = ["k a", "k b"].iter().map(|s| s.to_string()).collect();
        log.set(&keys).unwrap();
        assert_eq!(log.read(), keys);
        log.set(&BTreeSet::new()).unwrap();
        assert!(log.read().is_empty());
    }

    #[test]
    fn file_name_classifiers_do_not_overlap() {
        let q = Path::new("/store/quarantine-0.log");
        let j = Path::new("/store/journal-0.log");
        assert!(QuarantineLog::is_quarantine_file(q));
        assert!(!QuarantineLog::is_quarantine_file(j));
        assert!(!ShardJournal::is_journal_file(q));
    }

    #[test]
    fn progress_signature_tracks_journal_and_inflight() {
        let io = Arc::new(FaultyIo::reliable());
        let dir = Path::new("/store");
        let before = progress_signature(io.as_ref(), dir, "0");
        let inflight = InflightLog::new(io.clone(), dir, "0");
        let mut keys = BTreeSet::new();
        keys.insert("k1".to_string());
        inflight.set(&keys).unwrap();
        let after = progress_signature(io.as_ref(), dir, "0");
        assert_ne!(before, after);
    }
}
