//! Compiler from logical circuits to LSQCA programs (Sec. VI-A).
//!
//! The paper compiles each benchmark in three steps, reproduced here:
//!
//! 1. **Lowering** — the circuit is expressed with Clifford gates (H, S, CNOT),
//!    T gates, preparations and single-qubit Pauli measurements
//!    ([`lsqca_circuit::lower_to_clifford_t`]).
//! 2. **T-gate decomposition** — every T gate becomes a magic-state
//!    teleportation: fetch a magic state (`PM`), measure Pauli-ZZ between the
//!    magic state and the target (`MZZ.M`, in-memory), measure the magic state
//!    out (`MX.C`), and apply the conditional phase correction (`SK` + `PH.M`).
//!    Following the paper's evaluation assumption the correction path is always
//!    emitted (always-taken branches).
//! 3. **Instruction selection** — single-qubit gates always use in-memory
//!    instructions; CNOTs become the runtime-optimized `CX` instruction; Pauli
//!    unitaries are absorbed into the Pauli frame and emit nothing.
//!
//! The result is an [`lsqca_isa::Program`] whose memory addresses coincide with
//! the circuit's qubit indices, so the workload's register structure can still
//! be used for hybrid-floorplan placement.
//!
//! # Example
//!
//! ```
//! use lsqca_circuit::Circuit;
//! use lsqca_compiler::{compile, CompilerConfig};
//!
//! let mut circuit = Circuit::new("t-gate", 1);
//! circuit.prep_z(0);
//! circuit.t(0);
//! circuit.measure_z(0);
//! let compiled = compile(&circuit, CompilerConfig::default());
//! // PZ.M, PM, MZZ.M, MX.C, SK, PH.M, MZ.M
//! assert_eq!(compiled.program.len(), 7);
//! assert!(compiled.program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lsqca_circuit::{lower_to_clifford_t, Circuit, DecomposeConfig, Gate};
use lsqca_isa::{ClassicalId, Instruction, MemAddr, Program, RegId};

/// Options controlling compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompilerConfig {
    /// Emit in-memory instructions for single-qubit gates and T-gate surgery
    /// (the paper's default). When disabled, every gate loads its operands into
    /// the CR and stores them back — useful as an ablation of Sec. V-C.
    pub use_in_memory_ops: bool,
    /// Options for lowering composite gates before instruction selection.
    pub decompose: DecomposeConfig,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            use_in_memory_ops: true,
            decompose: DecomposeConfig::default(),
        }
    }
}

/// The result of compiling a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    /// The LSQCA instruction stream.
    pub program: Program,
    /// Number of data qubits (SAM addresses) the program uses.
    pub num_qubits: u32,
    /// Number of T / T† gates translated into magic-state teleportations.
    pub t_gates: u64,
}

/// Internal helper carrying compilation state.
struct Lowering {
    program: Program,
    next_value: u32,
    next_magic_slot: u32,
    cr_slots: u32,
    use_in_memory: bool,
    t_gates: u64,
}

impl Lowering {
    fn fresh_value(&mut self) -> ClassicalId {
        let v = ClassicalId(self.next_value);
        self.next_value += 1;
        v
    }

    /// Round-robin CR slot used for transient magic states / loads, so that two
    /// independent teleportations can overlap up to the CR capacity.
    fn next_slot(&mut self) -> RegId {
        let slot = RegId(self.next_magic_slot % self.cr_slots);
        self.next_magic_slot += 1;
        slot
    }

    fn mem(q: u32) -> MemAddr {
        MemAddr(q)
    }

    fn emit_t_gate(&mut self, target: u32) {
        self.t_gates += 1;
        let slot = self.next_slot();
        let mem = Self::mem(target);
        let zz = self.fresh_value();
        let mx = self.fresh_value();
        self.program.push(Instruction::Pm { reg: slot });
        if self.use_in_memory {
            self.program.push(Instruction::MzzM {
                reg: slot,
                mem,
                out: zz,
            });
        } else {
            self.program.push(Instruction::Ld {
                mem,
                reg: self.other_slot(slot),
            });
            self.program.push(Instruction::MzzC {
                reg1: slot,
                reg2: self.other_slot(slot),
                out: zz,
            });
        }
        self.program.push(Instruction::MxC { reg: slot, out: mx });
        // Conditional phase correction; the evaluation always takes the branch.
        self.program.push(Instruction::Sk { cond: zz });
        if self.use_in_memory {
            self.program.push(Instruction::PhM { mem });
        } else {
            self.program.push(Instruction::PhC {
                reg: self.other_slot(slot),
            });
            self.program.push(Instruction::St {
                reg: self.other_slot(slot),
                mem,
            });
        }
    }

    fn other_slot(&self, slot: RegId) -> RegId {
        RegId((slot.0 + 1) % self.cr_slots)
    }

    fn emit_single_qubit(&mut self, gate: &Gate, qubit: u32) {
        let mem = Self::mem(qubit);
        if self.use_in_memory {
            let instr = match gate {
                Gate::PrepZ(_) => Instruction::PzM { mem },
                Gate::PrepX(_) => Instruction::PpM { mem },
                Gate::H(_) => Instruction::HdM { mem },
                Gate::S(_) | Gate::Sdg(_) => Instruction::PhM { mem },
                Gate::MeasureZ(_) => Instruction::MzM {
                    mem,
                    out: self.fresh_value(),
                },
                Gate::MeasureX(_) => Instruction::MxM {
                    mem,
                    out: self.fresh_value(),
                },
                _ => unreachable!("only single-qubit non-Pauli gates reach here"),
            };
            self.program.push(instr);
        } else {
            // Preparations are zero-latency and need no ancilla, so they stay
            // in place even in the load/store ablation mode: round-tripping a
            // freshly prepared state through the CR would displace the resident
            // qubit for no benefit.
            match gate {
                Gate::PrepZ(_) => {
                    self.program.push(Instruction::PzM { mem });
                    return;
                }
                Gate::PrepX(_) => {
                    self.program.push(Instruction::PpM { mem });
                    return;
                }
                _ => {}
            }
            let slot = self.next_slot();
            self.program.push(Instruction::Ld { mem, reg: slot });
            match gate {
                Gate::H(_) => {
                    self.program.push(Instruction::HdC { reg: slot });
                    self.program.push(Instruction::St { reg: slot, mem });
                }
                Gate::S(_) | Gate::Sdg(_) => {
                    self.program.push(Instruction::PhC { reg: slot });
                    self.program.push(Instruction::St { reg: slot, mem });
                }
                Gate::MeasureZ(_) => {
                    let v = self.fresh_value();
                    self.program.push(Instruction::MzC { reg: slot, out: v });
                }
                Gate::MeasureX(_) => {
                    let v = self.fresh_value();
                    self.program.push(Instruction::MxC { reg: slot, out: v });
                }
                _ => unreachable!("only single-qubit non-Pauli gates reach here"),
            }
        }
    }
}

/// Compiles `circuit` into an LSQCA program.
///
/// Composite gates (Toffoli, multi-controlled X, CZ) are lowered first; Pauli
/// unitaries are dropped (they are tracked in the Pauli frame and have
/// negligible latency, matching the paper's evaluation). Memory address `m_i`
/// corresponds to circuit qubit `i` (plus any ancillas introduced by lowering).
pub fn compile(circuit: &Circuit, config: CompilerConfig) -> CompiledProgram {
    let lowered = if circuit.is_lowered() {
        circuit.clone()
    } else {
        lower_to_clifford_t(circuit, config.decompose)
    };

    let mut state = Lowering {
        program: Program::new(lowered.name().to_string()),
        next_value: 0,
        next_magic_slot: 0,
        cr_slots: 2,
        use_in_memory: config.use_in_memory_ops,
        t_gates: 0,
    };

    for gate in lowered.gates() {
        match gate {
            Gate::X(_) | Gate::Y(_) | Gate::Z(_) => {
                // Pauli-frame update only; no instruction is emitted.
            }
            Gate::T(q) | Gate::Tdg(q) => state.emit_t_gate(*q),
            Gate::Cnot { control, target } => state.program.push(Instruction::Cx {
                control: Lowering::mem(*control),
                target: Lowering::mem(*target),
            }),
            Gate::Cz { a, b } => {
                // Lowering normally removes CZ; translate conservatively if not.
                state.program.push(Instruction::HdM {
                    mem: Lowering::mem(*b),
                });
                state.program.push(Instruction::Cx {
                    control: Lowering::mem(*a),
                    target: Lowering::mem(*b),
                });
                state.program.push(Instruction::HdM {
                    mem: Lowering::mem(*b),
                });
            }
            Gate::PrepZ(q)
            | Gate::PrepX(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::MeasureZ(q)
            | Gate::MeasureX(q) => state.emit_single_qubit(gate, *q),
            Gate::Toffoli { .. } | Gate::MultiControlledX { .. } => {
                unreachable!("composite gates are removed by lowering")
            }
        }
    }

    CompiledProgram {
        num_qubits: lowered.num_qubits(),
        t_gates: state.t_gates,
        program: state.program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsqca_isa::InstructionKind;

    fn in_memory() -> CompilerConfig {
        CompilerConfig::default()
    }

    fn load_store() -> CompilerConfig {
        CompilerConfig {
            use_in_memory_ops: false,
            ..CompilerConfig::default()
        }
    }

    #[test]
    fn t_gate_becomes_magic_state_teleportation() {
        let mut c = Circuit::new("t", 1);
        c.t(0);
        let compiled = compile(&c, in_memory());
        let mnemonics: Vec<_> = compiled.program.iter().map(|i| i.mnemonic()).collect();
        assert_eq!(mnemonics, vec!["PM", "MZZ.M", "MX.C", "SK", "PH.M"]);
        assert_eq!(compiled.t_gates, 1);
        assert!(compiled.program.validate().is_ok());
    }

    #[test]
    fn single_qubit_gates_use_in_memory_instructions() {
        let mut c = Circuit::new("sq", 2);
        c.prep_z(0);
        c.prep_x(1);
        c.h(0);
        c.s(1);
        c.sdg(1);
        c.measure_z(0);
        c.measure_x(1);
        let compiled = compile(&c, in_memory());
        for instr in compiled.program.iter() {
            assert!(
                instr.is_in_memory(),
                "{instr} should be an in-memory instruction"
            );
        }
        assert_eq!(compiled.program.len(), 7);
    }

    #[test]
    fn pauli_gates_are_absorbed_into_the_frame() {
        let mut c = Circuit::new("pauli", 1);
        c.x(0);
        c.y(0);
        c.z(0);
        let compiled = compile(&c, in_memory());
        assert!(compiled.program.is_empty());
    }

    #[test]
    fn cnot_becomes_the_optimized_cx_instruction() {
        let mut c = Circuit::new("cx", 2);
        c.cnot(0, 1);
        let compiled = compile(&c, in_memory());
        assert_eq!(compiled.program.len(), 1);
        assert_eq!(
            compiled.program.instructions()[0].kind(),
            InstructionKind::OptimizedUnitary
        );
    }

    #[test]
    fn toffoli_is_lowered_before_translation() {
        let mut c = Circuit::new("ccx", 3);
        c.toffoli(0, 1, 2);
        let compiled = compile(&c, in_memory());
        assert_eq!(compiled.t_gates, 7);
        let stats = compiled.program.stats();
        assert_eq!(stats.magic_state_count, 7);
        // 6 CNOTs become 6 CX instructions.
        assert_eq!(stats.kind_counts[&InstructionKind::OptimizedUnitary], 6);
        assert!(compiled.program.validate().is_ok());
    }

    #[test]
    fn load_store_mode_emits_explicit_memory_instructions() {
        let mut c = Circuit::new("ls", 1);
        c.h(0);
        c.t(0);
        let compiled = compile(&c, load_store());
        let stats = compiled.program.stats();
        assert!(stats.kind_counts[&InstructionKind::Memory] >= 2);
        assert!(compiled
            .program
            .iter()
            .any(|i| matches!(i, Instruction::HdC { .. })));
        assert!(compiled.program.validate().is_ok());
    }

    #[test]
    fn classical_values_are_unique() {
        let mut c = Circuit::new("meas", 3);
        c.t(0);
        c.t(1);
        c.measure_z(2);
        let compiled = compile(&c, in_memory());
        let mut outputs: Vec<_> = compiled
            .program
            .iter()
            .filter_map(|i| i.classical_output())
            .collect();
        let before = outputs.len();
        outputs.sort();
        outputs.dedup();
        assert_eq!(outputs.len(), before, "classical outputs must be unique");
    }

    #[test]
    fn magic_slots_alternate_for_independent_t_gates() {
        let mut c = Circuit::new("tt", 2);
        c.t(0);
        c.t(1);
        let compiled = compile(&c, in_memory());
        let slots: Vec<_> = compiled
            .program
            .iter()
            .filter_map(|i| match i {
                Instruction::Pm { reg } => Some(*reg),
                _ => None,
            })
            .collect();
        assert_eq!(slots.len(), 2);
        assert_ne!(slots[0], slots[1]);
    }

    #[test]
    fn memory_footprint_matches_the_circuit_width() {
        let mut c = Circuit::new("width", 4);
        for q in 0..4 {
            c.prep_z(q);
            c.h(q);
            c.measure_z(q);
        }
        let compiled = compile(&c, in_memory());
        assert_eq!(compiled.num_qubits, 4);
        assert_eq!(compiled.program.memory_footprint(), 4);
    }

    #[test]
    fn compiled_workloads_validate() {
        use lsqca_workloads::Benchmark;
        for benchmark in Benchmark::ALL {
            let circuit = benchmark.reduced_instance();
            let compiled = compile(&circuit, in_memory());
            assert!(
                compiled.program.validate().is_ok(),
                "{benchmark} failed validation"
            );
            assert!(!compiled.program.is_empty());
            let compiled_ls = compile(&circuit, load_store());
            assert!(
                compiled_ls.program.validate().is_ok(),
                "{benchmark} failed validation in load/store mode"
            );
        }
    }
}
