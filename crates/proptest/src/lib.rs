//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this repository has no access to a crate registry,
//! so this in-workspace crate provides the subset of the proptest API the
//! workspace's property tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range/tuple/collection strategies, `prop_oneof!`, and the `proptest!` test
//! macro with `name in strategy` bindings.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test PRNG (seeded from the test name), there is no shrinking, and
//! `prop_assert!`-style macros panic directly instead of returning a
//! `TestCaseError`. The number of cases per test defaults to 64 and can be
//! overridden with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The any-`bool` strategy (`proptest::bool::ANY`).
    pub const ANY: AnyBool = AnyBool;

    impl crate::strategy::Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values with a length drawn from `sizes`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Builds a strategy for `Vec`s of `element` values (`collection::vec`).
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.sizes.start as u64, self.sizes.end as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s with up to `sizes.end - 1` elements.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Builds a strategy for `HashSet`s of `element` values
    /// (`collection::hash_set`). Duplicate draws are dropped, so the set may
    /// come out smaller than the drawn size, like upstream under a low element
    /// cardinality.
    pub fn hash_set<S>(element: S, sizes: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, sizes }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = rng.in_range(self.sizes.start as u64, self.sizes.end as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The commonly used exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Unconditional property-test assertion; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]`-style function running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::cases();
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..10, 2..6),
            s in crate::collection::hash_set((0u32..4, 0u32..4), 0..20),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(s.len() <= 16, "at most 16 distinct pairs exist");
        }
    }

    #[test]
    fn oneof_draws_every_arm_and_map_applies() {
        let strat = prop_oneof![
            (0u32..1).prop_map(|_| 0u8),
            (0u32..1).prop_map(|_| 1u8),
            Just(2u8),
        ];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn deterministic_rng_reproduces_sequences() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
