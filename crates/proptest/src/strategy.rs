//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f` (`Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for storage in a heterogeneous [`Union`].
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice between strategies with the same value type (the engine
/// behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.in_range(0, self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}
