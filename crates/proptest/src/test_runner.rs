//! Deterministic case generation for the `proptest!` macro.

/// Number of cases each property test runs, from `PROPTEST_CASES` (default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A small, fast, deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds an RNG whose seed is derived from `name` (typically the test
    /// function name), so every test draws an independent but reproducible
    /// sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed offset.
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: hash ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_names_give_different_streams() {
        let mut a = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn in_range_is_inclusive_exclusive() {
        let mut rng = TestRng::deterministic("range");
        for _ in 0..1000 {
            let x = rng.in_range(5, 8);
            assert!((5..8).contains(&x));
        }
        assert_eq!(rng.in_range(3, 3), 3);
    }
}
