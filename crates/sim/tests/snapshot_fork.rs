//! Fork-equivalence: a copy-on-write fork against a fresh simulator.
//!
//! [`Simulator::fork`] promises that a fork is observationally a brand-new
//! simulator: same architectural state (grid cells, position tables,
//! checkout ledgers, vacancy rings, policy state), same ready tables, same
//! outcomes for every subsequent run — and full ownership, so killing or
//! further running the parent never disturbs a fork. These properties pin
//! that contract over random programs, floorplans, hot sets, and migration
//! policies, the same space the trace-engine shadow suite sweeps.

use lsqca_arch::{ArchConfig, FloorplanKind, PolicyKind};
use lsqca_isa::{ClassicalId, Instruction, MemAddr, Program, RegId};
use lsqca_lattice::QubitTag;
use lsqca_sim::Simulator;
use proptest::prelude::*;

/// Qubit space shared by the program and simulator strategies (small enough
/// that random instructions collide on qubits, banks, and CR slots).
const QUBITS: u32 = 24;

/// Every instruction variant over deliberately small operand spaces — the
/// same shape as the shadow-trace suite, so forks are exercised against
/// dependency chains, bank serialization, checkout churn, and illegal
/// sequences (typed-error equivalence included).
fn any_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    (
        0u32..21,
        0u32..QUBITS,
        0u32..QUBITS,
        0u32..6,
        0u32..6,
        0u32..8,
    )
        .prop_map(|(variant, m1, m2, r1, r2, v)| {
            let (mem, mem2) = (MemAddr(m1), MemAddr(m2));
            let (reg, reg2) = (RegId(r1), RegId(r2));
            let out = ClassicalId(v);
            match variant {
                0 => Ld { mem, reg },
                1 => St { reg, mem },
                2 => PzC { reg },
                3 => PpC { reg },
                4 => Pm { reg },
                5 => HdC { reg },
                6 => PhC { reg },
                7 => MxC { reg, out },
                8 => MzC { reg, out },
                9 => MxxC {
                    reg1: reg,
                    reg2,
                    out,
                },
                10 => MzzC {
                    reg1: reg,
                    reg2,
                    out,
                },
                11 => Sk { cond: out },
                12 => PzM { mem },
                13 => PpM { mem },
                14 => HdM { mem },
                15 => PhM { mem },
                16 => MxM { mem, out },
                17 => MzM { mem, out },
                18 => MxxM { reg, mem, out },
                19 => MzzM { reg, mem, out },
                _ => Cx {
                    control: mem,
                    target: mem2,
                },
            }
        })
}

fn any_program(name: &'static str) -> impl Strategy<Value = Program> {
    proptest::collection::vec(any_instruction(), 0..40).prop_map(move |instructions| {
        let mut program = Program::new(name);
        for instruction in instructions {
            program.push(instruction);
        }
        program
    })
}

fn any_arch() -> impl Strategy<Value = ArchConfig> {
    (
        prop_oneof![
            (1u32..3).prop_map(|banks| FloorplanKind::PointSam { banks }),
            (1u32..3).prop_map(|banks| FloorplanKind::DualPointSam { banks }),
            (1u32..5).prop_map(|banks| FloorplanKind::LineSam { banks }),
            Just(FloorplanKind::Conventional),
        ],
        1u32..4,
        0u32..3,
    )
        .prop_map(|(floorplan, factories, hybrid_tenths)| {
            ArchConfig::new(floorplan, factories)
                .with_hybrid_fraction(f64::from(hybrid_tenths) * 0.1)
        })
}

fn any_policy() -> impl Strategy<Value = Option<PolicyKind>> {
    prop_oneof![
        Just(None),
        Just(Some(PolicyKind::Static)),
        Just(Some(PolicyKind::Lru)),
        Just(Some(PolicyKind::FreqDecay)),
    ]
}

/// One builder invocation per simulator, so "fresh" always means "the same
/// configuration built from scratch".
fn build(arch: &ArchConfig, hot: &[QubitTag], policy: Option<PolicyKind>) -> Simulator {
    let mut builder = Simulator::builder(arch, QUBITS).hot_qubits(hot);
    if let Some(kind) = policy {
        builder = builder.migration_policy(kind.build());
    }
    builder.build().unwrap()
}

proptest! {
    /// The headline property: after replaying the same prefix, a fork of the
    /// warmed parent holds state bit-equivalent to a fresh simulator — grid
    /// cells and positions, checkout ledgers, vacancy rings, ready tables,
    /// and (Debug-rendered) policy state all compare equal, whether the
    /// prefix succeeded or failed part-way.
    #[test]
    fn fork_state_matches_a_fresh_simulator_replaying_the_prefix(
        prefix in any_program("prefix"),
        arch in any_arch(),
        hot in proptest::collection::vec(0u32..QUBITS, 0..4),
        policy in any_policy(),
    ) {
        let hot: Vec<QubitTag> = hot.into_iter().map(QubitTag).collect();
        let mut parent = build(&arch, &hot, policy);
        let mut fresh = build(&arch, &hot, policy);
        prop_assert!(parent.fork().state_eq(&fresh));
        let expected = fresh.execute(&prefix);
        let actual = parent.execute(&prefix);
        prop_assert_eq!(expected, actual);
        prop_assert!(parent.fork().state_eq(&fresh));
    }

    /// Fork-then-run equals reset-then-run: executing any program on a fork
    /// of a dirty parent produces exactly what a fresh simulator produces,
    /// because both start the run from the pristine architectural state.
    #[test]
    fn fork_then_run_equals_fresh_then_run(
        prefix in any_program("prefix"),
        program in any_program("main"),
        arch in any_arch(),
        hot in proptest::collection::vec(0u32..QUBITS, 0..4),
        policy in any_policy(),
    ) {
        let hot: Vec<QubitTag> = hot.into_iter().map(QubitTag).collect();
        let mut parent = build(&arch, &hot, policy);
        // Dirty the parent (possibly with a failing prefix) before forking.
        let _ = parent.execute(&prefix);
        let mut fork = parent.fork();
        let mut fresh = build(&arch, &hot, policy);
        prop_assert_eq!(fresh.execute(&program), fork.execute(&program));
        prop_assert!(fork.state_eq(&fresh));
    }

    /// Forks own their state: killing the parent right after the fork — while
    /// every page is still shared — leaves a fork that runs exactly like a
    /// fresh simulator. Running the parent further must not leak into the
    /// fork either.
    #[test]
    fn forks_survive_their_parent(
        program in any_program("main"),
        arch in any_arch(),
        hot in proptest::collection::vec(0u32..QUBITS, 0..4),
        policy in any_policy(),
    ) {
        let hot: Vec<QubitTag> = hot.into_iter().map(QubitTag).collect();
        let parent = build(&arch, &hot, policy);
        let mut orphan = parent.fork();
        drop(parent);
        let mut fresh = build(&arch, &hot, policy);
        prop_assert_eq!(fresh.execute(&program), orphan.execute(&program));

        // Sibling forks stay independent while the parent keeps running.
        let mut parent = build(&arch, &hot, policy);
        let mut sibling = parent.fork();
        let _ = parent.execute(&program);
        prop_assert_eq!(fresh.execute(&program), sibling.execute(&program));
    }
}
