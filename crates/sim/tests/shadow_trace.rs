//! Shadow-equivalence: the trace engine against the reference interpreter.
//!
//! Executing an [`ExecutionTrace`] must be observationally identical to
//! executing the [`Classified`] program it was lowered from — same
//! [`ExecutionStats`], same memory reference trace, same typed error at the
//! same instruction index — over random programs and random floorplan
//! configurations. The interpreter is the executable specification; these
//! properties are the contract that lets the trace engine's dispatch evolve
//! (flag tests, presized ready tables) without semantic drift.

use lsqca_arch::{ArchConfig, FloorplanKind, PolicyKind};
use lsqca_isa::{ClassicalId, ExecutionTrace, Instruction, LatencyTable, MemAddr, Program, RegId};
use lsqca_lattice::QubitTag;
use lsqca_sim::{Classified, SimConfig, Simulator};
use proptest::prelude::*;

/// Qubit space shared by the program and simulator strategies. Small enough
/// that random instructions collide on qubits, banks, and CR slots — the
/// interesting scheduling (and error) cases.
const QUBITS: u32 = 24;

/// Every instruction variant over deliberately small operand spaces, so a
/// ~40-instruction program exercises dependency chains, bank serialization,
/// skip guards, and illegal load/store sequences (typed-error equivalence).
fn any_instruction() -> impl Strategy<Value = Instruction> {
    use Instruction::*;
    (
        0u32..21,
        0u32..QUBITS,
        0u32..QUBITS,
        0u32..6,
        0u32..6,
        0u32..8,
    )
        .prop_map(|(variant, m1, m2, r1, r2, v)| {
            let (mem, mem2) = (MemAddr(m1), MemAddr(m2));
            let (reg, reg2) = (RegId(r1), RegId(r2));
            let out = ClassicalId(v);
            match variant {
                0 => Ld { mem, reg },
                1 => St { reg, mem },
                2 => PzC { reg },
                3 => PpC { reg },
                4 => Pm { reg },
                5 => HdC { reg },
                6 => PhC { reg },
                7 => MxC { reg, out },
                8 => MzC { reg, out },
                9 => MxxC {
                    reg1: reg,
                    reg2,
                    out,
                },
                10 => MzzC {
                    reg1: reg,
                    reg2,
                    out,
                },
                11 => Sk { cond: out },
                12 => PzM { mem },
                13 => PpM { mem },
                14 => HdM { mem },
                15 => PhM { mem },
                16 => MxM { mem, out },
                17 => MzM { mem, out },
                18 => MxxM { reg, mem, out },
                19 => MzzM { reg, mem, out },
                _ => Cx {
                    control: mem,
                    target: mem2,
                },
            }
        })
}

fn any_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(any_instruction(), 0..40).prop_map(|instructions| {
        let mut program = Program::new("shadow");
        for instruction in instructions {
            program.push(instruction);
        }
        program
    })
}

/// Every floorplan flavour at its legal bank counts, random factory counts,
/// and a hybrid fraction that sometimes carves out a conventional region.
fn any_arch() -> impl Strategy<Value = ArchConfig> {
    (
        prop_oneof![
            (1u32..3).prop_map(|banks| FloorplanKind::PointSam { banks }),
            (1u32..3).prop_map(|banks| FloorplanKind::DualPointSam { banks }),
            (1u32..5).prop_map(|banks| FloorplanKind::LineSam { banks }),
            Just(FloorplanKind::Conventional),
        ],
        1u32..4,
        0u32..3,
    )
        .prop_map(|(floorplan, factories, hybrid_tenths)| {
            ArchConfig::new(floorplan, factories)
                .with_hybrid_fraction(f64::from(hybrid_tenths) * 0.1)
        })
}

fn any_policy() -> impl Strategy<Value = Option<PolicyKind>> {
    prop_oneof![
        Just(None),
        Just(Some(PolicyKind::Static)),
        Just(Some(PolicyKind::Lru)),
        Just(Some(PolicyKind::FreqDecay)),
    ]
}

/// Builds the two identically configured simulators a comparison run needs.
fn pair(
    arch: &ArchConfig,
    hot: &[QubitTag],
    config: SimConfig,
    policy: Option<PolicyKind>,
    budget: Option<u64>,
) -> (Simulator, Simulator) {
    let build = || {
        let mut builder = Simulator::builder(arch, QUBITS)
            .hot_qubits(hot)
            .config(config)
            .instruction_budget(budget);
        if let Some(kind) = policy {
            builder = builder.migration_policy(kind.build());
        }
        builder.build().unwrap()
    };
    (build(), build())
}

proptest! {
    /// The headline property: over random programs, floorplans, hot sets,
    /// migration policies, sim configs, and instruction budgets, the trace
    /// engine's full `Result` — stats, memory trace, or typed error — equals
    /// the interpreter's. Error equality also pins the trace's instruction
    /// reconstruction (the offending `Instruction` in the error is rebuilt
    /// from trace records).
    #[test]
    fn trace_engine_matches_the_interpreter(
        program in any_program(),
        arch in any_arch(),
        hot in proptest::collection::vec(0u32..QUBITS, 0..4),
        policy in any_policy(),
        toggles in (0u32..2, 0u32..2),
        budget in prop_oneof![Just(None), (1u64..60).prop_map(Some)],
    ) {
        let hot: Vec<QubitTag> = hot.into_iter().map(QubitTag).collect();
        let config = SimConfig {
            record_trace: toggles.0 == 1,
            assume_infinite_magic: toggles.1 == 1,
        };
        let (mut reference, mut optimized) = pair(&arch, &hot, config, policy, budget);
        let classes = LatencyTable::paper().classify_program(&program);
        let classified = Classified::new(&program, &classes);
        let expected = reference.execute(&classified);
        let trace = lsqca_isa::lower(&program);
        let actual = optimized.execute(&trace);
        prop_assert_eq!(&expected, &actual);

        // Rerun both on their now-dirty simulators: the auto-reset paths of
        // the two engines must also agree (grown ready tables restored).
        let expected_again = reference.execute(&classified);
        let actual_again = optimized.execute(&trace);
        prop_assert_eq!(&expected, &expected_again);
        prop_assert_eq!(&expected_again, &actual_again);
    }

    /// A trace that round-trips through its on-disk text executes
    /// identically to the freshly lowered one — the artifact path
    /// (`ExecutionTrace::decode` on cache load) cannot drift from the
    /// in-memory lowering.
    #[test]
    fn decoded_traces_execute_like_lowered_ones(
        program in any_program(),
        arch in any_arch(),
    ) {
        let lowered = lsqca_isa::lower(&program);
        let decoded = ExecutionTrace::decode(&lowered.encode()).unwrap();
        prop_assert_eq!(&lowered, &decoded);
        let mut a = Simulator::builder(&arch, QUBITS).build().unwrap();
        let mut b = Simulator::builder(&arch, QUBITS).build().unwrap();
        prop_assert_eq!(a.execute(&lowered), b.execute(&decoded));
    }
}
