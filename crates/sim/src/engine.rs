//! The dependency-driven code-beat scheduler.

use crate::config::SimConfig;
use crate::metrics::ExecutionStats;
use crate::snapshot::{builds_counter, forks_counter, Snapshot};
use crate::trace::MemoryTrace;
use lsqca_arch::{ArchConfig, MagicStateSupply, MemorySystem, MigrationPolicy, MsfConfig};
use lsqca_isa::trace_compile::flags;
use lsqca_isa::{
    ClassicalId, ExecKind, ExecutionTrace, Instruction, LatencyClass, MemAddr, Program, RegId,
};
use lsqca_lattice::{Beats, LatticeError, Page, QubitTag};
use lsqca_workloads::CompiledWorkload;
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

/// Registry counter of simulation runs performed by this process (every
/// trace-engine execution — which [`Simulator::execute`] funnels `Program`,
/// `ExecutionTrace`, and `CompiledWorkload` inputs through — plus every
/// [`Classified`] reference-interpreter run). The warm-store acceptance
/// tests assert this stays flat across a sweep served entirely from the
/// result store.
fn runs_counter() -> &'static lsqca_telemetry::Counter {
    static COUNTER: OnceLock<&'static lsqca_telemetry::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| lsqca_telemetry::counter("sim.runs"))
}

/// Total simulation runs performed by this process so far (the registry's
/// `sim.runs` counter).
pub fn simulation_count() -> u64 {
    runs_counter().get()
}

/// Opt-in per-instance telemetry knobs, set on
/// [`SimulatorBuilder::telemetry`]. Separate from [`SimConfig`] for the same
/// reason the instruction budget is: telemetry observes a run, it is not an
/// experiment parameter, and must not perturb result-store keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Attribute hot-loop time per [`ExecKind`]: during a trace walk, record
    /// each instruction's beat duration into a local log2 histogram and
    /// flush it to the registry's `sim.beats.<kind>` histograms when the run
    /// completes. Off by default; the disabled path costs one predictable
    /// branch per instruction (guarded by `scripts/bench.sh`'s end-to-end
    /// regression gate).
    pub beat_attribution: bool,
}

/// The process-wide [`TelemetryConfig`] default: `LSQCA_BEAT_HISTOGRAM=1`
/// enables beat attribution for every simulator built without an explicit
/// [`SimulatorBuilder::telemetry`] override. Read once.
fn env_telemetry_config() -> TelemetryConfig {
    static CONFIG: OnceLock<TelemetryConfig> = OnceLock::new();
    *CONFIG.get_or_init(|| TelemetryConfig {
        beat_attribution: std::env::var("LSQCA_BEAT_HISTOGRAM").is_ok_and(|v| v == "1"),
    })
}

/// Local, non-atomic per-[`ExecKind`] log2 beat histogram. The hot loop
/// increments plain array slots; [`BeatBuckets::flush`] pays the registry
/// atomics once per run.
struct BeatBuckets {
    buckets: Box<[[u64; lsqca_telemetry::HISTOGRAM_BUCKETS]; ExecKind::ALL.len()]>,
    sums: [u64; ExecKind::ALL.len()],
}

impl BeatBuckets {
    fn new() -> BeatBuckets {
        BeatBuckets {
            buckets: Box::new([[0; lsqca_telemetry::HISTOGRAM_BUCKETS]; ExecKind::ALL.len()]),
            sums: [0; ExecKind::ALL.len()],
        }
    }

    #[inline]
    fn record(&mut self, kind: ExecKind, beats: Beats) {
        let value = beats.as_u64();
        self.buckets[kind as usize][lsqca_telemetry::bucket_index(value)] += 1;
        self.sums[kind as usize] += value;
    }

    fn flush(&self) {
        for kind in ExecKind::ALL {
            let buckets = &self.buckets[kind as usize];
            if buckets.iter().all(|&n| n == 0) {
                continue;
            }
            lsqca_telemetry::histogram(&format!("sim.beats.{}", kind.name()))
                .absorb(buckets, self.sums[kind as usize]);
        }
    }
}

/// An error raised by the simulator: an invalid configuration rejected at
/// construction, or a malformed instruction stream rejected during execution
/// (e.g. an in-memory operation on a qubit that is checked out to the CR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An instruction failed against the memory state.
    Instruction {
        /// Index of the offending instruction in the program.
        index: usize,
        /// The offending instruction; rendered as text only when the error is
        /// displayed, so the happy path never formats anything.
        instruction: Instruction,
        /// The underlying memory-system error.
        source: LatticeError,
    },
    /// The architecture bounds CR registers but provides zero register slots,
    /// so no `CX` (or any register-dependent instruction) could ever be
    /// scheduled. Detected at [`Simulator::try_new`] so a sweep fails before
    /// executing a single instruction instead of panicking mid-program.
    NoCrSlots {
        /// Debug rendering of the offending floorplan.
        floorplan: String,
    },
    /// The run exceeded the configured instruction budget (the sharded-sweep
    /// per-point timeout hook, set via `LSQCA_INSTRUCTION_BUDGET` or
    /// [`Simulator::set_instruction_budget`]): a deterministic stand-in for a
    /// wall-clock timeout, so a runaway point aborts the worker at the same
    /// instruction on every attempt and the supervisor can quarantine it.
    InstructionBudget {
        /// The budget that was exceeded, in instructions.
        budget: u64,
    },
}

impl SimError {
    /// Index of the offending instruction, when the error is tied to one.
    pub fn instruction_index(&self) -> Option<usize> {
        match self {
            SimError::Instruction { index, .. } => Some(*index),
            SimError::NoCrSlots { .. } | SimError::InstructionBudget { .. } => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Instruction {
                index,
                instruction,
                source,
            } => write!(f, "instruction {index} (`{instruction}`) failed: {source}"),
            SimError::NoCrSlots { floorplan } => write!(
                f,
                "floorplan {floorplan} bounds CR registers but provides no register slot"
            ),
            SimError::InstructionBudget { budget } => write!(
                f,
                "run exceeded the instruction budget of {budget} \
                 (LSQCA_INSTRUCTION_BUDGET)"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Instruction { source, .. } => Some(source),
            SimError::NoCrSlots { .. } | SimError::InstructionBudget { .. } => None,
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Aggregate execution metrics.
    pub stats: ExecutionStats,
    /// The memory reference trace (empty unless trace recording was enabled).
    pub trace: MemoryTrace,
}

/// The code-beat-accurate simulator.
///
/// A `Simulator` owns the architectural state (memory system, magic-state
/// supply, resource ready-times) for one run; use [`simulate`] for the common
/// one-shot case. Construct one with [`Simulator::builder`], execute any
/// input kind with [`Simulator::execute`], and clone a warmed instance in
/// O(1) with [`Simulator::fork`] — the bulk state lives in copy-on-write
/// [`Page`]s shared between forks until first write.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// The whole memory system behind one copy-on-write page. The page is
    /// detached exactly once per run — [`Simulator::execute_trace`] and
    /// [`Simulator::execute_classified`] call `make_mut` up front — so the
    /// hot loop mutates a plain `MemorySystem` with zero per-operation
    /// refcount traffic, while [`Simulator::fork`] and
    /// [`Simulator::snapshot`] stay reference-count bumps.
    memory: Page<MemorySystem>,
    magic: MagicStateSupply,
    config: SimConfig,
    unbounded_registers: bool,
    /// Dense per-qubit ready times. Copy-on-write so a fork of a warmed
    /// simulator shares the table until its first run writes it.
    mem_ready: Page<Vec<Beats>>,
    slot_ready: Vec<Beats>,
    /// Dense per-classical-value ready times. Copy-on-write like `mem_ready`.
    classical_ready: Page<Vec<Beats>>,
    bank_ready: Vec<Beats>,
    skip_guard: Option<Beats>,
    /// Reusable lowering scratch for [`Simulator::run`]: the execution trace
    /// of one program is lowered into this buffer and its column vectors are
    /// recycled across runs, so a simulator re-running ad-hoc programs
    /// allocates nothing in steady state. (`run_compiled` never touches it —
    /// artifacts carry their own pre-lowered trace.)
    scratch_trace: ExecutionTrace,
    /// The construction inputs, kept so [`Simulator::reset`] can rebuild the
    /// pristine architectural state on demand. Rebuilding costs the same as
    /// the original construction and nothing is cloned up front, so the
    /// dominant build-once-run-once path (every sweep iteration) pays zero
    /// for the reuse support.
    arch: ArchConfig,
    num_qubits: u32,
    hot_qubits: Vec<QubitTag>,
    /// True once `run` has mutated the architectural state.
    dirty: bool,
    /// Optional runtime hot-set migration policy. Consulted for every memory
    /// operand of every load/store/in-memory instruction; legal proposals are
    /// applied through [`MemorySystem::migrate`] and metered into
    /// `ExecutionStats::migration_beats`.
    migration: Option<Box<dyn MigrationPolicy>>,
    /// Abort a run after this many instructions with
    /// [`SimError::InstructionBudget`]. `None` (the default) never aborts.
    /// Deliberately *not* part of [`SimConfig`]: the budget is an execution
    /// guard, not an experiment parameter, and must not perturb result-store
    /// keys (which embed the experiment config).
    instruction_budget: Option<u64>,
    /// Opt-in observation knobs (beat attribution); like the budget, not
    /// part of [`SimConfig`] so it never perturbs result-store keys.
    telemetry: TelemetryConfig,
}

impl Simulator {
    /// Starts building a simulator for `num_qubits` data qubits on the given
    /// architecture — the one construction path. Every knob (hot set, config,
    /// migration policy, instruction budget, trace recording) is set on the
    /// [`SimulatorBuilder`], and the configuration is validated exactly once
    /// at [`SimulatorBuilder::build`].
    pub fn builder(arch: &ArchConfig, num_qubits: u32) -> SimulatorBuilder {
        SimulatorBuilder {
            arch: arch.clone(),
            num_qubits,
            hot_qubits: Vec::new(),
            config: SimConfig::default(),
            migration: None,
            instruction_budget: None,
            telemetry: None,
        }
    }

    /// Builds a simulator for `num_qubits` data qubits on the given architecture.
    ///
    /// `hot_qubits` lists the qubits pinned into the conventional region of a
    /// hybrid floorplan (see [`MemorySystem::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`SimulatorBuilder::build`]
    /// for the fallible form).
    #[deprecated(note = "use `Simulator::builder(arch, num_qubits).build()` instead")]
    pub fn new(
        arch: &ArchConfig,
        num_qubits: u32,
        hot_qubits: &[QubitTag],
        config: SimConfig,
    ) -> Self {
        match Self::construct(arch, num_qubits, hot_qubits, config) {
            Ok(simulator) => simulator,
            Err(err) => panic!("invalid simulator configuration: {err}"),
        }
    }

    /// Builds a simulator, rejecting invalid configurations with a typed
    /// [`SimError`] instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimulatorBuilder::build`].
    #[deprecated(note = "use `Simulator::builder(arch, num_qubits).build()` instead")]
    pub fn try_new(
        arch: &ArchConfig,
        num_qubits: u32,
        hot_qubits: &[QubitTag],
        config: SimConfig,
    ) -> Result<Self, SimError> {
        Self::construct(arch, num_qubits, hot_qubits, config)
    }

    /// The single validated construction path behind [`SimulatorBuilder`]
    /// and the deprecated constructors. Every successful pass counts as one
    /// full warm-up in [`crate::snapshot::warm_count`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCrSlots`] if the architecture bounds CR registers
    /// (a non-conventional floorplan with at least one bank) yet provides zero
    /// register slots, a state no instruction stream could execute under.
    fn construct(
        arch: &ArchConfig,
        num_qubits: u32,
        hot_qubits: &[QubitTag],
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let _span = lsqca_telemetry::span("sim.warm");
        let memory = MemorySystem::new(arch, num_qubits, hot_qubits);
        let magic = Self::build_magic(arch);
        let bank_count = memory.bank_count();
        // The register-slot count is the memory system's own CR accounting:
        // `effective_cr_slots` floors the configured count at
        // `MemorySystem::MIN_CR_SLOTS` because the minimal CR charged by
        // `cr_cells` (the six-cell block of Fig. 10a / the two line columns
        // of Fig. 10b) already contains two register cells. On CR-less
        // floorplans the value only sizes the scheduler's slot array — the
        // slots impose no constraint there (see `unbounded_registers`).
        let cr_slots = memory.effective_cr_slots() as usize;
        // The conventional baseline has no CR, so register slots impose no
        // constraint; a hybrid floorplan whose hot set covers every qubit
        // (f = 1) degenerates to the same baseline, matching the paper's
        // statement that the f = 1 endpoint is the conventional floorplan.
        let unbounded_registers = arch.floorplan.is_conventional() || bank_count == 0;
        if !unbounded_registers && cr_slots == 0 {
            return Err(SimError::NoCrSlots {
                floorplan: format!("{:?}", arch.floorplan),
            });
        }
        builds_counter().inc();
        Ok(Simulator {
            unbounded_registers,
            telemetry: env_telemetry_config(),
            arch: arch.clone(),
            num_qubits,
            hot_qubits: hot_qubits.to_vec(),
            dirty: false,
            migration: None,
            // The memory system goes behind one copy-on-write page, so `fork`
            // and `snapshot` are reference-count bumps. A fresh simulator
            // owns its page uniquely — no other handle exists — so the
            // first run's up-front detach is free.
            memory: Page::new(memory),
            magic,
            config,
            mem_ready: Page::new(vec![Beats::ZERO; num_qubits as usize]),
            slot_ready: vec![Beats::ZERO; cr_slots],
            classical_ready: Page::default(),
            bank_ready: vec![Beats::ZERO; bank_count],
            skip_guard: None,
            scratch_trace: ExecutionTrace::new(),
            instruction_budget: env_instruction_budget(),
        })
    }

    /// Overrides the instruction budget (see [`SimError::InstructionBudget`]).
    /// `None` disables the guard. The budget survives [`Simulator::reset`]:
    /// it belongs to the process, not to one run.
    #[deprecated(note = "set the budget via `SimulatorBuilder::instruction_budget` instead")]
    pub fn set_instruction_budget(&mut self, budget: Option<u64>) {
        self.instruction_budget = budget;
    }

    /// The magic-state supply for `arch`, shared by construction and reset.
    fn build_magic(arch: &ArchConfig) -> MagicStateSupply {
        MagicStateSupply::new(MsfConfig {
            factories: arch.factories,
            beats_per_state: 15,
            buffer_capacity: arch.magic_buffer_capacity(),
        })
    }

    /// The memory system being simulated (for density queries).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Attaches a runtime hot-set [`MigrationPolicy`]. The policy is
    /// (re)initialized with this simulator's qubit count and pinned hot set,
    /// here and on every [`Simulator::reset`], so consecutive runs each start
    /// from the compile-time hot set. Pass the boxed policy from
    /// [`lsqca_arch::PolicyKind::build`] or a custom implementation.
    #[deprecated(
        note = "attach the policy via `SimulatorBuilder::migration_policy` (or \
                `Simulator::fork_with_policy` on a warmed parent) instead"
    )]
    pub fn set_migration_policy(&mut self, policy: Box<dyn MigrationPolicy>) {
        self.attach_policy(policy);
    }

    /// [`Simulator::set_migration_policy`] without the deprecation: the shared
    /// attach path behind the builder, `fork_with_policy`, and the delegate.
    fn attach_policy(&mut self, mut policy: Box<dyn MigrationPolicy>) {
        policy.begin(self.num_qubits, &self.hot_qubits);
        self.migration = Some(policy);
    }

    /// Detaches the migration policy, if any.
    pub fn clear_migration_policy(&mut self) {
        self.migration = None;
    }

    /// The attached migration policy's name, if any.
    pub fn migration_policy_name(&self) -> Option<&'static str> {
        self.migration.as_deref().map(MigrationPolicy::name)
    }

    /// Restores the simulator to its just-constructed state: memory system,
    /// magic-state supply, every resource ready-time, and the skip guard.
    ///
    /// [`Simulator::execute`] calls this automatically when the simulator has
    /// already executed a program, so consecutive runs each start from the
    /// pristine architectural state rather than silently continuing from
    /// wherever the previous program left the memory. The restore rebuilds
    /// the memory system from the kept construction inputs: retaining a
    /// pristine page instead would alias the live one and force every
    /// build-once-run-once simulator — the dominant sweep path — to deep-copy
    /// it at its first (only) run, so explicit reuse pays for reuse here and
    /// the one-shot path pays nothing. Fresh starts for the batched sweeps
    /// come from [`Simulator::fork`]ing a warmed parent, not from `reset`.
    pub fn reset(&mut self) {
        self.memory = Page::new(MemorySystem::new(
            &self.arch,
            self.num_qubits,
            &self.hot_qubits,
        ));
        self.magic = Self::build_magic(&self.arch);
        Self::reset_table(&mut self.mem_ready, self.num_qubits as usize);
        // Restore the construction *length* too, not just the values: a
        // program touching a `RegId` beyond the CR grows `slot_ready`, and
        // the CX scheduler treats every entry as a claimable slot — leftover
        // grown entries would hand a rerun more CR slots than a fresh
        // simulator has.
        self.slot_ready.clear();
        self.slot_ready
            .resize(self.memory.effective_cr_slots() as usize, Beats::ZERO);
        Self::reset_table(&mut self.classical_ready, 0);
        for t in &mut self.bank_ready {
            *t = Beats::ZERO;
        }
        self.skip_guard = None;
        if let Some(policy) = &mut self.migration {
            policy.begin(self.num_qubits, &self.hot_qubits);
        }
        self.dirty = false;
    }

    /// Zeroes a copy-on-write ready table back to `len` entries: in place
    /// when the page is uniquely owned, by swapping in a fresh page when it
    /// is shared with a fork (copying just to overwrite would be waste).
    fn reset_table(table: &mut Page<Vec<Beats>>, len: usize) {
        match table.unique_mut() {
            Some(ready) => {
                ready.clear();
                ready.resize(len, Beats::ZERO);
            }
            None => table.set(vec![Beats::ZERO; len]),
        }
    }

    /// Copy-on-write fork: a new simulator sharing every page of this one's
    /// state — the whole memory system (grids, position tables, checkout
    /// ledgers, vacancy rings) behind one page, plus the dense ready tables
    /// — until the fork (or the parent) first writes it. The cost is
    /// O(pages), independent of qubit count and grid size, so a sweep warms
    /// one simulator per architecture and forks it per variant instead of
    /// re-running construction N times.
    ///
    /// The fork owns its state: dropping (or further running) the parent
    /// never disturbs it. An attached migration policy is cloned as-is;
    /// use [`Simulator::fork_with_policy`] to fork into a different policy
    /// variant in one step.
    pub fn fork(&self) -> Simulator {
        forks_counter().inc();
        let _span = lsqca_telemetry::span("sim.fork");
        let mut fork = self.clone();
        // The lowering scratch is per-instance working memory, not
        // architectural state; a fresh fork starts with an empty one.
        fork.scratch_trace = ExecutionTrace::new();
        fork
    }

    /// Forks (see [`Simulator::fork`]) and swaps the migration policy in the
    /// same step: `Some` attaches and initializes the policy on the fork,
    /// `None` detaches whatever the parent carried. This is the
    /// `run_batch` entry point — one warmed parent, N policy variants.
    pub fn fork_with_policy(&self, policy: Option<Box<dyn MigrationPolicy>>) -> Simulator {
        let mut fork = self.fork();
        match policy {
            Some(policy) => fork.attach_policy(policy),
            None => fork.migration = None,
        }
        fork
    }

    /// Captures the architectural and scheduler state as an O(pages)
    /// [`Snapshot`] handle (see the [`crate::snapshot`] module docs for the
    /// sharing semantics and what is deliberately excluded).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            memory: self.memory.clone(),
            magic: self.magic.clone(),
            mem_ready: self.mem_ready.clone(),
            slot_ready: self.slot_ready.clone(),
            classical_ready: self.classical_ready.clone(),
            bank_ready: self.bank_ready.clone(),
            skip_guard: self.skip_guard,
            dirty: self.dirty,
        }
    }

    /// Rewinds the simulator to a previously captured [`Snapshot`] — an
    /// O(pages) restore. An attached migration policy is re-initialized from
    /// the pinned hot set, exactly as [`Simulator::reset`] does.
    pub fn restore(&mut self, snapshot: &Snapshot) {
        self.memory = snapshot.memory.clone();
        self.magic = snapshot.magic.clone();
        self.mem_ready = snapshot.mem_ready.clone();
        self.slot_ready = snapshot.slot_ready.clone();
        self.classical_ready = snapshot.classical_ready.clone();
        self.bank_ready = snapshot.bank_ready.clone();
        self.skip_guard = snapshot.skip_guard;
        self.dirty = snapshot.dirty;
        if let Some(policy) = &mut self.migration {
            policy.begin(self.num_qubits, &self.hot_qubits);
        }
    }

    /// True when two simulators hold observationally identical run state:
    /// memory system, magic supply, every ready table, the skip guard, the
    /// dirty flag, and the (Debug-rendered) migration policy state. This is
    /// the equivalence the fork shadow proptests assert between a fork and a
    /// fresh simulator replaying the same prefix.
    #[doc(hidden)]
    pub fn state_eq(&self, other: &Simulator) -> bool {
        self.memory == other.memory
            && self.magic == other.magic
            && self.mem_ready == other.mem_ready
            && self.slot_ready == other.slot_ready
            && self.classical_ready == other.classical_ready
            && self.bank_ready == other.bank_ready
            && self.skip_guard == other.skip_guard
            && self.dirty == other.dirty
            && format!("{:?}", self.migration) == format!("{:?}", other.migration)
    }

    fn mem_ready(&self, m: MemAddr) -> Beats {
        self.mem_ready
            .get(m.index() as usize)
            .copied()
            .unwrap_or(Beats::ZERO)
    }

    fn set_mem_ready(&mut self, m: MemAddr, t: Beats) {
        let idx = m.index() as usize;
        let mem_ready = self.mem_ready.make_mut();
        if idx >= mem_ready.len() {
            mem_ready.resize(idx + 1, Beats::ZERO);
        }
        mem_ready[idx] = t;
    }

    fn slot_ready(&self, r: RegId) -> Beats {
        self.slot_ready
            .get(r.index() as usize)
            .copied()
            .unwrap_or(Beats::ZERO)
    }

    fn set_slot_ready(&mut self, r: RegId, t: Beats) {
        let idx = r.index() as usize;
        if idx >= self.slot_ready.len() {
            self.slot_ready.resize(idx + 1, Beats::ZERO);
        }
        self.slot_ready[idx] = t;
    }

    fn classical_ready(&self, v: ClassicalId) -> Beats {
        self.classical_ready
            .get(v.index() as usize)
            .copied()
            .unwrap_or(Beats::ZERO)
    }

    fn set_classical_ready(&mut self, v: ClassicalId, t: Beats) {
        let idx = v.index() as usize;
        let classical_ready = self.classical_ready.make_mut();
        if idx >= classical_ready.len() {
            classical_ready.resize(idx + 1, Beats::ZERO);
        }
        classical_ready[idx] = t;
    }

    fn tag(m: MemAddr) -> QubitTag {
        QubitTag(m.index())
    }

    /// True if the instruction occupies the SAM bank's scan cell / scan line.
    fn needs_scan_resource(instr: &Instruction) -> bool {
        matches!(
            instr,
            Instruction::Ld { .. }
                | Instruction::St { .. }
                | Instruction::HdM { .. }
                | Instruction::PhM { .. }
                | Instruction::MxxM { .. }
                | Instruction::MzzM { .. }
                | Instruction::Cx { .. }
        )
    }

    /// Executes any [`Executable`] input — the single run entry point.
    ///
    /// The input kind selects the engine path: a [`Program`] is lowered into
    /// the reusable scratch trace and executed through the trace engine, an
    /// [`ExecutionTrace`] or [`CompiledWorkload`] executes its pre-lowered
    /// trace directly (zero per-run lowering), and a [`Classified`] pair
    /// drives the retained reference interpreter. All paths share one
    /// contract: each call starts from the pristine architectural state — if
    /// the simulator has already run (even a run that failed part-way),
    /// [`Simulator::reset`] is applied first, so execution is deterministic
    /// under reuse instead of silently continuing from mutated memory and
    /// ready-time state.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the instruction stream is inconsistent with the
    /// memory state (for example, loading a qubit twice without storing it, or
    /// storing a qubit that was never checked out of its bank).
    pub fn execute(&mut self, input: &impl Executable) -> Result<SimOutcome, SimError> {
        input.execute_on(self)
    }

    /// Executes `program` and returns the outcome.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::execute`].
    #[deprecated(note = "use `Simulator::execute(&program)` instead")]
    pub fn run(&mut self, program: &Program) -> Result<SimOutcome, SimError> {
        self.execute_program(program)
    }

    /// Executes a [`CompiledWorkload`] artifact through its pre-lowered
    /// execution trace.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::execute`].
    #[deprecated(note = "use `Simulator::execute(&workload)` instead")]
    pub fn run_compiled(&mut self, workload: &CompiledWorkload) -> Result<SimOutcome, SimError> {
        self.execute_trace(workload.trace())
    }

    /// The [`Program`] engine path: lower into the engine's reusable scratch
    /// trace (the column vectors are recycled across runs), then execute
    /// through the trace engine. Callers holding a [`CompiledWorkload`] skip
    /// even the lowering — artifacts embed their trace.
    fn execute_program(&mut self, program: &Program) -> Result<SimOutcome, SimError> {
        let mut trace = std::mem::take(&mut self.scratch_trace);
        lsqca_isa::lower_into(program, &mut trace);
        let outcome = self.execute_trace(&trace);
        self.scratch_trace = trace;
        outcome
    }

    /// Executes `program` against an externally precompiled latency-class
    /// vector through the reference interpreter.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::execute`].
    ///
    /// # Panics
    ///
    /// Panics if `classes` is not parallel to the instruction stream.
    #[deprecated(note = "use `Simulator::execute(&Classified::new(program, classes))` instead")]
    pub fn run_classified(
        &mut self,
        program: &Program,
        classes: &[LatencyClass],
    ) -> Result<SimOutcome, SimError> {
        self.execute_classified(program, classes)
    }

    /// The [`Classified`] engine path — the **reference interpreter**,
    /// dispatching on `Instruction` enums per step.
    ///
    /// The production path is [`Simulator::execute_trace`]; this interpreter
    /// is retained as the executable specification the trace engine is
    /// checked against (the shadow-equivalence proptests in `tests/` and the
    /// `trace_dispatch` hot-path comparison both drive it directly).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is not parallel to the instruction stream; a
    /// mismatched vector means the caller is holding a stale artifact.
    fn execute_classified(
        &mut self,
        program: &Program,
        classes: &[LatencyClass],
    ) -> Result<SimOutcome, SimError> {
        assert_eq!(
            classes.len(),
            program.len(),
            "latency-class vector is not parallel to the program"
        );
        runs_counter().inc();
        if self.dirty {
            self.reset();
        }
        self.dirty = true;
        // Detach the copy-on-write memory page up front, so a fork pays its
        // copy here, once, and every `make_mut` at the access sites below
        // takes the unique-owner fast path.
        self.memory.make_mut();
        let mut stats = ExecutionStats {
            memory_density: self.memory.memory_density(),
            total_cells: self.memory.total_cells(),
            ..ExecutionStats::default()
        };
        let mut trace = MemoryTrace::new();
        let mut makespan = Beats::ZERO;

        for (index, instr) in program.iter().enumerate() {
            if let Some(budget) = self.instruction_budget {
                if index as u64 >= budget {
                    return Err(SimError::InstructionBudget { budget });
                }
            }
            let wrap = |source: LatticeError| SimError::Instruction {
                index,
                instruction: *instr,
                source,
            };

            // One-pass operand extraction: both lists are `Copy` and inline
            // (no heap allocation), computed once and reused for dependency
            // collection, bank serialization, and the ready-time updates below.
            let mems = instr.memory_operands();
            let regs = instr.register_operands();

            // Dependency collection.
            let mut start = self.skip_guard.take().unwrap_or(Beats::ZERO);
            for m in mems {
                start = start.max(self.mem_ready(m));
            }
            if !self.unbounded_registers {
                for r in regs {
                    start = start.max(self.slot_ready(r));
                }
            }
            if let Some(v) = instr.classical_input() {
                start = start.max(self.classical_ready(v));
            }

            // Bank (scan-resource) serialization. An instruction references at
            // most `MAX_OPERANDS` banks, so the scratch list lives inline on
            // the stack instead of in a per-instruction `Vec`.
            let mut banks = [0usize; lsqca_isa::MAX_OPERANDS];
            let mut bank_count = 0usize;
            if Self::needs_scan_resource(instr) {
                for m in mems {
                    if let Some(b) = self.memory.bank_of(Self::tag(m)) {
                        if !banks[..bank_count].contains(&b) {
                            banks[bank_count] = b;
                            bank_count += 1;
                            start = start.max(self.bank_ready[b]);
                        }
                    }
                }
            }

            // An optimized CX claims one CR slot for its surgery ancilla.
            let mut cx_slot: Option<usize> = None;
            if matches!(instr, Instruction::Cx { .. }) && !self.unbounded_registers {
                // Construction ([`Simulator::try_new`]) rejects the bounded-
                // registers-with-zero-slots state, so a slot always exists;
                // the `else` keeps the error typed instead of panicking if
                // that invariant is ever broken.
                let Some((slot, ready)) = self
                    .slot_ready
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, t)| t)
                else {
                    return Err(SimError::NoCrSlots {
                        floorplan: format!("{:?}", self.arch.floorplan),
                    });
                };
                start = start.max(ready);
                cx_slot = Some(slot);
            }

            // Runtime hot-set migration: the policy observes every memory
            // operand of every bank-touching instruction and may propose
            // promoting the accessed qubit over a conventional-region victim.
            // Proposals are applied *before* the access (so a promoted
            // qubit's access is already conventional-free) and only when the
            // swap is legal — for a store the operand is checked out, so the
            // proposal is observed-and-dropped. Migration movement plus the
            // policy's bookkeeping overhead delay this instruction and are
            // metered separately from `memory_access_beats`.
            let mut migration_delay = Beats::ZERO;
            if let Some(policy) = &mut self.migration {
                if Self::needs_scan_resource(instr) {
                    for m in mems {
                        let qubit = Self::tag(m);
                        let Some(victim) = policy.on_access(qubit, index as u64) else {
                            continue;
                        };
                        if self.memory.is_checked_out(qubit) {
                            continue;
                        }
                        if let Ok(cost) = self.memory.make_mut().migrate(qubit, victim) {
                            policy.applied(qubit, victim);
                            let total = cost + policy.overhead();
                            stats.migrations += 1;
                            stats.migration_beats += total;
                            migration_delay += total;
                        }
                    }
                }
            }

            // Duration.
            let duration = match *instr {
                Instruction::Ld { mem, .. } => {
                    stats.loads += 1;
                    let cost = self.memory.make_mut().load(Self::tag(mem)).map_err(wrap)?;
                    stats.memory_access_beats += cost;
                    cost
                }
                Instruction::St { mem, .. } => {
                    stats.stores += 1;
                    let cost = self.memory.make_mut().store(Self::tag(mem)).map_err(wrap)?;
                    stats.memory_access_beats += cost;
                    cost
                }
                Instruction::PzC { .. } | Instruction::PpC { .. } => Beats::ZERO,
                Instruction::Pm { .. } => {
                    stats.magic_states += 1;
                    let wait = if self.config.assume_infinite_magic {
                        Beats::ZERO
                    } else {
                        let available = self.magic.acquire(start);
                        available.saturating_sub(start)
                    };
                    stats.magic_wait_beats += wait;
                    // One beat to move the state from the MSF port into the CR.
                    wait + Beats(1)
                }
                Instruction::HdC { .. } => Beats(3),
                Instruction::PhC { .. } => Beats(2),
                Instruction::MxC { .. } | Instruction::MzC { .. } => Beats::ZERO,
                Instruction::MxxC { .. } | Instruction::MzzC { .. } => Beats(1),
                Instruction::Sk { .. } => Beats::ZERO,
                Instruction::PzM { .. } | Instruction::PpM { .. } => Beats::ZERO,
                Instruction::HdM { mem } => {
                    let seek = self
                        .memory
                        .make_mut()
                        .in_memory_seek(Self::tag(mem))
                        .map_err(wrap)?;
                    stats.memory_access_beats += seek;
                    seek + Beats(3)
                }
                Instruction::PhM { mem } => {
                    let seek = self
                        .memory
                        .make_mut()
                        .in_memory_seek(Self::tag(mem))
                        .map_err(wrap)?;
                    stats.memory_access_beats += seek;
                    seek + Beats(2)
                }
                Instruction::MxM { .. } | Instruction::MzM { .. } => Beats::ZERO,
                Instruction::MxxM { mem, .. } | Instruction::MzzM { mem, .. } => {
                    let access = self
                        .memory
                        .make_mut()
                        .in_memory_two_qubit_access(Self::tag(mem))
                        .map_err(wrap)?;
                    stats.memory_access_beats += access;
                    access + Beats(1)
                }
                Instruction::Cx { control, target } => {
                    // Runtime optimization (Sec. VI-A): load whichever operand is
                    // cheaper to fetch into the CR, access the other in memory,
                    // perform the two lattice-surgery measurements of the CNOT,
                    // and store the loaded operand back with the locality-aware
                    // policy — which parks it next to its partner, so repeated
                    // CNOTs over the same working set become cheap.
                    let (qc, qt) = (Self::tag(control), Self::tag(target));
                    let peek_c = self.memory.peek_load(qc).map_err(wrap)?;
                    let peek_t = self.memory.peek_load(qt).map_err(wrap)?;
                    let (loaded, other) = if peek_c <= peek_t { (qc, qt) } else { (qt, qc) };
                    let load = self.memory.make_mut().load(loaded).map_err(wrap)?;
                    let access = self
                        .memory
                        .make_mut()
                        .in_memory_two_qubit_access(other)
                        .map_err(wrap)?;
                    let store = self.memory.make_mut().store(loaded).map_err(wrap)?;
                    // The internal load/store pair is counted separately from
                    // explicit LD/ST instructions: `stats.loads`/`stats.stores`
                    // track the program text, `implicit_*` track what the CX
                    // expansion issued under the hood. Their beats land in
                    // `memory_access_beats` either way.
                    stats.implicit_loads += 1;
                    stats.implicit_stores += 1;
                    stats.memory_access_beats += load + access + store;
                    // MZZ with the ancilla, then MXX with the target.
                    load + access + Beats(2) + store
                }
            };

            let finish = start + migration_delay + duration;

            // Bookkeeping.
            stats.instruction_count += 1;
            if !classes[index].is_negligible() {
                stats.command_count += 1;
            }
            if instr.is_in_memory() {
                stats.in_memory_ops += 1;
            }
            for m in mems {
                if self.config.record_trace {
                    trace.record(m, start.as_u64());
                }
                self.set_mem_ready(m, finish);
            }
            for r in regs {
                self.set_slot_ready(r, finish);
            }
            if let Some(slot) = cx_slot {
                self.slot_ready[slot] = finish;
            }
            for &b in &banks[..bank_count] {
                self.bank_ready[b] = finish;
            }
            if let Some(v) = instr.classical_output() {
                self.set_classical_ready(v, finish);
            }
            if matches!(instr, Instruction::Sk { .. }) {
                self.skip_guard = Some(finish);
            }
            makespan = makespan.max(finish);
        }

        stats.total_beats = makespan;
        Ok(SimOutcome { stats, trace })
    }

    /// Executes a pre-lowered [`ExecutionTrace`] — the optimized engine path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::execute`].
    #[deprecated(note = "use `Simulator::execute(&trace)` instead")]
    pub fn run_trace(&mut self, trace: &ExecutionTrace) -> Result<SimOutcome, SimError> {
        self.execute_trace(trace)
    }

    /// The [`ExecutionTrace`] engine path — the optimized engine.
    ///
    /// The trace is a struct-of-arrays rendering of the instruction stream
    /// (see [`lsqca_isa::trace_compile`]): execution kind, fixed-beat charge,
    /// operand slots, and dependency flags are all resolved at lowering time,
    /// so this walk tests precomputed flag bits over flat arrays instead of
    /// re-matching `Instruction` variants per step. It is observationally
    /// identical to [`Simulator::execute_classified`] (the retained reference
    /// interpreter) — the shadow-equivalence proptests in `tests/` assert
    /// equality of the full outcome, errors included, over random programs
    /// and floorplans. The offending instruction in a
    /// [`SimError::Instruction`] is reconstructed from the trace record, so
    /// errors render identically to the interpreter's.
    fn execute_trace(&mut self, trace: &ExecutionTrace) -> Result<SimOutcome, SimError> {
        runs_counter().inc();
        if self.dirty {
            self.reset();
        }
        self.dirty = true;

        // Detach the copy-on-write ready tables up front — this run writes
        // them unconditionally, so a fork pays its page copies here, once,
        // and the hot loop below indexes plain vectors. Presize them so the
        // loop needs no per-write grow checks, plus one scratch slot past
        // every real operand: absent operands read slot 0 under a zero mask
        // and write the scratch slot, so the dependency pass needs no
        // per-operand branches at all. Reads of never-written entries return
        // `Beats::ZERO` either way, so sizing up front is observationally
        // free. `slot_ready` deliberately keeps its lazy growth instead: the
        // CX slot claim scans the *current* table, and presizing it would
        // hand CXs slots the program has not touched yet.
        let mem_bound = trace.mem_bound() as usize;
        let mem_ready_table = self.mem_ready.make_mut();
        if mem_ready_table.len() < mem_bound + 1 {
            mem_ready_table.resize(mem_bound + 1, Beats::ZERO);
        }
        // Any index past every real operand works as the write sink: nothing
        // in this run reads indices at or above `mem_bound`.
        let mem_scratch = mem_ready_table.len() - 1;
        let classical_bound = trace.classical_bound() as usize;
        let classical_ready_table = self.classical_ready.make_mut();
        if classical_ready_table.len() < classical_bound + 1 {
            classical_ready_table.resize(classical_bound + 1, Beats::ZERO);
        }
        let classical_scratch = classical_ready_table.len() - 1;

        let mut stats = ExecutionStats {
            memory_density: self.memory.memory_density(),
            total_cells: self.memory.total_cells(),
            ..ExecutionStats::default()
        };
        let mut mem_trace = MemoryTrace::new();
        let mut makespan = Beats::ZERO;
        let budget = self.instruction_budget.unwrap_or(u64::MAX);
        let record_trace = self.config.record_trace;
        let bounded_registers = !self.unbounded_registers;
        let infinite_magic = self.config.assume_infinite_magic;
        let migrating = self.migration.is_some();
        // Opt-in beat attribution: a run-local, non-atomic histogram so the
        // loop below pays one predictable `Option` branch when disabled and
        // plain array increments when enabled; the registry atomics are paid
        // once at flush, after a successful walk.
        let mut beat_buckets = self.telemetry.beat_attribution.then(BeatBuckets::new);

        // With a single SAM bank and no conventional region every memory
        // operand resolves to bank 0 (residence is constant over a run:
        // checkout does not retag, and hot-set migration only exists on
        // hybrid floorplans, which have conventional residents). The scan
        // pass then degenerates to one ready-slot — no per-operand residence
        // lookups. Out-of-range operands still error identically: the bank
        // pass result is discarded when the memory access below rejects them.
        let uniform_bank = self.memory.bank_count() == 1 && self.memory.conventional_qubits() == 0;
        // With no banks at all (conventional floorplan) no operand can ever
        // resolve to one, so the scan pass is skipped outright.
        let no_banks = self.memory.bank_count() == 0;

        let len = trace.len();
        let exec = &trace.exec_kinds()[..len];
        let flag = &trace.flag_bits()[..len];
        let fixed = &trace.fixed_beats()[..len];
        let mem0 = &trace.mem0()[..len];
        let mem1 = &trace.mem1()[..len];
        let reg0 = &trace.reg0()[..len];
        let reg1 = &trace.reg1()[..len];
        let cio = &trace.cio()[..len];

        // The skip guard lives in a register for the duration of the walk;
        // it only ever gates the immediately following record.
        let mut guard = self.skip_guard.take().unwrap_or(Beats::ZERO);

        // Disjoint field borrows: with the ready tables split off from the
        // memory system and magic supply, the table pointers and lengths can
        // stay in registers across the opaque `&mut` memory calls below. A
        // `self.`-qualified loop would have to re-load them after every such
        // call, since from the compiler's view any `&mut self` call might
        // resize them.
        let Simulator {
            memory,
            magic,
            migration,
            mem_ready,
            slot_ready,
            classical_ready,
            bank_ready,
            arch,
            ..
        } = self;
        // Already detached above, so these are the unique-owner fast path:
        // plain `&mut Vec<Beats>` for the rest of the walk.
        let mem_ready = mem_ready.make_mut();
        let classical_ready = classical_ready.make_mut();
        // Detach the memory page once — a fork pays its whole-system copy
        // here — and the loop below mutates a plain `&mut MemorySystem`,
        // byte-for-byte the pre-copy-on-write hot path.
        let memory = memory.make_mut();

        for index in 0..trace.len() {
            if index as u64 >= budget {
                return Err(SimError::InstructionBudget { budget });
            }
            let fl = flag[index];
            let kind = exec[index];
            // The instruction is only rendered on the (cold) error path.
            let wrap = |source: LatticeError| SimError::Instruction {
                index,
                instruction: trace.instruction(index),
                source,
            };

            let has_m0 = fl & flags::HAS_MEM0 != 0;
            let has_m1 = fl & flags::HAS_MEM1 != 0;
            let m0 = mem0[index];
            let m1 = mem1[index];

            // Dependency collection, branchless: absent operand slots encode
            // as 0 (see `trace_compile`), so the table read is always in
            // bounds, and a zero mask drops it below any real ready time.
            let dep0 = mem_ready[m0 as usize].0 & (has_m0 as u64).wrapping_neg();
            let dep1 = mem_ready[m1 as usize].0 & (has_m1 as u64).wrapping_neg();
            let depc = classical_ready[cio[index] as usize].0
                & ((fl & flags::HAS_CIN != 0) as u64).wrapping_neg();
            let mut start = Beats(guard.0.max(dep0).max(dep1).max(depc));
            guard = Beats::ZERO;
            if bounded_registers {
                if fl & flags::HAS_REG0 != 0 {
                    let ready = slot_ready
                        .get(reg0[index] as usize)
                        .copied()
                        .unwrap_or(Beats::ZERO);
                    start = start.max(ready);
                }
                if fl & flags::HAS_REG1 != 0 {
                    let ready = slot_ready
                        .get(reg1[index] as usize)
                        .copied()
                        .unwrap_or(Beats::ZERO);
                    start = start.max(ready);
                }
            }

            // Bank (scan-resource) serialization.
            let mut banks = [0usize; lsqca_isa::MAX_OPERANDS];
            let mut bank_count = 0usize;
            if fl & flags::NEEDS_SCAN != 0 && !no_banks {
                if uniform_bank {
                    bank_count = 1;
                    start = start.max(bank_ready[0]);
                } else {
                    if has_m0 {
                        if let Some(b) = memory.bank_of(QubitTag(m0)) {
                            banks[0] = b;
                            bank_count = 1;
                            start = start.max(bank_ready[b]);
                        }
                    }
                    if has_m1 {
                        if let Some(b) = memory.bank_of(QubitTag(m1)) {
                            if !banks[..bank_count].contains(&b) {
                                banks[bank_count] = b;
                                bank_count += 1;
                                start = start.max(bank_ready[b]);
                            }
                        }
                    }
                }
            }

            // An optimized CX claims one CR slot for its surgery ancilla.
            let mut cx_slot: Option<usize> = None;
            if kind == ExecKind::Cx && bounded_registers {
                let Some((slot, ready)) = slot_ready
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by_key(|&(_, t)| t)
                else {
                    return Err(SimError::NoCrSlots {
                        floorplan: format!("{:?}", arch.floorplan),
                    });
                };
                start = start.max(ready);
                cx_slot = Some(slot);
            }

            // Runtime hot-set migration (see `run_classified` for the
            // policy contract — proposals observed per memory operand,
            // applied before the access, dropped when checked out).
            let mut migration_delay = Beats::ZERO;
            if migrating && fl & flags::NEEDS_SCAN != 0 {
                if let Some(policy) = migration.as_mut() {
                    // Canonical operand order: control before target for CX.
                    for (present, m) in [(has_m0, m0), (has_m1, m1)] {
                        if !present {
                            continue;
                        }
                        let qubit = QubitTag(m);
                        let Some(victim) = policy.on_access(qubit, index as u64) else {
                            continue;
                        };
                        if memory.is_checked_out(qubit) {
                            continue;
                        }
                        if let Ok(cost) = memory.migrate(qubit, victim) {
                            policy.applied(qubit, victim);
                            let total = cost + policy.overhead();
                            stats.migrations += 1;
                            stats.migration_beats += total;
                            migration_delay += total;
                        }
                    }
                }
            }

            // Duration: one match on the pre-resolved execution kind, with
            // the per-variant fixed-beat charges read from the trace.
            let duration = match kind {
                ExecKind::Negligible | ExecKind::Skip => Beats::ZERO,
                ExecKind::Fixed => Beats(u64::from(fixed[index])),
                ExecKind::Load => {
                    stats.loads += 1;
                    let cost = memory.load(QubitTag(m0)).map_err(wrap)?;
                    stats.memory_access_beats += cost;
                    cost
                }
                ExecKind::Store => {
                    stats.stores += 1;
                    let cost = memory.store(QubitTag(m0)).map_err(wrap)?;
                    stats.memory_access_beats += cost;
                    cost
                }
                ExecKind::Magic => {
                    stats.magic_states += 1;
                    let wait = if infinite_magic {
                        Beats::ZERO
                    } else {
                        let available = magic.acquire(start);
                        available.saturating_sub(start)
                    };
                    stats.magic_wait_beats += wait;
                    // One beat to move the state from the MSF port into the CR.
                    wait + Beats(u64::from(fixed[index]))
                }
                ExecKind::Seek => {
                    let seek = memory.in_memory_seek(QubitTag(m0)).map_err(wrap)?;
                    stats.memory_access_beats += seek;
                    seek + Beats(u64::from(fixed[index]))
                }
                ExecKind::TwoQubitAccess => {
                    let access = memory
                        .in_memory_two_qubit_access(QubitTag(m0))
                        .map_err(wrap)?;
                    stats.memory_access_beats += access;
                    access + Beats(u64::from(fixed[index]))
                }
                ExecKind::Cx => {
                    // Runtime optimization (Sec. VI-A): load the cheaper
                    // operand, access the other in memory, store the loaded
                    // one back, as one fused memory call (see
                    // `run_classified` for the unfused executable spec).
                    let (load, access, store) =
                        memory.cx_access(QubitTag(m0), QubitTag(m1)).map_err(wrap)?;
                    stats.implicit_loads += 1;
                    stats.implicit_stores += 1;
                    stats.memory_access_beats += load + access + store;
                    // MZZ with the ancilla, then MXX with the target.
                    load + access + Beats(u64::from(fixed[index])) + store
                }
            };

            let finish = start + migration_delay + duration;
            if let Some(beats) = beat_buckets.as_mut() {
                beats.record(kind, duration);
            }

            // Bookkeeping: flag tests instead of instruction re-matching.
            // Ready-table writes are unconditional — an absent operand is
            // steered to the scratch slot past every real index, which is
            // never read, so no write needs a branch.
            stats.instruction_count += 1;
            stats.command_count += u64::from(kind != ExecKind::Negligible);
            stats.in_memory_ops += u64::from(fl & flags::IN_MEMORY != 0);
            if record_trace {
                if has_m0 {
                    mem_trace.record(MemAddr(m0), start.as_u64());
                }
                if has_m1 {
                    mem_trace.record(MemAddr(m1), start.as_u64());
                }
            }
            let w0 = if has_m0 { m0 as usize } else { mem_scratch };
            let w1 = if has_m1 { m1 as usize } else { mem_scratch };
            mem_ready[w0] = finish;
            mem_ready[w1] = finish;
            if fl & flags::HAS_REG0 != 0 {
                let idx = reg0[index] as usize;
                if idx >= slot_ready.len() {
                    slot_ready.resize(idx + 1, Beats::ZERO);
                }
                slot_ready[idx] = finish;
            }
            if fl & flags::HAS_REG1 != 0 {
                let idx = reg1[index] as usize;
                if idx >= slot_ready.len() {
                    slot_ready.resize(idx + 1, Beats::ZERO);
                }
                slot_ready[idx] = finish;
            }
            if let Some(slot) = cx_slot {
                slot_ready[slot] = finish;
            }
            if bank_count != 0 {
                let b = if uniform_bank { 0 } else { banks[0] };
                bank_ready[b] = finish;
                if bank_count == 2 {
                    bank_ready[banks[1]] = finish;
                }
            }
            let wc = if fl & flags::HAS_COUT != 0 {
                cio[index] as usize
            } else {
                classical_scratch
            };
            classical_ready[wc] = finish;
            if kind == ExecKind::Skip {
                guard = finish;
            }
            makespan = makespan.max(finish);
        }

        stats.total_beats = makespan;
        if let Some(beats) = beat_buckets {
            beats.flush();
        }
        Ok(SimOutcome {
            stats,
            trace: mem_trace,
        })
    }
}

mod sealed {
    /// The seal on [`Executable`](super::Executable): the set of input kinds
    /// the simulator can execute is fixed here, so the engine paths stay
    /// private and downstream code cannot smuggle in a fifth dispatch arm.
    pub trait Sealed {}

    impl Sealed for lsqca_isa::Program {}
    impl Sealed for lsqca_isa::ExecutionTrace {}
    impl Sealed for lsqca_workloads::CompiledWorkload {}
    impl Sealed for super::Classified<'_> {}
}

/// An input the simulator can execute through [`Simulator::execute`] — the
/// single run entry point.
///
/// The trait is sealed: the implementors are exactly [`Program`] (lowered
/// into the engine's scratch trace per run), [`ExecutionTrace`] and
/// [`CompiledWorkload`] (pre-lowered, executed directly), and [`Classified`]
/// (the reference interpreter). Each selects its engine path itself, so
/// callers never pick — or mismatch — a `run_*` variant again.
pub trait Executable: sealed::Sealed {
    /// Dispatches `simulator` onto the engine path for this input kind.
    #[doc(hidden)]
    fn execute_on(&self, simulator: &mut Simulator) -> Result<SimOutcome, SimError>;
}

impl Executable for Program {
    fn execute_on(&self, simulator: &mut Simulator) -> Result<SimOutcome, SimError> {
        simulator.execute_program(self)
    }
}

impl Executable for ExecutionTrace {
    fn execute_on(&self, simulator: &mut Simulator) -> Result<SimOutcome, SimError> {
        simulator.execute_trace(self)
    }
}

impl Executable for CompiledWorkload {
    fn execute_on(&self, simulator: &mut Simulator) -> Result<SimOutcome, SimError> {
        simulator.execute_trace(self.trace())
    }
}

/// A program paired with its precompiled latency-class vector: executing it
/// drives the retained **reference interpreter** instead of the trace
/// engine. This is the executable specification the shadow-equivalence
/// proptests and the `trace_dispatch` hot-path comparison check the
/// optimized engine against.
#[derive(Debug, Clone, Copy)]
pub struct Classified<'a> {
    program: &'a Program,
    classes: &'a [LatencyClass],
}

impl<'a> Classified<'a> {
    /// Pairs `program` with its latency-class vector. The vector's length is
    /// checked at execution time, not here, so construction is free.
    pub fn new(program: &'a Program, classes: &'a [LatencyClass]) -> Self {
        Classified { program, classes }
    }
}

impl Executable for Classified<'_> {
    fn execute_on(&self, simulator: &mut Simulator) -> Result<SimOutcome, SimError> {
        simulator.execute_classified(self.program, self.classes)
    }
}

/// Builder for [`Simulator`] — the one construction path, validating the
/// whole configuration exactly once at [`SimulatorBuilder::build`].
///
/// ```
/// use lsqca_arch::{ArchConfig, FloorplanKind};
/// use lsqca_sim::Simulator;
///
/// let arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
/// let simulator = Simulator::builder(&arch, 16).build().unwrap();
/// assert!(simulator.memory().total_cells() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorBuilder {
    arch: ArchConfig,
    num_qubits: u32,
    hot_qubits: Vec<QubitTag>,
    config: SimConfig,
    migration: Option<Box<dyn MigrationPolicy>>,
    /// `Some(budget)` overrides the process-wide `LSQCA_INSTRUCTION_BUDGET`
    /// default (including `Some(None)` = explicitly unguarded); `None`
    /// inherits it.
    instruction_budget: Option<Option<u64>>,
    /// `Some` overrides the process-wide `LSQCA_BEAT_HISTOGRAM` default;
    /// `None` inherits it.
    telemetry: Option<TelemetryConfig>,
}

impl SimulatorBuilder {
    /// Pins `hot` into the conventional region of a hybrid floorplan (see
    /// [`MemorySystem::new`]).
    pub fn hot_qubits(mut self, hot: &[QubitTag]) -> Self {
        self.hot_qubits = hot.to_vec();
        self
    }

    /// Replaces the whole [`SimConfig`] (the trace-recording and
    /// infinite-magic knobs below are shorthands for its fields).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Records the memory reference trace during runs
    /// ([`SimConfig::with_trace`] folded into the builder).
    pub fn record_trace(mut self) -> Self {
        self.config.record_trace = true;
        self
    }

    /// Models an unbounded magic-state supply (the motivation-study mode).
    pub fn infinite_magic(mut self) -> Self {
        self.config.assume_infinite_magic = true;
        self
    }

    /// Aborts runs after `budget` instructions with
    /// [`SimError::InstructionBudget`]; `None` disables the guard, including
    /// the process-wide `LSQCA_INSTRUCTION_BUDGET` default that otherwise
    /// applies.
    pub fn instruction_budget(mut self, budget: Option<u64>) -> Self {
        self.instruction_budget = Some(budget);
        self
    }

    /// Sets the [`TelemetryConfig`] for this instance, overriding the
    /// process-wide `LSQCA_BEAT_HISTOGRAM` default (in either direction).
    /// Telemetry observes runs without affecting results or result-store
    /// keys.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a runtime hot-set [`MigrationPolicy`]; it is initialized
    /// with the qubit count and pinned hot set at build time. Pass the boxed
    /// policy from [`lsqca_arch::PolicyKind::build`] or a custom
    /// implementation.
    pub fn migration_policy(mut self, policy: Box<dyn MigrationPolicy>) -> Self {
        self.migration = Some(policy);
        self
    }

    /// Validates the configuration and builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCrSlots`] if the architecture bounds CR
    /// registers (a non-conventional floorplan with at least one bank) yet
    /// provides zero register slots, a state no instruction stream could
    /// execute under.
    pub fn build(self) -> Result<Simulator, SimError> {
        let mut simulator =
            Simulator::construct(&self.arch, self.num_qubits, &self.hot_qubits, self.config)?;
        if let Some(budget) = self.instruction_budget {
            simulator.instruction_budget = budget;
        }
        if let Some(telemetry) = self.telemetry {
            simulator.telemetry = telemetry;
        }
        if let Some(policy) = self.migration {
            simulator.attach_policy(policy);
        }
        Ok(simulator)
    }
}

/// The process-wide instruction budget `LSQCA_INSTRUCTION_BUDGET` selects:
/// a positive integer enables the guard, anything else (unset, empty, `0`,
/// non-numeric) disables it. Read once; every simulator constructed in this
/// process inherits it (override per instance with
/// [`Simulator::set_instruction_budget`]).
fn env_instruction_budget() -> Option<u64> {
    static BUDGET: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("LSQCA_INSTRUCTION_BUDGET")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&b| b > 0)
    })
}

/// Simulates `program` on the given architecture and returns the outcome.
///
/// `num_qubits` is the number of data qubits (SAM addresses) the program uses;
/// if the program references a higher address, the larger value is used.
/// `hot_qubits` lists qubits pinned into the conventional region of a hybrid
/// floorplan.
///
/// # Panics
///
/// Panics if the program is malformed with respect to the memory model (for
/// example, an in-memory operation on a qubit that is still checked out). Use
/// [`Program::validate`] and the compiler to produce well-formed programs, or
/// drive [`Simulator::run`] directly to handle the error.
pub fn simulate(
    program: &Program,
    num_qubits: u32,
    arch: &ArchConfig,
    hot_qubits: &[QubitTag],
    config: SimConfig,
) -> SimOutcome {
    let footprint = program
        .iter()
        .flat_map(|i| i.memory_operands())
        .map(|m| m.index() + 1)
        .max()
        .unwrap_or(0);
    let qubits = num_qubits.max(footprint).max(1);
    // One construction path, one run entry point: the free function is the
    // builder + `execute` composed, nothing more.
    let mut simulator = match Simulator::builder(arch, qubits)
        .hot_qubits(hot_qubits)
        .config(config)
        .build()
    {
        Ok(simulator) => simulator,
        Err(err) => panic!("invalid simulator configuration: {err}"),
    };
    match simulator.execute(program) {
        Ok(outcome) => outcome,
        Err(err) => panic!("simulation of `{}` failed: {err}", program.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsqca_arch::FloorplanKind;
    use lsqca_isa::Instruction;

    fn point(factories: u32) -> ArchConfig {
        ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, factories)
    }

    fn line(banks: u32, factories: u32) -> ArchConfig {
        ArchConfig::new(FloorplanKind::LineSam { banks }, factories)
    }

    fn sim(arch: &ArchConfig, qubits: u32) -> Simulator {
        Simulator::builder(arch, qubits).build().unwrap()
    }

    #[test]
    fn empty_program_finishes_instantly() {
        let program = Program::new("empty");
        let outcome = simulate(&program, 4, &point(1), &[], SimConfig::default());
        assert_eq!(outcome.stats.total_beats, Beats::ZERO);
        assert_eq!(outcome.stats.instruction_count, 0);
        assert_eq!(outcome.stats.cpi(), 0.0);
    }

    #[test]
    fn fixed_latency_instructions_accumulate_serially() {
        let mut program = Program::new("serial");
        // Three dependent in-memory gates on the same qubit in the conventional
        // floorplan: 3 + 2 + 2 beats.
        program.push(Instruction::HdM { mem: MemAddr(0) });
        program.push(Instruction::PhM { mem: MemAddr(0) });
        program.push(Instruction::PhM { mem: MemAddr(0) });
        let outcome = simulate(
            &program,
            1,
            &ArchConfig::conventional(1),
            &[],
            SimConfig::default(),
        );
        assert_eq!(outcome.stats.total_beats, Beats(7));
        assert_eq!(outcome.stats.command_count, 3);
    }

    #[test]
    fn independent_gates_overlap_on_the_conventional_floorplan() {
        let mut program = Program::new("parallel");
        for q in 0..8 {
            program.push(Instruction::HdM { mem: MemAddr(q) });
        }
        let outcome = simulate(
            &program,
            8,
            &ArchConfig::conventional(1),
            &[],
            SimConfig::default(),
        );
        // All eight Hadamards run concurrently.
        assert_eq!(outcome.stats.total_beats, Beats(3));
    }

    #[test]
    fn sam_bank_serializes_memory_accesses() {
        let mut program = Program::new("serialized");
        for q in 0..8 {
            program.push(Instruction::HdM { mem: MemAddr(q) });
        }
        let outcome = simulate(&program, 8, &point(1), &[], SimConfig::default());
        // A single scan cell forces the eight in-memory gates to take turns, so
        // the total is at least 8 gates × 3 beats.
        assert!(outcome.stats.total_beats >= Beats(24));
    }

    #[test]
    fn multi_bank_sam_recovers_parallelism() {
        let mut program = Program::new("banked");
        for q in 0..8 {
            program.push(Instruction::HdM { mem: MemAddr(q) });
        }
        let single = simulate(&program, 8, &line(1, 1), &[], SimConfig::default());
        let quad = simulate(&program, 8, &line(4, 1), &[], SimConfig::default());
        assert!(quad.stats.total_beats < single.stats.total_beats);
    }

    #[test]
    fn magic_state_supply_throttles_t_gates() {
        // Twenty magic-state requests with one factory: at least ~(20-3)*15 beats.
        let mut program = Program::new("magic");
        for i in 0..20u32 {
            program.push(Instruction::Pm { reg: RegId(0) });
            program.push(Instruction::MxC {
                reg: RegId(0),
                out: ClassicalId(i),
            });
        }
        let outcome = simulate(&program, 1, &point(1), &[], SimConfig::default());
        assert!(outcome.stats.total_beats >= Beats(250));
        assert_eq!(outcome.stats.magic_states, 20);
        assert!(outcome.stats.magic_wait_beats > Beats(100));

        // Four factories are four times faster (up to buffering effects).
        let four = simulate(&program, 1, &point(4), &[], SimConfig::default());
        assert!(four.stats.total_beats.as_u64() < outcome.stats.total_beats.as_u64() / 2);

        // The motivation-study mode removes the bottleneck entirely.
        let free = simulate(
            &program,
            1,
            &point(1),
            &[],
            SimConfig {
                assume_infinite_magic: true,
                ..SimConfig::default()
            },
        );
        assert!(free.stats.total_beats < Beats(60));
    }

    #[test]
    fn skip_waits_for_its_classical_value() {
        let mut program = Program::new("skip");
        program.push(Instruction::HdM { mem: MemAddr(0) }); // finishes at 3
        program.push(Instruction::MzM {
            mem: MemAddr(0),
            out: ClassicalId(0),
        }); // finishes at 3
        program.push(Instruction::Sk {
            cond: ClassicalId(0),
        });
        program.push(Instruction::PhM { mem: MemAddr(1) }); // independent qubit but guarded
        let outcome = simulate(
            &program,
            2,
            &ArchConfig::conventional(1),
            &[],
            SimConfig::default(),
        );
        // The guarded phase gate cannot start before beat 3 even though its
        // operand is free, so the total is 3 + 2.
        assert_eq!(outcome.stats.total_beats, Beats(5));
    }

    #[test]
    fn load_store_round_trip_runs_on_sam() {
        let mut program = Program::new("ldst");
        program.push(Instruction::Ld {
            mem: MemAddr(30),
            reg: RegId(0),
        });
        program.push(Instruction::HdC { reg: RegId(0) });
        program.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(30),
        });
        let outcome = simulate(&program, 64, &point(1), &[], SimConfig::default());
        assert_eq!(outcome.stats.loads, 1);
        assert_eq!(outcome.stats.stores, 1);
        assert!(outcome.stats.total_beats > Beats(3));
        assert!(outcome.stats.memory_access_beats > Beats::ZERO);
    }

    #[test]
    fn malformed_programs_report_errors() {
        let mut program = Program::new("bad");
        program.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        // Loading the same qubit again without storing it is inconsistent.
        program.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(1),
        });
        let mut simulator = sim(&point(1), 4);
        let err = simulator.execute(&program).unwrap_err();
        assert_eq!(err.instruction_index(), Some(1));
        assert!(err.to_string().contains("LD"));
    }

    #[test]
    fn construction_is_validated_up_front() {
        // Every floorplan the architecture model can currently express either
        // bounds registers with at least `MIN_CR_SLOTS` slots or lifts the
        // bound entirely, so `build` accepts them all; the typed error is
        // the contract for configurations that violate the invariant.
        let simulator = Simulator::builder(&point(1), 4).build();
        assert!(simulator.is_ok());

        let err = SimError::NoCrSlots {
            floorplan: "PointSam { banks: 1 }".to_string(),
        };
        assert_eq!(err.instruction_index(), None);
        assert!(err.to_string().contains("no register slot"));
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn rerunning_a_simulator_is_deterministic() {
        // A program whose outcome depends on the memory layout: rerunning it
        // on a dirty simulator used to continue from the mutated (locality-
        // shuffled) grid and produce different beat counts.
        let mut program = Program::new("rerun");
        for q in 0..12u32 {
            program.push(Instruction::Cx {
                control: MemAddr(q),
                target: MemAddr((q + 3) % 12),
            });
        }
        let mut simulator = sim(&point(1), 12);
        let first = simulator.execute(&program).unwrap();
        let second = simulator.execute(&program).unwrap();
        assert_eq!(first, second);
        // An explicit reset gives the same pristine start.
        simulator.reset();
        let third = simulator.execute(&program).unwrap();
        assert_eq!(first, third);
    }

    #[test]
    fn rerun_does_not_inherit_grown_slot_tables() {
        // Four bank-disjoint CXs contend for the two CR slots; the trailing
        // load/store touches RegId(5), growing the per-RegId ready table past
        // the CR slot count. A rerun must not treat the grown zeroed entries
        // as extra free ancilla slots (regression: reset() used to zero the
        // table without restoring its construction length).
        let mut program = Program::new("slot-growth");
        for q in 0..4u32 {
            program.push(Instruction::Cx {
                control: MemAddr(2 * q),
                target: MemAddr(2 * q + 1),
            });
        }
        program.push(Instruction::Ld {
            mem: MemAddr(16),
            reg: RegId(5),
        });
        program.push(Instruction::St {
            reg: RegId(5),
            mem: MemAddr(16),
        });
        let arch = line(8, 1);
        let mut simulator = sim(&arch, 32);
        let first = simulator.execute(&program).unwrap();
        let second = simulator.execute(&program).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn run_after_a_failed_run_starts_from_pristine_state() {
        let mut bad = Program::new("bad");
        bad.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        bad.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(1),
        });
        let mut good = Program::new("good");
        good.push(Instruction::Ld {
            mem: MemAddr(0),
            reg: RegId(0),
        });
        good.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(0),
        });
        let mut simulator = sim(&point(1), 4);
        let expected = simulator.execute(&good).unwrap();
        simulator.execute(&bad).unwrap_err();
        // The failed run left qubit 0 checked out; the next run must not see
        // that state.
        let outcome = simulator.execute(&good).unwrap();
        assert_eq!(outcome, expected);
    }

    #[test]
    fn repeated_store_reports_the_offending_instruction() {
        let mut program = Program::new("double-store");
        program.push(Instruction::Ld {
            mem: MemAddr(1),
            reg: RegId(0),
        });
        program.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(1),
        });
        program.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(1),
        });
        let mut simulator = sim(&point(1), 4);
        let err = simulator.execute(&program).unwrap_err();
        assert_eq!(err.instruction_index(), Some(2));
        assert!(matches!(
            err,
            SimError::Instruction {
                source: lsqca_lattice::LatticeError::QubitAlreadyPlaced { .. },
                ..
            }
        ));
        assert!(err.to_string().contains("ST"));
    }

    #[test]
    fn cx_counts_its_internal_loads_and_stores() {
        let mut program = Program::new("cx-implicit");
        program.push(Instruction::Cx {
            control: MemAddr(0),
            target: MemAddr(1),
        });
        program.push(Instruction::Cx {
            control: MemAddr(2),
            target: MemAddr(3),
        });
        let outcome = simulate(&program, 16, &point(1), &[], SimConfig::default());
        // The CX expansion loads the cheaper operand and stores it back, but
        // the program text contains no LD/ST: explicit and implicit counters
        // stay separate.
        assert_eq!(outcome.stats.loads, 0);
        assert_eq!(outcome.stats.stores, 0);
        assert_eq!(outcome.stats.implicit_loads, 2);
        assert_eq!(outcome.stats.implicit_stores, 2);
        assert!(outcome.stats.memory_access_beats > Beats::ZERO);
    }

    #[test]
    fn run_compiled_matches_run_and_skips_classification() {
        use lsqca_workloads::{Benchmark, CompiledWorkload, InstanceSize};
        let cfg = Benchmark::SquareRoot.config(InstanceSize::Reduced);
        let workload = CompiledWorkload::compile(
            cfg.descriptor(),
            &cfg.build(),
            lsqca_compiler::CompilerConfig::default(),
        );
        let qubits = workload.num_qubits.max(workload.memory_footprint());
        let mut simulator = sim(&point(1), qubits);
        let via_program = simulator.execute(&workload.program).unwrap();
        let via_artifact = simulator.execute(&workload).unwrap();
        assert_eq!(via_program, via_artifact);
        assert!(via_artifact.stats.command_count > 0);
    }

    #[test]
    #[should_panic(expected = "not parallel")]
    fn mismatched_class_vector_is_rejected() {
        let mut program = Program::new("mismatch");
        program.push(Instruction::HdM { mem: MemAddr(0) });
        let mut simulator = sim(&point(1), 1);
        let _ = simulator.execute(&Classified::new(&program, &[]));
    }

    #[test]
    fn trace_recording_captures_memory_references() {
        let mut program = Program::new("trace");
        program.push(Instruction::HdM { mem: MemAddr(0) });
        program.push(Instruction::Cx {
            control: MemAddr(0),
            target: MemAddr(1),
        });
        let outcome = simulate(
            &program,
            2,
            &ArchConfig::conventional(1),
            &[],
            SimConfig::default().with_trace(),
        );
        assert_eq!(outcome.trace.len(), 3);
        assert_eq!(outcome.trace.access_counts()[&MemAddr(0)], 2);
    }

    #[test]
    fn conventional_is_never_slower_than_point_sam() {
        // A chain of dependent CX gates touching many distinct qubits.
        let mut program = Program::new("chain");
        for q in 0..30u32 {
            program.push(Instruction::Cx {
                control: MemAddr(q),
                target: MemAddr(q + 1),
            });
        }
        let conventional = simulate(
            &program,
            31,
            &ArchConfig::conventional(1),
            &[],
            SimConfig::default(),
        );
        let sam = simulate(&program, 31, &point(1), &[], SimConfig::default());
        assert!(conventional.stats.total_beats <= sam.stats.total_beats);
        assert!(conventional.stats.memory_density <= sam.stats.memory_density);
    }

    #[test]
    fn migration_policy_promotes_a_hot_loop_qubit() {
        use lsqca_arch::PolicyKind;
        // Qubit 30 is hammered but the compile-time hot set pins qubit 0;
        // the frequency policy should promote 30 and strip its seek costs.
        let mut program = Program::new("loop");
        for _ in 0..40 {
            program.push(Instruction::HdM { mem: MemAddr(30) });
            program.push(Instruction::Cx {
                control: MemAddr(30),
                target: MemAddr(31),
            });
        }
        let arch = point(1).with_hybrid_fraction(0.05);
        let hot = [QubitTag(0), QubitTag(1)];
        let mut pinned = Simulator::builder(&arch, 64)
            .hot_qubits(&hot)
            .build()
            .unwrap();
        let static_run = pinned.execute(&program).unwrap();
        assert_eq!(static_run.stats.migrations, 0);

        let mut adaptive = Simulator::builder(&arch, 64)
            .hot_qubits(&hot)
            .migration_policy(PolicyKind::FreqDecay.build())
            .build()
            .unwrap();
        assert_eq!(adaptive.migration_policy_name(), Some("freq-decay"));
        let dynamic_run = adaptive.execute(&program).unwrap();
        assert!(dynamic_run.stats.migrations > 0);
        assert!(dynamic_run.stats.migration_beats > Beats::ZERO);
        assert!(
            dynamic_run.stats.memory_access_beats < static_run.stats.memory_access_beats,
            "promotion should strip seek beats ({} >= {})",
            dynamic_run.stats.memory_access_beats,
            static_run.stats.memory_access_beats
        );
        // Reruns re-begin the policy from the pinned hot set: deterministic.
        let again = adaptive.execute(&program).unwrap();
        assert_eq!(dynamic_run, again);
        // The static policy is observationally the pinned baseline.
        let mut inert = Simulator::builder(&arch, 64)
            .hot_qubits(&hot)
            .migration_policy(PolicyKind::Static.build())
            .build()
            .unwrap();
        let inert_run = inert.execute(&program).unwrap();
        assert_eq!(inert_run.stats.migrations, 0);
        assert_eq!(inert_run.stats.total_beats, static_run.stats.total_beats);
        // Detaching restores the plain simulator.
        adaptive.clear_migration_policy();
        assert_eq!(adaptive.migration_policy_name(), None);
        let detached = adaptive.execute(&program).unwrap();
        assert_eq!(detached, static_run);
    }

    #[test]
    fn store_time_proposals_are_dropped_not_applied() {
        use lsqca_arch::{FreqDecayPolicy, MigrationPolicy};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// Wraps the frequency policy and counts its proposals, so the test
        /// can observe proposals the engine dropped (vs applied).
        #[derive(Debug, Clone)]
        struct Counting {
            inner: FreqDecayPolicy,
            proposals: Arc<AtomicU64>,
        }
        impl MigrationPolicy for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn begin(&mut self, num_qubits: u32, hot: &[QubitTag]) {
                self.inner.begin(num_qubits, hot);
            }
            fn on_access(&mut self, qubit: QubitTag, now: u64) -> Option<QubitTag> {
                let proposal = self.inner.on_access(qubit, now);
                if proposal.is_some() {
                    self.proposals.fetch_add(1, Ordering::Relaxed);
                }
                proposal
            }
            fn applied(&mut self, promoted: QubitTag, demoted: QubitTag) {
                self.inner.applied(promoted, demoted);
            }
            fn boxed_clone(&self) -> Box<dyn MigrationPolicy> {
                Box::new(self.clone())
            }
        }

        // With the default margin (1.5) and one warm-up touch of the hot
        // qubit, qubit 9's score first crosses the promotion threshold at
        // its ST event — where it is checked out, so the proposal must be
        // dropped — and lands on the following LD instead.
        let mut program = Program::new("st-drop");
        program.push(Instruction::HdM { mem: MemAddr(0) });
        for _ in 0..2 {
            program.push(Instruction::Ld {
                mem: MemAddr(9),
                reg: RegId(0),
            });
            program.push(Instruction::St {
                reg: RegId(0),
                mem: MemAddr(9),
            });
        }
        let arch = point(1).with_hybrid_fraction(0.1);
        let hot = [QubitTag(0)];
        let proposals = Arc::new(AtomicU64::new(0));
        let mut simulator = Simulator::builder(&arch, 16)
            .hot_qubits(&hot)
            .migration_policy(Box::new(Counting {
                inner: FreqDecayPolicy::default(),
                proposals: Arc::clone(&proposals),
            }))
            .build()
            .unwrap();
        let outcome = simulator.execute(&program).unwrap();
        assert_eq!(outcome.stats.loads, 2);
        assert_eq!(outcome.stats.stores, 2);
        assert_eq!(outcome.stats.migrations, 1, "exactly one promotion lands");
        assert_eq!(
            proposals.load(Ordering::Relaxed),
            2,
            "the ST-time proposal is made but dropped, the LD-time one applied"
        );
    }

    #[test]
    fn hybrid_hot_set_reduces_execution_time() {
        // Repeatedly touch one hot qubit against many cold partners.
        let mut program = Program::new("hot");
        for q in 1..60u32 {
            program.push(Instruction::Cx {
                control: MemAddr(0),
                target: MemAddr(q),
            });
        }
        let arch = point(1);
        let pure = simulate(&program, 60, &arch, &[], SimConfig::default());
        let hybrid_arch = point(1).with_hybrid_fraction(0.02);
        let hybrid = simulate(
            &program,
            60,
            &hybrid_arch,
            &[QubitTag(0)],
            SimConfig::default(),
        );
        assert!(hybrid.stats.total_beats <= pure.stats.total_beats);
        assert!(hybrid.stats.memory_density < pure.stats.memory_density);
    }

    #[test]
    fn instruction_budget_aborts_a_runaway_run() {
        let mut program = Program::new("budgeted");
        for _ in 0..10 {
            program.push(Instruction::HdM { mem: MemAddr(0) });
        }
        let mut simulator = Simulator::builder(&point(1), 1)
            .instruction_budget(Some(4))
            .build()
            .unwrap();
        let err = simulator.execute(&program).unwrap_err();
        assert_eq!(err, SimError::InstructionBudget { budget: 4 });
        assert_eq!(err.instruction_index(), None);
        assert!(err.to_string().contains("LSQCA_INSTRUCTION_BUDGET"));
    }

    #[test]
    fn instruction_budget_survives_reset_and_is_invisible_when_not_hit() {
        let mut program = Program::new("under-budget");
        for _ in 0..3 {
            program.push(Instruction::HdM { mem: MemAddr(0) });
        }
        let mut plain = sim(&point(1), 1);
        let reference = plain.execute(&program).unwrap();

        let mut budgeted = Simulator::builder(&point(1), 1)
            .instruction_budget(Some(3))
            .build()
            .unwrap();
        // Two consecutive runs: the second goes through the auto-reset path
        // and must still be guarded (and still produce identical stats).
        for _ in 0..2 {
            let outcome = budgeted.execute(&program).unwrap();
            assert_eq!(outcome.stats, reference.stats);
        }
        let mut tighter = Simulator::builder(&point(1), 1)
            .instruction_budget(Some(2))
            .build()
            .unwrap();
        assert!(tighter.execute(&program).is_err());
    }

    #[test]
    fn builder_knobs_fold_into_the_config() {
        let mut program = Program::new("knobs");
        program.push(Instruction::Pm { reg: RegId(0) });
        program.push(Instruction::Cx {
            control: MemAddr(0),
            target: MemAddr(1),
        });
        let mut simulator = Simulator::builder(&point(1), 4)
            .record_trace()
            .infinite_magic()
            .build()
            .unwrap();
        let outcome = simulator.execute(&program).unwrap();
        // `record_trace` captured the two CX references; `infinite_magic`
        // removed the acquisition wait entirely.
        assert_eq!(outcome.trace.len(), 2);
        assert_eq!(outcome.stats.magic_wait_beats, Beats::ZERO);
    }

    #[test]
    fn fork_is_equivalent_to_a_fresh_build() {
        let mut program = Program::new("forked");
        for q in 0..12u32 {
            program.push(Instruction::Cx {
                control: MemAddr(q),
                target: MemAddr((q + 5) % 12),
            });
        }
        let parent = sim(&point(1), 12);
        let mut fork = parent.fork();
        assert!(fork.state_eq(&parent));
        let mut fresh = sim(&point(1), 12);
        assert!(fork.state_eq(&fresh));
        // Kill the parent: the fork owns its state.
        drop(parent);
        let via_fork = fork.execute(&program).unwrap();
        let via_fresh = fresh.execute(&program).unwrap();
        assert_eq!(via_fork, via_fresh);
        assert!(fork.state_eq(&fresh));
    }

    #[test]
    fn fork_with_policy_swaps_the_variant() {
        use lsqca_arch::PolicyKind;
        let mut program = Program::new("variants");
        for _ in 0..40 {
            program.push(Instruction::HdM { mem: MemAddr(30) });
            program.push(Instruction::Cx {
                control: MemAddr(30),
                target: MemAddr(31),
            });
        }
        let arch = point(1).with_hybrid_fraction(0.05);
        let hot = [QubitTag(0), QubitTag(1)];
        let parent = Simulator::builder(&arch, 64)
            .hot_qubits(&hot)
            .build()
            .unwrap();
        let mut plain = parent.fork_with_policy(None);
        let mut adaptive = parent.fork_with_policy(Some(PolicyKind::FreqDecay.build()));
        assert_eq!(plain.migration_policy_name(), None);
        assert_eq!(adaptive.migration_policy_name(), Some("freq-decay"));
        let static_run = plain.execute(&program).unwrap();
        let dynamic_run = adaptive.execute(&program).unwrap();
        assert_eq!(static_run.stats.migrations, 0);
        assert!(dynamic_run.stats.migrations > 0);
        // Each fork matches a fresh builder-constructed simulator.
        let mut fresh = Simulator::builder(&arch, 64)
            .hot_qubits(&hot)
            .migration_policy(PolicyKind::FreqDecay.build())
            .build()
            .unwrap();
        assert_eq!(fresh.execute(&program).unwrap(), dynamic_run);
    }

    #[test]
    fn snapshot_restore_rewinds_a_dirty_simulator() {
        let mut program = Program::new("rewind");
        for q in 0..8u32 {
            program.push(Instruction::Cx {
                control: MemAddr(q),
                target: MemAddr(q + 8),
            });
        }
        let mut simulator = sim(&point(1), 16);
        let pristine = simulator.snapshot();
        let first = simulator.execute(&program).unwrap();
        let warmed = simulator.snapshot();
        // Restoring the pristine snapshot is observationally a fresh start.
        simulator.restore(&pristine);
        assert!(simulator.state_eq(&sim(&point(1), 16)));
        let again = simulator.execute(&program).unwrap();
        assert_eq!(first, again);
        // Restoring the warmed snapshot reproduces the post-run state.
        simulator.restore(&warmed);
        let mut reference = sim(&point(1), 16);
        reference.execute(&program).unwrap();
        assert!(simulator.state_eq(&reference));
    }

    #[test]
    fn fork_and_warm_counters_advance() {
        let warmed_before = crate::snapshot::warm_count();
        let forked_before = crate::snapshot::fork_count();
        let parent = sim(&point(1), 8);
        let _forks: Vec<Simulator> = (0..3).map(|_| parent.fork()).collect();
        assert_eq!(crate::snapshot::warm_count() - warmed_before, 1);
        assert_eq!(crate::snapshot::fork_count() - forked_before, 3);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_entry_points_delegate_to_the_new_api() {
        let mut program = Program::new("legacy");
        program.push(Instruction::Ld {
            mem: MemAddr(3),
            reg: RegId(0),
        });
        program.push(Instruction::HdC { reg: RegId(0) });
        program.push(Instruction::St {
            reg: RegId(0),
            mem: MemAddr(3),
        });
        let mut trace = ExecutionTrace::new();
        lsqca_isa::lower_into(&program, &mut trace);
        let classes = lsqca_isa::LatencyTable::paper().classify_program(&program);

        let mut modern = sim(&point(1), 8);
        let expected = modern.execute(&program).unwrap();

        let mut legacy = Simulator::new(&point(1), 8, &[], SimConfig::default());
        assert_eq!(legacy.run(&program).unwrap(), expected);
        assert_eq!(legacy.run_trace(&trace).unwrap(), expected);
        assert_eq!(legacy.run_classified(&program, &classes).unwrap(), expected);
        let mut fallible = Simulator::try_new(&point(1), 8, &[], SimConfig::default()).unwrap();
        fallible.set_instruction_budget(Some(1));
        assert!(fallible.run(&program).is_err());
    }
}
