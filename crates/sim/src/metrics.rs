//! Execution statistics reported by the simulator.

use lsqca_json::{Json, ToJson};
use lsqca_lattice::Beats;
use std::fmt;

/// Schema tag of the serialized-stats payload stored per sweep point.
pub const STATS_SCHEMA: &str = "lsqca-stats-v1";

/// Result metrics of one simulation run.
///
/// The two headline numbers of the paper's evaluation are
/// [`cpi`](ExecutionStats::cpi) (Fig. 13) and
/// [`memory_density`](ExecutionStats::memory_density) (Figs. 14–15); the rest
/// are supporting breakdowns.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ExecutionStats {
    /// Total execution time in code beats.
    pub total_beats: Beats,
    /// Total number of instructions executed.
    pub instruction_count: u64,
    /// Number of non-negligible commands (the CPI denominator, Sec. VI-A).
    pub command_count: u64,
    /// Number of magic states consumed.
    pub magic_states: u64,
    /// Memory density of the simulated architecture (data qubits / cells).
    pub memory_density: f64,
    /// Total logical cells charged to the architecture (SAM + CR + conventional).
    pub total_cells: u64,
    /// Number of explicit `LD` instructions executed.
    pub loads: u64,
    /// Number of explicit `ST` instructions executed.
    pub stores: u64,
    /// Number of loads issued internally by `CX` expansion (the cheaper
    /// operand is fetched into the CR). Not included in [`loads`](Self::loads),
    /// which counts program text only; the beats these cost are part of
    /// [`memory_access_beats`](Self::memory_access_beats).
    pub implicit_loads: u64,
    /// Number of stores issued internally by `CX` expansion (the loaded
    /// operand is parked back with the locality-aware policy). Not included in
    /// [`stores`](Self::stores).
    pub implicit_stores: u64,
    /// Number of in-memory instructions executed.
    pub in_memory_ops: u64,
    /// Beats spent waiting for magic states (sum over `PM` instructions of the
    /// gap between request and availability).
    pub magic_wait_beats: Beats,
    /// Beats spent on memory movement (loads, stores, seeks, in-memory access).
    pub memory_access_beats: Beats,
    /// Number of hot-set migrations applied by the run's migration policy
    /// (zero without a policy or under the static policy).
    pub migrations: u64,
    /// Beats spent on hot-set migration: the physical swap movement plus the
    /// per-policy bookkeeping overhead, charged to the triggering
    /// instruction. Kept separate from
    /// [`memory_access_beats`](Self::memory_access_beats) so the seek-cycle
    /// savings a policy buys and the migration cost it pays are individually
    /// visible.
    pub migration_beats: Beats,
}

impl ExecutionStats {
    /// Code beats per instruction: execution time over the non-negligible
    /// command count.
    pub fn cpi(&self) -> f64 {
        if self.command_count == 0 {
            0.0
        } else {
            self.total_beats.as_f64() / self.command_count as f64
        }
    }

    /// Execution-time overhead relative to a baseline run (e.g. the
    /// conventional floorplan): `self/baseline`, so `1.0` means equal time and
    /// `1.05` means 5% slower.
    pub fn overhead_vs(&self, baseline: &ExecutionStats) -> f64 {
        if baseline.total_beats.is_zero() {
            return 1.0;
        }
        self.total_beats.as_f64() / baseline.total_beats.as_f64()
    }

    /// Average interval between magic-state requests in beats, if any.
    pub fn beats_per_magic_state(&self) -> Option<f64> {
        if self.magic_states == 0 {
            None
        } else {
            Some(self.total_beats.as_f64() / self.magic_states as f64)
        }
    }

    /// Decodes stats serialized by [`ToJson::to_json`]. The field list is
    /// exact: a missing or extra field (a payload from a different stats
    /// revision) is rejected so the result store recomputes instead of
    /// silently zero-filling.
    ///
    /// # Errors
    ///
    /// Returns the offending field (or schema) name.
    pub fn from_json(doc: &Json) -> Result<Self, StatsDecodeError> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or(StatsDecodeError { field: "schema" })?;
        if schema != STATS_SCHEMA {
            return Err(StatsDecodeError { field: "schema" });
        }
        let beats = |field| {
            doc.get(field)
                .and_then(Json::as_u64)
                .map(Beats)
                .ok_or(StatsDecodeError { field })
        };
        let count = |field| {
            doc.get(field)
                .and_then(Json::as_u64)
                .ok_or(StatsDecodeError { field })
        };
        Ok(ExecutionStats {
            total_beats: beats("total_beats")?,
            instruction_count: count("instruction_count")?,
            command_count: count("command_count")?,
            magic_states: count("magic_states")?,
            memory_density: doc.get("memory_density").and_then(Json::as_f64).ok_or(
                StatsDecodeError {
                    field: "memory_density",
                },
            )?,
            total_cells: count("total_cells")?,
            loads: count("loads")?,
            stores: count("stores")?,
            implicit_loads: count("implicit_loads")?,
            implicit_stores: count("implicit_stores")?,
            in_memory_ops: count("in_memory_ops")?,
            magic_wait_beats: beats("magic_wait_beats")?,
            memory_access_beats: beats("memory_access_beats")?,
            migrations: count("migrations")?,
            migration_beats: beats("migration_beats")?,
        })
    }
}

impl ToJson for ExecutionStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(STATS_SCHEMA.to_string())),
            ("total_beats", Json::U64(self.total_beats.as_u64())),
            ("instruction_count", Json::U64(self.instruction_count)),
            ("command_count", Json::U64(self.command_count)),
            ("magic_states", Json::U64(self.magic_states)),
            ("memory_density", Json::F64(self.memory_density)),
            ("total_cells", Json::U64(self.total_cells)),
            ("loads", Json::U64(self.loads)),
            ("stores", Json::U64(self.stores)),
            ("implicit_loads", Json::U64(self.implicit_loads)),
            ("implicit_stores", Json::U64(self.implicit_stores)),
            ("in_memory_ops", Json::U64(self.in_memory_ops)),
            (
                "magic_wait_beats",
                Json::U64(self.magic_wait_beats.as_u64()),
            ),
            (
                "memory_access_beats",
                Json::U64(self.memory_access_beats.as_u64()),
            ),
            ("migrations", Json::U64(self.migrations)),
            ("migration_beats", Json::U64(self.migration_beats.as_u64())),
        ])
    }
}

/// A stats payload that does not decode: wrong schema tag, missing field, or
/// a field of the wrong type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsDecodeError {
    /// The first field (or the schema tag) that failed.
    pub field: &'static str,
}

impl fmt::Display for StatsDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stats payload field `{}` is missing or invalid",
            self.field
        )
    }
}

impl std::error::Error for StatsDecodeError {}

impl fmt::Display for ExecutionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} beats, {} commands, CPI {:.2}, density {:.1}%, {} magic states",
            self.total_beats.as_u64(),
            self.command_count,
            self.cpi(),
            100.0 * self.memory_density,
            self.magic_states
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(beats: u64, commands: u64) -> ExecutionStats {
        ExecutionStats {
            total_beats: Beats(beats),
            command_count: commands,
            ..ExecutionStats::default()
        }
    }

    #[test]
    fn cpi_is_beats_over_commands() {
        assert_eq!(stats(100, 50).cpi(), 2.0);
        assert_eq!(stats(100, 0).cpi(), 0.0);
    }

    #[test]
    fn overhead_is_a_ratio() {
        let fast = stats(100, 10);
        let slow = stats(110, 10);
        assert!((slow.overhead_vs(&fast) - 1.1).abs() < 1e-12);
        assert_eq!(slow.overhead_vs(&stats(0, 10)), 1.0);
    }

    #[test]
    fn beats_per_magic_state() {
        let mut s = stats(150, 10);
        assert_eq!(s.beats_per_magic_state(), None);
        s.magic_states = 50;
        assert_eq!(s.beats_per_magic_state(), Some(3.0));
    }

    #[test]
    fn display_mentions_cpi_and_density() {
        let s = stats(10, 5);
        let text = s.to_string();
        assert!(text.contains("CPI"));
        assert!(text.contains("density"));
    }

    #[test]
    fn stats_round_trip_through_json() {
        let mut s = stats(12345, 678);
        s.memory_density = 0.3775;
        s.magic_states = 42;
        s.migration_beats = Beats(9);
        let doc = s.to_json();
        assert_eq!(ExecutionStats::from_json(&doc), Ok(s.clone()));
        // The rendering itself round-trips too: what the store writes today a
        // resumed process parses back to the identical payload.
        let reparsed = lsqca_json::parse(&doc.pretty()).unwrap();
        assert_eq!(ExecutionStats::from_json(&reparsed), Ok(s));
    }

    #[test]
    fn stats_from_foreign_payloads_are_rejected() {
        let missing = Json::obj([("schema", Json::Str(STATS_SCHEMA.to_string()))]);
        assert_eq!(
            ExecutionStats::from_json(&missing),
            Err(StatsDecodeError {
                field: "total_beats"
            })
        );
        let mut wrong_schema = stats(1, 1).to_json();
        if let Json::Obj(pairs) = &mut wrong_schema {
            pairs[0].1 = Json::Str("lsqca-stats-v999".to_string());
        }
        assert_eq!(
            ExecutionStats::from_json(&wrong_schema),
            Err(StatsDecodeError { field: "schema" })
        );
    }
}
