//! Versioned, arena-backed snapshot/fork support for the simulator.
//!
//! The simulator's bulk state lives in copy-on-write [`Page`]s: the whole
//! [`MemorySystem`] (cell maps, position tables, checkout-ledger bit sets,
//! vacancy-index rings) behind one coarse page, the dense ready-time tables
//! behind their own. The granularity is deliberate — each run detaches its
//! pages **once** up front, so the instruction loop mutates plain structures
//! with zero per-operation refcount traffic. Cloning a page is a
//! reference-count bump, so both operations here are O(pages), independent
//! of qubit count or grid size:
//!
//! * [`Simulator::snapshot`](crate::Simulator::snapshot) captures the
//!   architectural and scheduler state as a [`Snapshot`] handle;
//!   [`Simulator::restore`](crate::Simulator::restore) rewinds to it. A
//!   future service checkpoint lands on the same handle.
//! * [`Simulator::fork`](crate::Simulator::fork) clones a whole simulator.
//!   The fork shares every unmodified page with its parent and copies a page
//!   only on its first write, so `Experiment::run_batch` warms **one**
//!   simulator per architecture (paying placement and vacancy-ring
//!   construction once) and forks it into N policy variants.
//!
//! The process-wide counters below are the observability hook for that
//! contract: the CLI prints them after every sweep and CI asserts a
//! warm-store rerun performs zero warm-ups, exactly like the existing
//! `trace engine: 0 lowered` assertion.

use std::sync::OnceLock;

use lsqca_arch::{MagicStateSupply, MemorySystem};
use lsqca_lattice::{Beats, Page};

/// Registry counter of full simulator warm-ups (constructions) in this
/// process: every successful pass through the private
/// `Simulator::construct`, whichever public path
/// ([`SimulatorBuilder::build`](crate::SimulatorBuilder::build) or a
/// deprecated constructor) invoked it.
pub(crate) fn builds_counter() -> &'static lsqca_telemetry::Counter {
    static COUNTER: OnceLock<&'static lsqca_telemetry::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| lsqca_telemetry::counter("sim.warmed"))
}

/// Registry counter of copy-on-write forks taken in this process (every
/// entry into [`Simulator::fork`](crate::Simulator::fork), including via
/// [`Simulator::fork_with_policy`](crate::Simulator::fork_with_policy)).
pub(crate) fn forks_counter() -> &'static lsqca_telemetry::Counter {
    static COUNTER: OnceLock<&'static lsqca_telemetry::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| lsqca_telemetry::counter("sim.forked"))
}

/// Total full simulator warm-ups (constructions) performed by this process
/// (the registry's `sim.warmed` counter).
pub fn warm_count() -> u64 {
    builds_counter().get()
}

/// Total copy-on-write simulator forks performed by this process (the
/// registry's `sim.forked` counter).
pub fn fork_count() -> u64 {
    forks_counter().get()
}

/// An O(pages) capture of one simulator's architectural and scheduler state.
///
/// Created by [`Simulator::snapshot`](crate::Simulator::snapshot) and
/// consumed by [`Simulator::restore`](crate::Simulator::restore). The
/// snapshot holds copy-on-write handles, not deep copies: taking one bumps
/// reference counts, and the simulator's next write to any captured page
/// detaches that page only. The migration policy and instruction budget are
/// deliberately *not* captured — the policy is re-initialized on restore
/// (mirroring [`Simulator::reset`](crate::Simulator::reset)) and the budget
/// belongs to the process, not to one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) memory: Page<MemorySystem>,
    pub(crate) magic: MagicStateSupply,
    pub(crate) mem_ready: Page<Vec<Beats>>,
    pub(crate) slot_ready: Vec<Beats>,
    pub(crate) classical_ready: Page<Vec<Beats>>,
    pub(crate) bank_ready: Vec<Beats>,
    pub(crate) skip_guard: Option<Beats>,
    pub(crate) dirty: bool,
}
