//! Memory reference traces (the raw data behind Fig. 8).

use lsqca_isa::MemAddr;
use std::collections::BTreeMap;

/// One memory reference: an instruction touched `qubit` at `beat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The referenced SAM address (logical qubit).
    pub qubit: MemAddr,
    /// The code beat at which the referencing instruction started.
    pub beat: u64,
}

/// A full memory reference trace of one simulation run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemoryTrace {
    events: Vec<TraceEvent>,
}

impl MemoryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        MemoryTrace::default()
    }

    /// Records one reference.
    pub fn record(&mut self, qubit: MemAddr, beat: u64) {
        self.events.push(TraceEvent { qubit, beat });
    }

    /// All events in program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reference timestamps grouped per qubit, each list sorted by beat
    /// (the scatter data of Fig. 8a/8c).
    pub fn per_qubit(&self) -> BTreeMap<MemAddr, Vec<u64>> {
        let mut map: BTreeMap<MemAddr, Vec<u64>> = BTreeMap::new();
        for e in &self.events {
            map.entry(e.qubit).or_default().push(e.beat);
        }
        for beats in map.values_mut() {
            beats.sort_unstable();
        }
        map
    }

    /// Reference periods: for every qubit, the gaps between consecutive
    /// references (the data behind the CDFs of Fig. 8b/8d).
    pub fn reference_periods(&self) -> Vec<u64> {
        let mut periods = Vec::new();
        for beats in self.per_qubit().values() {
            for pair in beats.windows(2) {
                periods.push(pair[1] - pair[0]);
            }
        }
        periods
    }

    /// Number of references per qubit, used to rank qubits by access frequency
    /// for the hybrid floorplan's hot set.
    pub fn access_counts(&self) -> BTreeMap<MemAddr, u64> {
        let mut counts = BTreeMap::new();
        for e in &self.events {
            *counts.entry(e.qubit).or_insert(0) += 1;
        }
        counts
    }

    /// The last beat referenced in the trace, if any.
    pub fn horizon(&self) -> Option<u64> {
        self.events.iter().map(|e| e.beat).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemoryTrace {
        let mut t = MemoryTrace::new();
        t.record(MemAddr(0), 0);
        t.record(MemAddr(1), 3);
        t.record(MemAddr(0), 10);
        t.record(MemAddr(0), 25);
        t.record(MemAddr(1), 7);
        t
    }

    #[test]
    fn per_qubit_groups_and_sorts() {
        let t = sample();
        let per = t.per_qubit();
        assert_eq!(per[&MemAddr(0)], vec![0, 10, 25]);
        assert_eq!(per[&MemAddr(1)], vec![3, 7]);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn reference_periods_are_consecutive_gaps() {
        let t = sample();
        let mut periods = t.reference_periods();
        periods.sort_unstable();
        assert_eq!(periods, vec![4, 10, 15]);
    }

    #[test]
    fn access_counts_rank_hot_qubits() {
        let t = sample();
        let counts = t.access_counts();
        assert_eq!(counts[&MemAddr(0)], 3);
        assert_eq!(counts[&MemAddr(1)], 2);
    }

    #[test]
    fn horizon_is_the_last_beat() {
        assert_eq!(sample().horizon(), Some(25));
        assert_eq!(MemoryTrace::new().horizon(), None);
        assert!(MemoryTrace::new().is_empty());
    }
}
