//! Code-beat-accurate simulator for LSQCA and conventional floorplans.
//!
//! This is the reproduction of the simulator described in Sec. VI-A of the
//! paper: it executes an LSQCA instruction stream against an architectural model
//! and reports execution time in code beats, CPI (beats per non-negligible
//! command), and memory density.
//!
//! The scheduling model is a dependency-driven list schedule:
//!
//! * every memory qubit, CR register slot, and classical value carries a
//!   ready-time;
//! * every SAM bank is a serial resource (its scan cell / scan line can serve
//!   one load, store, or in-memory access at a time);
//! * magic states come from the shared [`MagicStateSupply`] at one state per 15
//!   beats per factory, buffered as in the paper;
//! * `SK` makes the following instruction wait for its classical condition and
//!   the taken path is always executed;
//! * the conventional baseline has no CR, so register-slot constraints are
//!   lifted and all memory accesses are unit-latency, reproducing the paper's
//!   optimistic baseline with unbounded parallelism.
//!
//! [`MagicStateSupply`]: lsqca_arch::MagicStateSupply
//!
//! # Example
//!
//! ```
//! use lsqca_arch::{ArchConfig, FloorplanKind};
//! use lsqca_circuit::Circuit;
//! use lsqca_compiler::{compile, CompilerConfig};
//! use lsqca_sim::{simulate, SimConfig};
//!
//! let mut circuit = Circuit::new("demo", 4);
//! for q in 0..4 {
//!     circuit.prep_z(q);
//!     circuit.h(q);
//!     circuit.t(q);
//!     circuit.measure_z(q);
//! }
//! let compiled = compile(&circuit, CompilerConfig::default());
//! let arch = ArchConfig::new(FloorplanKind::PointSam { banks: 1 }, 1);
//! let outcome = simulate(&compiled.program, compiled.num_qubits, &arch, &[], SimConfig::default());
//! assert!(outcome.stats.total_beats.as_u64() > 0);
//! assert_eq!(outcome.stats.magic_states, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use config::SimConfig;
pub use engine::{
    simulate, simulation_count, Classified, Executable, SimError, SimOutcome, Simulator,
    SimulatorBuilder, TelemetryConfig,
};
pub use metrics::{ExecutionStats, StatsDecodeError, STATS_SCHEMA};
pub use snapshot::Snapshot;
pub use trace::{MemoryTrace, TraceEvent};

/// Revision of the simulation semantics, mixed into every result-store key.
///
/// Bump this whenever a change anywhere in the simulation stack (scheduler,
/// memory model, latency table, migration policies) alters the numbers a run
/// produces for an unchanged workload and configuration; stored records keyed
/// under the old revision then become unreachable and every point recomputes,
/// exactly like `ISA_VERSION` invalidates compiled-workload artifacts.
pub const RESULTS_REVISION: u32 = 2;
