//! Simulation options.

/// Options controlling one simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Record a memory reference trace (one event per instruction touching a
    /// SAM address). Needed for the Fig. 8 reproduction; costs memory
    /// proportional to the instruction count.
    pub record_trace: bool,
    /// Assume magic states are always instantly available, as in the paper's
    /// motivation study (Sec. III-B): "we assumed that magic states are
    /// instantly prepared".
    pub assume_infinite_magic: bool,
}

impl SimConfig {
    /// Default configuration: no trace, realistic magic-state supply.
    pub fn new() -> Self {
        SimConfig::default()
    }

    /// Configuration used for the Sec. III-B motivation analysis: record the
    /// reference trace and treat magic states as free.
    pub fn motivation_study() -> Self {
        SimConfig {
            record_trace: true,
            assume_infinite_magic: true,
        }
    }

    /// Returns a copy with trace recording enabled.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_realistic() {
        let c = SimConfig::new();
        assert!(!c.record_trace);
        assert!(!c.assume_infinite_magic);
    }

    #[test]
    fn motivation_study_enables_trace_and_free_magic() {
        let c = SimConfig::motivation_study();
        assert!(c.record_trace);
        assert!(c.assume_infinite_magic);
    }

    #[test]
    fn with_trace_builder() {
        assert!(SimConfig::new().with_trace().record_trace);
    }
}
