//! Span tracing: `(name, start, end)` intervals over a monotonic process
//! clock, buffered per thread and exportable as Chrome trace-event JSON.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use lsqca_json::Json;

/// Per-thread ring-buffer capacity in records. When a thread exceeds it the
/// oldest records are overwritten (and counted by [`dropped_spans`]), so a
/// pathological run degrades to a truncated trace instead of unbounded
/// memory growth.
pub const SPAN_RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn clock_anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

/// Pins the monotonic clock's zero point to "now". Call once at process
/// start so span timestamps count from startup; otherwise the clock anchors
/// itself on first use.
pub fn init_clock() {
    let _ = clock_anchor();
}

/// Nanoseconds since the process clock anchor (monotonic, never wall time).
#[inline]
pub fn now_ns() -> u64 {
    clock_anchor().elapsed().as_nanos() as u64
}

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"sim.warm"`).
    pub name: &'static str,
    /// Start, in [`now_ns`] nanoseconds.
    pub start_ns: u64,
    /// End, in [`now_ns`] nanoseconds.
    pub end_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
}

struct ThreadSink {
    tid: u64,
    /// Ring storage plus the index of its logical start. `records.len()`
    /// stays below [`SPAN_RING_CAPACITY`] until the ring wraps.
    ring: Mutex<(Vec<SpanRecord>, usize)>,
}

impl ThreadSink {
    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().unwrap();
        let (records, head) = &mut *ring;
        if records.len() < SPAN_RING_CAPACITY {
            records.push(record);
        } else {
            records[*head] = record;
            *head = (*head + 1) % SPAN_RING_CAPACITY;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain(&self) -> Vec<SpanRecord> {
        let mut ring = self.ring.lock().unwrap();
        let (records, head) = &mut *ring;
        let mut out = Vec::with_capacity(records.len());
        out.extend_from_slice(&records[*head..]);
        out.extend_from_slice(&records[..*head]);
        records.clear();
        *head = 0;
        out
    }
}

fn sinks() -> &'static Mutex<Vec<Arc<ThreadSink>>> {
    static SINKS: OnceLock<Mutex<Vec<Arc<ThreadSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_SINK: Arc<ThreadSink> = {
        let sink = Arc::new(ThreadSink {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring: Mutex::new((Vec::new(), 0)),
        });
        sinks().lock().unwrap().push(Arc::clone(&sink));
        sink
    };
}

/// Turns span recording on or off process-wide. Off (the default) makes
/// [`span`] cost a single relaxed load.
pub fn set_spans_enabled(on: bool) {
    if on {
        init_clock();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens a span named `name`; the span closes when the returned guard drops.
/// Guards are RAII, so per-thread nesting is balanced by construction.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let start_ns = if spans_enabled() { now_ns() } else { u64::MAX };
    SpanGuard { name, start_ns }
}

/// An open span; dropping it records the `(name, start, end)` interval.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    name: &'static str,
    /// `u64::MAX` marks a guard taken while recording was disabled; it stays
    /// silent even if recording is enabled before it drops, so every record
    /// has a real start.
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.start_ns == u64::MAX || !spans_enabled() {
            return;
        }
        let end_ns = now_ns();
        LOCAL_SINK.with(|sink| {
            sink.push(SpanRecord {
                name: self.name,
                start_ns: self.start_ns,
                end_ns,
                tid: sink.tid,
            });
        });
    }
}

/// Drains every thread's buffer (including buffers of threads that have
/// exited) and returns the records sorted by start time.
pub fn take_spans() -> Vec<SpanRecord> {
    let sinks = sinks().lock().unwrap();
    let mut all = Vec::new();
    for sink in sinks.iter() {
        all.extend(sink.drain());
    }
    all.sort_by_key(|record| (record.start_ns, std::cmp::Reverse(record.end_ns)));
    all
}

/// Number of records lost to ring-buffer overwrites so far.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Renders spans as a Chrome trace-event document (`ph: "X"` complete
/// events, microsecond timestamps) — loadable in Perfetto or
/// `chrome://tracing`.
pub fn chrome_trace(spans: &[SpanRecord]) -> Json {
    let events = spans
        .iter()
        .map(|record| {
            Json::obj([
                ("name", Json::Str(record.name.to_string())),
                ("cat", Json::Str("lsqca".to_string())),
                ("ph", Json::Str("X".to_string())),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(record.tid)),
                ("ts", Json::F64(record.start_ns as f64 / 1000.0)),
                (
                    "dur",
                    Json::F64(record.end_ns.saturating_sub(record.start_ns) as f64 / 1000.0),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("displayTimeUnit", Json::Str("ms".to_string())),
        ("traceEvents", Json::Arr(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable toggle and the drain are process-wide, so tests that touch
    /// them must not interleave.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = test_lock();
        set_spans_enabled(false);
        drop(span("test.disabled"));
        set_spans_enabled(true);
        let taken = take_spans();
        assert!(taken.iter().all(|r| r.name != "test.disabled"));
        set_spans_enabled(false);
    }

    #[test]
    fn spans_nest_and_order_by_start() {
        let _serial = test_lock();
        set_spans_enabled(true);
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        let mine: Vec<SpanRecord> = take_spans()
            .into_iter()
            .filter(|r| r.name.starts_with("test.outer") || r.name.starts_with("test.inner"))
            .collect();
        set_spans_enabled(false);
        assert_eq!(mine.len(), 2);
        let outer = mine.iter().find(|r| r.name == "test.outer").unwrap();
        let inner = mine.iter().find(|r| r.name == "test.inner").unwrap();
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn guard_taken_disabled_stays_silent_across_enable() {
        let _serial = test_lock();
        set_spans_enabled(false);
        let guard = span("test.silent");
        set_spans_enabled(true);
        drop(guard);
        let taken = take_spans();
        set_spans_enabled(false);
        assert!(taken.iter().all(|r| r.name != "test.silent"));
    }

    #[test]
    fn chrome_trace_renders_complete_events() {
        let spans = [SpanRecord {
            name: "sim.warm",
            start_ns: 1_500,
            end_ns: 4_500,
            tid: 2,
        }];
        let json = chrome_trace(&spans);
        let events = json.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(3.0));
    }
}
