//! Unified telemetry for the sweep stack: a process-wide metrics registry
//! and low-overhead span tracing.
//!
//! Every layer of the stack (workload cache, trace lowering, simulator
//! warm/fork, result store, sharded supervisor) reports through the same two
//! primitives:
//!
//! - **Metrics** ([`counter`], [`gauge`], [`histogram`]): named atomics
//!   interned in a global registry. The hot path after the first lookup is a
//!   single relaxed `fetch_add`. [`snapshot`] freezes the registry into a
//!   [`MetricsSnapshot`] that serializes to the stable `lsqca-metrics-v1`
//!   JSON schema, round-trips through [`MetricsSnapshot::from_json`], and
//!   merges across processes with [`MetricsSnapshot::absorb`] — that is how
//!   shard-worker counters survive the process boundary (each worker writes
//!   `metrics-<shard>.json` into the store directory and the supervisor or
//!   `experiments merge` aggregates them).
//! - **Spans** ([`span`]): `(name, start, end)` intervals over a monotonic
//!   process clock, recorded into per-thread ring buffers. Disabled by
//!   default; when off, taking a span is one relaxed atomic load. Enabled
//!   spans cost one `Instant` read at open and a buffered push at close.
//!   [`take_spans`] drains every thread's buffer and [`chrome_trace`] renders
//!   the result as Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`).
//!
//! Nesting of spans is balanced by construction: [`SpanGuard`] is RAII, so a
//! span closes exactly once when its guard drops, in LIFO order per thread.
//!
//! Histograms use fixed log2 buckets: bucket 0 holds the value 0 and bucket
//! `i >= 1` holds values in `[2^(i-1), 2^i)`, so any `u64` maps to one of 65
//! buckets with two instructions (`leading_zeros` + subtract).

mod registry;
mod spans;

pub use registry::{
    bucket_index, bucket_lower_bound, counter, gauge, histogram, snapshot, Counter, Gauge,
    Histogram, HistogramSnapshot, MetricsError, MetricsSnapshot, HISTOGRAM_BUCKETS, METRICS_SCHEMA,
};
pub use spans::{
    chrome_trace, dropped_spans, init_clock, now_ns, set_spans_enabled, span, spans_enabled,
    take_spans, SpanGuard, SpanRecord, SPAN_RING_CAPACITY,
};
