//! The process-wide metrics registry: named counters, gauges, and log2
//! histograms, plus the `lsqca-metrics-v1` snapshot/merge layer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use lsqca_json::Json;

/// Schema tag carried by every serialized [`MetricsSnapshot`].
pub const METRICS_SCHEMA: &str = "lsqca-metrics-v1";

/// Number of log2 histogram buckets: bucket 0 for the value 0, buckets
/// 1..=64 for `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log2 bucket index of `value`: 0 maps to bucket 0, any other `v` to
/// `64 - v.leading_zeros()` (so bucket `i >= 1` covers `[2^(i-1), 2^i)`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `index` (0 for buckets 0 and 1 is split:
/// bucket 0 holds exactly 0, bucket 1 starts at 1).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the counter with an absolute value. Used by layers that
    /// keep their own per-instance atomics (workload cache, result store)
    /// and sync the process-wide total into the registry at snapshot time.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge (heartbeat lag, backoff state, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed log2 buckets (see [`bucket_index`]), with an exact
/// running sum and count alongside.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records `n` observations of `value` at once (bulk flush from a local,
    /// non-atomic histogram — the beat-attribution hook uses this).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
    }

    /// Merges a whole bucket at once, preserving the exact foreign sum.
    pub fn merge_bucket(&self, index: usize, count: u64, sum: u64) {
        self.buckets[index.min(HISTOGRAM_BUCKETS - 1)].fetch_add(count, Ordering::Relaxed);
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Absorbs a local, non-atomic bucket array plus its exact value sum in
    /// one pass — how hot loops flush per-run histograms without paying an
    /// atomic per observation.
    pub fn absorb(&self, buckets: &[u64], sum: u64) {
        let mut count = 0u64;
        for (index, &n) in buckets.iter().take(HISTOGRAM_BUCKETS).enumerate() {
            if n != 0 {
                self.buckets[index].fetch_add(n, Ordering::Relaxed);
                count += n;
            }
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Freezes the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: trailing zero buckets are trimmed, so
/// `buckets.len() <= 65`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (log2 buckets, trailing zeros trimmed).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Bucket-wise merge of another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    let mut map = map.lock().unwrap();
    if let Some(handle) = map.get(name) {
        return handle;
    }
    let handle: &'static T = Box::leak(Box::new(T::default()));
    map.insert(name.to_string(), handle);
    handle
}

/// Interns (or retrieves) the counter named `name`. Handles are `'static`:
/// resolve once, then bump with plain relaxed atomics.
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name)
}

/// Interns (or retrieves) the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name)
}

/// Interns (or retrieves) the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name)
}

/// Freezes every registered metric into a [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        counters: reg
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect(),
    }
}

/// Malformed `lsqca-metrics-v1` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsError(pub String);

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid {METRICS_SCHEMA} document: {}", self.0)
    }
}

impl std::error::Error for MetricsError {}

/// A frozen, mergeable view of the registry — the unit that crosses process
/// boundaries as `metrics-<shard>.json` and lands in `--metrics-out`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Log2 histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters and histograms are summed
    /// (cross-process totals), gauges are namespaced under `gauge_prefix`
    /// (pass `""` to keep names; a later write wins on collision) — a
    /// supervisor absorbing `metrics-3.json` passes `"shard.3."` so worker
    /// gauges stay distinguishable.
    pub fn absorb(&mut self, other: &MetricsSnapshot, gauge_prefix: &str) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(format!("{gauge_prefix}{name}"), *value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Renders the snapshot as a `lsqca-metrics-v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(METRICS_SCHEMA.to_string())),
            (
                "counters",
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::U64(*value))),
                ),
            ),
            (
                "gauges",
                Json::obj(
                    self.gauges
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::I64(*value))),
                ),
            ),
            (
                "histograms",
                Json::obj(self.histograms.iter().map(|(name, hist)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("count", Json::U64(hist.count)),
                            ("sum", Json::U64(hist.sum)),
                            (
                                "buckets",
                                Json::Arr(hist.buckets.iter().map(|b| Json::U64(*b)).collect()),
                            ),
                        ]),
                    )
                })),
            ),
        ])
    }

    /// Decodes a `lsqca-metrics-v1` document, rejecting wrong schemas,
    /// missing sections, unknown keys, and malformed values — a corrupt
    /// shard metrics file must fail loudly here so the aggregator can warn
    /// and skip it rather than fold garbage into the totals.
    pub fn from_json(json: &Json) -> Result<MetricsSnapshot, MetricsError> {
        let Json::Obj(pairs) = json else {
            return Err(MetricsError("not an object".to_string()));
        };
        let mut snapshot = MetricsSnapshot::default();
        let mut seen_schema = false;
        let mut seen = [false; 3];
        for (key, value) in pairs {
            match key.as_str() {
                "schema" => {
                    seen_schema = true;
                    if value.as_str() != Some(METRICS_SCHEMA) {
                        return Err(MetricsError(format!(
                            "schema is {}, expected \"{METRICS_SCHEMA}\"",
                            value.compact()
                        )));
                    }
                }
                "counters" => {
                    seen[0] = true;
                    snapshot.counters = decode_map(value, "counters", |v| {
                        v.as_u64().ok_or("expected a non-negative integer")
                    })?;
                }
                "gauges" => {
                    seen[1] = true;
                    snapshot.gauges =
                        decode_map(value, "gauges", |v| v.as_i64().ok_or("expected an integer"))?;
                }
                "histograms" => {
                    seen[2] = true;
                    snapshot.histograms = decode_map(value, "histograms", decode_histogram)?;
                }
                other => {
                    return Err(MetricsError(format!("unknown key {other:?}")));
                }
            }
        }
        if !seen_schema {
            return Err(MetricsError("missing \"schema\"".to_string()));
        }
        for (idx, section) in ["counters", "gauges", "histograms"].iter().enumerate() {
            if !seen[idx] {
                return Err(MetricsError(format!("missing \"{section}\"")));
            }
        }
        Ok(snapshot)
    }
}

fn decode_map<T>(
    json: &Json,
    section: &str,
    decode: impl Fn(&Json) -> Result<T, &'static str>,
) -> Result<BTreeMap<String, T>, MetricsError> {
    let Json::Obj(pairs) = json else {
        return Err(MetricsError(format!("\"{section}\" is not an object")));
    };
    let mut map = BTreeMap::new();
    for (name, value) in pairs {
        let decoded =
            decode(value).map_err(|err| MetricsError(format!("{section}[{name:?}]: {err}")))?;
        if map.insert(name.clone(), decoded).is_some() {
            return Err(MetricsError(format!("{section}[{name:?}]: duplicate key")));
        }
    }
    Ok(map)
}

fn decode_histogram(json: &Json) -> Result<HistogramSnapshot, &'static str> {
    let Json::Obj(pairs) = json else {
        return Err("expected an object");
    };
    let mut hist = HistogramSnapshot::default();
    let mut seen = [false; 3];
    for (key, value) in pairs {
        match key.as_str() {
            "count" => {
                seen[0] = true;
                hist.count = value
                    .as_u64()
                    .ok_or("count: expected a non-negative integer")?;
            }
            "sum" => {
                seen[1] = true;
                hist.sum = value
                    .as_u64()
                    .ok_or("sum: expected a non-negative integer")?;
            }
            "buckets" => {
                seen[2] = true;
                let arr = value.as_array().ok_or("buckets: expected an array")?;
                if arr.len() > HISTOGRAM_BUCKETS {
                    return Err("buckets: more than 65 log2 buckets");
                }
                hist.buckets = arr
                    .iter()
                    .map(|b| b.as_u64().ok_or("buckets: expected non-negative integers"))
                    .collect::<Result<_, _>>()?;
            }
            _ => return Err("unknown key"),
        }
    }
    if seen != [true; 3] {
        return Err("missing count/sum/buckets");
    }
    let bucket_total: u64 = hist.buckets.iter().sum();
    if bucket_total != hist.count {
        return Err("bucket totals disagree with count");
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsqca_json::parse;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(bucket_index(low), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(high), i, "upper edge of bucket {i}");
            assert_eq!(bucket_lower_bound(i), low);
        }
    }

    #[test]
    fn histogram_records_land_in_their_buckets() {
        let hist = Histogram::default();
        for value in [0, 1, 2, 3, 9, u64::MAX] {
            hist.record(value);
        }
        hist.record_n(5, 10);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 16);
        assert_eq!(snap.sum, 15u64.wrapping_add(u64::MAX).wrapping_add(50));
        assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 10); // 5 x10
        assert_eq!(snap.buckets[4], 1); // 9
        assert_eq!(snap.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn registry_interns_by_name() {
        let a = counter("test.registry.interned");
        a.add(2);
        counter("test.registry.interned").inc();
        assert_eq!(a.get(), 3);
        gauge("test.registry.gauge").set(-7);
        assert_eq!(gauge("test.registry.gauge").get(), -7);
        let snap = snapshot();
        assert_eq!(snap.counters["test.registry.interned"], 3);
        assert_eq!(snap.gauges["test.registry.gauge"], -7);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("sim.runs".to_string(), 42);
        snap.counters.insert("trace.lowered".to_string(), 0);
        snap.gauges.insert("shard.0.backoff_ms".to_string(), -1);
        snap.histograms.insert(
            "sim.beats.seek".to_string(),
            HistogramSnapshot {
                count: 3,
                sum: 12,
                buckets: vec![0, 1, 0, 2],
            },
        );
        let text = snap.to_json().pretty();
        let back = MetricsSnapshot::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let good = MetricsSnapshot::default().to_json().pretty();
        assert!(MetricsSnapshot::from_json(&parse(&good).unwrap()).is_ok());
        for bad in [
            r#"{"counters": {}, "gauges": {}, "histograms": {}}"#,
            r#"{"schema": "lsqca-metrics-v2", "counters": {}, "gauges": {}, "histograms": {}}"#,
            r#"{"schema": "lsqca-metrics-v1", "gauges": {}, "histograms": {}}"#,
            r#"{"schema": "lsqca-metrics-v1", "counters": {}, "gauges": {}, "histograms": {}, "extra": 1}"#,
            r#"{"schema": "lsqca-metrics-v1", "counters": {"x": -1}, "gauges": {}, "histograms": {}}"#,
            r#"{"schema": "lsqca-metrics-v1", "counters": {}, "gauges": {}, "histograms": {"h": {"count": 2, "sum": 0, "buckets": [1]}}}"#,
            r#"[1, 2]"#,
        ] {
            let json = parse(bad).unwrap();
            assert!(MetricsSnapshot::from_json(&json).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn absorb_sums_counters_and_namespaces_gauges() {
        let mut total = MetricsSnapshot::default();
        total.counters.insert("sim.runs".to_string(), 5);
        let mut shard = MetricsSnapshot::default();
        shard.counters.insert("sim.runs".to_string(), 7);
        shard.counters.insert("trace.lowered".to_string(), 2);
        shard.gauges.insert("restarts".to_string(), 1);
        shard.histograms.insert(
            "sim.beats.cx".to_string(),
            HistogramSnapshot {
                count: 1,
                sum: 4,
                buckets: vec![0, 0, 0, 1],
            },
        );
        total.absorb(&shard, "shard.3.");
        total.absorb(&shard, "shard.4.");
        assert_eq!(total.counters["sim.runs"], 19);
        assert_eq!(total.counters["trace.lowered"], 4);
        assert_eq!(total.gauges["shard.3.restarts"], 1);
        assert_eq!(total.gauges["shard.4.restarts"], 1);
        let merged = &total.histograms["sim.beats.cx"];
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 8);
        assert_eq!(merged.buckets, vec![0, 0, 0, 2]);
    }
}
