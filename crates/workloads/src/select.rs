//! SELECT circuits for 2-D Heisenberg models.
//!
//! The SELECT operation applies the `i`-th Pauli term of a Hamiltonian to the
//! system register, controlled on the index register being `|i⟩`
//! (`U_S Σ_i |i⟩|ψ_i⟩ = Σ_i |i⟩ P_i|ψ_i⟩`, Sec. II-D). It dominates the runtime
//! of qubitization-based material simulation, which is why the paper studies its
//! memory access pattern in detail (Figs. 8, 13–15).
//!
//! This module synthesizes SELECT for the nearest-neighbour 2-D Heisenberg model
//! on an `L×L` square lattice (`XX`, `YY`, `ZZ` couplings on every edge), using
//! the unary-iteration construction of Fig. 5:
//!
//! * the **control register** holds the binary term index,
//! * the **temporal register** holds the AND-ladder of Toffolis that recognizes
//!   the current index (Fig. 5b),
//! * the **system register** holds one qubit per lattice site.
//!
//! Consecutive term indices share the high bits of their binary representation,
//! so only the bottom few ladder stages are uncomputed and recomputed between
//! terms — the duplication-removal optimization of Fig. 5c. This is what creates
//! the strong sequential locality the paper observes: control and temporal qubits
//! are touched every term, while each system qubit is touched only when one of
//! its incident edges comes up in raster order.
//!
//! Register widths match the paper's instances exactly: `control = temporal =
//! ⌈log₂(6·L·(L−1))⌉ + 1` and `system = L²`, giving 143 qubits for `L = 11` and
//! 467 / 1,711 / 3,753 / 6,595 / 10,235 for `L = 21 / 41 / 61 / 81 / 101`
//! (Fig. 15).

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::{Circuit, Qubit};
use lsqca_lattice::Pauli;

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;

/// A nearest-neighbour 2-D Heisenberg model on an `L×L` square lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeisenbergModel {
    /// Side length `L` of the square spin lattice.
    pub width: u32,
}

impl HeisenbergModel {
    /// Creates a model on an `L×L` lattice.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` (a single site has no couplings).
    pub fn new(width: u32) -> Self {
        assert!(width >= 2, "heisenberg lattice needs width >= 2");
        HeisenbergModel { width }
    }

    /// Number of lattice sites (`L²`).
    pub fn num_sites(&self) -> u32 {
        self.width * self.width
    }

    /// Nearest-neighbour edges in raster order: for each site, its east
    /// neighbour then its south neighbour.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let l = self.width;
        let site = |x: u32, y: u32| y * l + x;
        let mut edges = Vec::new();
        for y in 0..l {
            for x in 0..l {
                if x + 1 < l {
                    edges.push((site(x, y), site(x + 1, y)));
                }
                if y + 1 < l {
                    edges.push((site(x, y), site(x, y + 1)));
                }
            }
        }
        edges
    }

    /// Number of Hamiltonian terms: three couplings (`XX`, `YY`, `ZZ`) per edge.
    pub fn num_terms(&self) -> u64 {
        3 * self.edges().len() as u64
    }

    /// The Hamiltonian terms in iteration order: `(pauli, site_a, site_b)`.
    pub fn terms(&self) -> Vec<(Pauli, u32, u32)> {
        let mut terms = Vec::new();
        for (a, b) in self.edges() {
            for pauli in [Pauli::X, Pauli::Y, Pauli::Z] {
                terms.push((pauli, a, b));
            }
        }
        terms
    }
}

/// Parameters of the SELECT benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectConfig {
    /// The target Heisenberg model.
    pub model: HeisenbergModel,
    /// Optional cap on the number of Hamiltonian terms iterated; `None` iterates
    /// the full Hamiltonian. Smaller values give shorter circuits with the same
    /// register widths and access structure, for tests and quick benchmarks.
    pub max_terms: Option<u64>,
}

impl SelectConfig {
    /// SELECT for an `L×L` Heisenberg model with the full term list.
    pub fn for_width(width: u32) -> Self {
        SelectConfig {
            model: HeisenbergModel::new(width),
            max_terms: None,
        }
    }

    /// The 10×10 instance used in the motivation study (Fig. 8).
    pub fn paper_motivation() -> Self {
        SelectConfig::for_width(10)
    }

    /// The 11×11 instance (143 logical qubits) used in Fig. 13/14.
    pub fn paper_benchmark() -> Self {
        SelectConfig::for_width(11)
    }

    /// Width of the control register in bits: `⌈log₂(#terms)⌉ + 1`.
    pub fn control_bits(&self) -> u32 {
        let terms = self.model.num_terms().max(2);
        let bits = 64 - (terms - 1).leading_zeros();
        bits + 1
    }

    /// Width of the temporal register (equal to the control register).
    pub fn temporal_bits(&self) -> u32 {
        self.control_bits()
    }

    /// Total logical qubits: control + temporal + system.
    pub fn total_qubits(&self) -> u32 {
        self.control_bits() + self.temporal_bits() + self.model.num_sites()
    }
}

impl Default for SelectConfig {
    fn default() -> Self {
        SelectConfig::paper_benchmark()
    }
}

/// Internal helper tracking the AND-ladder state during unary iteration.
struct Ladder {
    control: Vec<Qubit>,
    temporal: Vec<Qubit>,
    /// Bits (MSB-first order per stage) of the currently computed index, one
    /// entry per computed stage.
    computed: Vec<u64>,
    bits: u32,
}

impl Ladder {
    fn stage_count(&self) -> usize {
        self.bits as usize - 1
    }

    /// Control-register qubit used by stage `s` (plus the extra MSB for stage 0).
    fn stage_bit_position(&self, stage: usize) -> u32 {
        self.bits - 2 - stage as u32
    }

    fn flag(&self) -> Qubit {
        self.temporal[self.stage_count() - 1]
    }

    /// Emits an X-wrapped Toffoli computing (or uncomputing) stage `stage` for
    /// term index `index`.
    fn emit_stage(&self, circuit: &mut Circuit, stage: usize, index: u64) {
        let bit = |pos: u32| (index >> pos) & 1 == 1;
        let pos = self.stage_bit_position(stage);
        let ctrl_qubit = self.control[pos as usize];
        if stage == 0 {
            let msb_pos = self.bits - 1;
            let msb_qubit = self.control[msb_pos as usize];
            if !bit(msb_pos) {
                circuit.x(msb_qubit);
            }
            if !bit(pos) {
                circuit.x(ctrl_qubit);
            }
            circuit.toffoli(msb_qubit, ctrl_qubit, self.temporal[0]);
            if !bit(pos) {
                circuit.x(ctrl_qubit);
            }
            if !bit(msb_pos) {
                circuit.x(msb_qubit);
            }
        } else {
            if !bit(pos) {
                circuit.x(ctrl_qubit);
            }
            circuit.toffoli(self.temporal[stage - 1], ctrl_qubit, self.temporal[stage]);
            if !bit(pos) {
                circuit.x(ctrl_qubit);
            }
        }
    }

    /// Brings the ladder from its current state to fully recognizing `index`,
    /// uncomputing only the stages whose control bits changed (duplication
    /// removal, Fig. 5c).
    fn advance_to(&mut self, circuit: &mut Circuit, index: u64) {
        // Find the deepest stage that can be kept: all its bits must agree with
        // the previously computed index.
        let mut keep = 0usize;
        while keep < self.computed.len() {
            let prev = self.computed[keep];
            let pos = self.stage_bit_position(keep);
            let same_low = (prev >> pos) & 1 == (index >> pos) & 1;
            let same_high = if keep == 0 {
                let msb = self.bits - 1;
                (prev >> msb) & 1 == (index >> msb) & 1
            } else {
                true
            };
            if same_low && same_high {
                keep += 1;
            } else {
                break;
            }
        }
        // Uncompute invalidated stages from the top of the ladder down.
        while self.computed.len() > keep {
            let stage = self.computed.len() - 1;
            let prev = self.computed[stage];
            self.emit_stage(circuit, stage, prev);
            self.computed.pop();
        }
        // Recompute the remaining stages for the new index.
        while self.computed.len() < self.stage_count() {
            let stage = self.computed.len();
            self.emit_stage(circuit, stage, index);
            self.computed.push(index);
        }
    }

    /// Uncomputes every remaining stage (end of the iteration).
    fn tear_down(&mut self, circuit: &mut Circuit) {
        while let Some(prev) = self.computed.last().copied() {
            let stage = self.computed.len() - 1;
            self.emit_stage(circuit, stage, prev);
            self.computed.pop();
        }
    }
}

/// Applies the flag-controlled two-site Pauli coupling to the system register.
fn apply_controlled_term(circuit: &mut Circuit, flag: Qubit, pauli: Pauli, sites: [Qubit; 2]) {
    for site in sites {
        match pauli {
            Pauli::X => circuit.cnot(flag, site),
            Pauli::Y => {
                circuit.sdg(site);
                circuit.cnot(flag, site);
                circuit.s(site);
            }
            Pauli::Z => circuit.cz(flag, site),
            Pauli::I => {}
        }
    }
}

/// Generates the SELECT circuit for the configured Heisenberg model.
///
/// The circuit prepares the control register in uniform superposition (standing
/// in for the output of PREPARE), then performs the unary iteration over every
/// Hamiltonian term with duplication removal, and finally measures the system
/// register.
pub fn select_heisenberg(config: SelectConfig) -> Circuit {
    let bits = config.control_bits();
    let model = config.model;
    let mut circuit = Circuit::with_registers(format!(
        "select_heisenberg_{l}x{l}_n{n}",
        l = model.width,
        n = config.total_qubits()
    ));
    let control: Vec<Qubit> = circuit
        .add_register("control", RegisterRole::Control, bits)
        .collect();
    let temporal: Vec<Qubit> = circuit
        .add_register("temporal", RegisterRole::Temporal, config.temporal_bits())
        .collect();
    let system: Vec<Qubit> = circuit
        .add_register("system", RegisterRole::System, model.num_sites())
        .collect();

    for q in 0..circuit.num_qubits() {
        circuit.prep_z(q);
    }
    // Control register in superposition over term indices (PREPARE's output).
    for &q in &control {
        circuit.h(q);
    }

    let mut ladder = Ladder {
        control,
        temporal,
        computed: Vec::new(),
        bits,
    };

    let terms = model.terms();
    let limit = config
        .max_terms
        .map(|m| m.min(terms.len() as u64))
        .unwrap_or(terms.len() as u64) as usize;

    for (index, &(pauli, a, b)) in terms.iter().take(limit).enumerate() {
        ladder.advance_to(&mut circuit, index as u64);
        let flag = ladder.flag();
        apply_controlled_term(
            &mut circuit,
            flag,
            pauli,
            [system[a as usize], system[b as usize]],
        );
    }
    ladder.tear_down(&mut circuit);

    for &q in &system {
        circuit.measure_z(q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_widths_match_the_paper_instances() {
        // (lattice width, expected total qubits) from Sec. VI-B and Fig. 15.
        let expected = [
            (11u32, 143u32),
            (21, 467),
            (41, 1711),
            (61, 3753),
            (81, 6595),
            (101, 10235),
        ];
        for (width, qubits) in expected {
            let cfg = SelectConfig::for_width(width);
            assert_eq!(
                cfg.total_qubits(),
                qubits,
                "width {width} should need {qubits} qubits"
            );
        }
    }

    #[test]
    fn model_geometry() {
        let model = HeisenbergModel::new(3);
        assert_eq!(model.num_sites(), 9);
        // 2 * 3 * 2 = 12 edges, 36 terms.
        assert_eq!(model.edges().len(), 12);
        assert_eq!(model.num_terms(), 36);
        assert_eq!(model.terms().len(), 36);
        // Every edge joins adjacent sites.
        for (a, b) in model.edges() {
            let (ax, ay) = (a % 3, a / 3);
            let (bx, by) = (b % 3, b / 3);
            assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1);
        }
    }

    #[test]
    fn small_select_builds_and_touches_all_registers() {
        let cfg = SelectConfig::for_width(2);
        let c = select_heisenberg(cfg);
        assert_eq!(c.num_qubits(), cfg.total_qubits());
        let regs = c.registers();
        assert_eq!(regs.by_name("system").unwrap().len(), 4);
        assert_eq!(
            regs.by_name("control").unwrap().len(),
            cfg.control_bits() as usize
        );
        let stats = c.stats();
        assert!(stats.toffoli_count > 0);
        assert!(stats.two_qubit_gates > 0);
    }

    #[test]
    fn duplication_removal_reduces_toffoli_count() {
        // Without duplication removal each of the T terms would need
        // 2*(bits-1) Toffolis; with it the average is much smaller.
        let cfg = SelectConfig::for_width(4);
        let c = select_heisenberg(cfg);
        let toffolis = c.stats().toffoli_count;
        let terms = cfg.model.num_terms();
        let naive = terms * 2 * (cfg.control_bits() as u64 - 1);
        assert!(
            toffolis < naive / 2,
            "expected < {} Toffolis, got {toffolis}",
            naive / 2
        );
    }

    #[test]
    fn max_terms_caps_the_iteration() {
        let full = select_heisenberg(SelectConfig::for_width(3));
        let capped = select_heisenberg(SelectConfig {
            model: HeisenbergModel::new(3),
            max_terms: Some(5),
        });
        assert!(capped.len() < full.len());
        assert_eq!(capped.num_qubits(), full.num_qubits());
    }

    #[test]
    fn ladder_is_fully_uncomputed_at_the_end() {
        // Every temporal qubit must be written an even number of times, so the
        // ladder ends clean.
        let c = select_heisenberg(SelectConfig::for_width(3));
        let temporal = c.registers().by_name("temporal").unwrap().range.clone();
        for q in temporal {
            let writes = c
                .gates()
                .iter()
                .filter(
                    |g| matches!(g, lsqca_circuit::Gate::Toffoli { target, .. } if *target == q),
                )
                .count();
            assert_eq!(writes % 2, 0, "temporal qubit {q} left dirty");
        }
    }

    #[test]
    #[should_panic(expected = "width >= 2")]
    fn degenerate_lattice_panics() {
        let _ = HeisenbergModel::new(1);
    }
}
