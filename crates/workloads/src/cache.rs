//! The on-disk compiled-workload cache.
//!
//! Repeated sweep invocations (`experiments --full` run twice, CI reruns,
//! iterating on simulator changes) used to pay full workload compilation every
//! time. A [`WorkloadCache`] persists [`CompiledWorkload`] artifacts as JSON
//! under a cache directory so the second invocation performs **zero**
//! compilation:
//!
//! * **Location** — `$LSQCA_CACHE_DIR` if set; otherwise `lsqca-cache/` inside
//!   the build's `target/` directory (discovered from the running executable's
//!   path, falling back to `./target/lsqca-cache`). `LSQCA_NO_CACHE=1`
//!   disables the disk entirely.
//! * **Key** — the FNV-1a content hash of the workload-generator descriptor
//!   (every generator parameter **plus the generator's emission-logic
//!   revision**, see
//!   [`BenchmarkConfig::descriptor`](crate::registry::BenchmarkConfig::descriptor)),
//!   the compiler configuration, [`ISA_VERSION`], and [`TRACE_REVISION`].
//!   Changing any of them changes the file name, so stale entries are simply
//!   never found again.
//!
//! # When to bump what
//!
//! The key protects against two different kinds of staleness; each has its
//! own version knob, and using the wrong one over-invalidates:
//!
//! * **A generator's emission logic changed** (the circuit emitted for an
//!   *unchanged* configuration is different — reordered gates, a fixed
//!   off-by-one, a new decomposition): bump that generator module's
//!   `REVISION` constant (e.g. `lsqca_workloads::select::REVISION`). Only
//!   that generator's cached artifacts are invalidated. A `Debug`-rendered
//!   config alone cannot catch this case — the descriptor text would be
//!   byte-identical before and after the logic change.
//! * **The instruction set or its serialized form changed** (new opcode,
//!   changed operand encoding, different latency-class mapping): bump
//!   [`ISA_VERSION`] in `lsqca-isa`. Every cached artifact of every
//!   generator is invalidated, because all of them embed programs in the old
//!   dialect.
//! * **The trace lowering changed** (new [`ExecKind`](lsqca_isa::ExecKind),
//!   different flag bits or fixed-beat values, a changed trace text format):
//!   bump [`TRACE_REVISION`] in `lsqca-isa`. Artifacts embed the pre-lowered
//!   execution trace next to the program text, so every cached artifact is
//!   invalidated and re-lowered — the program text itself is unchanged, which
//!   is exactly why `ISA_VERSION` alone cannot catch this case. An artifact
//!   found under an old key path anyway (hand-copied file) is quarantined by
//!   [`ArtifactError::TraceRevisionMismatch`] at load time and recompiled.
//! * **The simulator's result semantics changed** (same artifact, different
//!   numbers): that is `lsqca_sim::RESULTS_REVISION`'s job, keyed by the
//!   *result store*, not this cache. The trace engine reproduces the
//!   interpreter's statistics exactly (shadow-equivalence proptests in
//!   `lsqca-sim`), so introducing `TRACE_REVISION` did **not** bump
//!   `RESULTS_REVISION`: cached *results* stay valid even as cached
//!   *artifacts* are re-lowered. Bump both only when a lowering change also
//!   changes what the simulator reports.
//! * **A generator config field was renamed or added**: nothing to bump —
//!   the `Debug` rendering (and therefore the key) already changed; the old
//!   entries are simply never found again.
//! * **Integrity** — each artifact stores the key it was compiled for, the ISA
//!   version, and a payload hash. A truncated file, a hand-edited field, a
//!   hash-colliding key, or a version mismatch is detected at load time and
//!   the artifact is transparently recompiled (and rewritten).
//! * **Concurrency & durability** — writes go through
//!   [`lsqca_store::atomic_write`]: a temporary file, an fsync, a `rename`,
//!   and a directory fsync, so concurrent sweep threads never observe a torn
//!   artifact and a crash cannot publish a truncated one.
//! * **Degradation** — all filesystem access goes through the
//!   [`lsqca_store::StoreIo`] trait (swappable for fault injection in tests).
//!   The first filesystem error — an unreadable or unwritable cache directory
//!   — degrades the cache to in-memory compilation for the rest of the
//!   process with a single stderr warning, instead of erroring per entry.

use crate::compiled::{fnv1a64, ArtifactError, CompiledWorkload};
use lsqca_circuit::Circuit;
use lsqca_compiler::CompilerConfig;
use lsqca_isa::{ISA_VERSION, TRACE_REVISION};
use lsqca_store::{atomic_write, slug, DiskIo, StoreIo};
use std::fmt;
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How a [`WorkloadCache::load_or_compile`] request was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheEvent {
    /// A valid artifact was loaded from disk; no compilation happened.
    Hit,
    /// No artifact existed (or caching is disabled); the workload was compiled.
    Compiled,
    /// An artifact existed but failed validation; it was recompiled.
    Invalidated(InvalidationReason),
}

/// Why a cached artifact was rejected and recompiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidationReason {
    /// The file exists but could not be read. (Filesystem errors now degrade
    /// the whole cache instead of invalidating per entry, so this variant is
    /// kept only for callers matching on historical events.)
    Unreadable(String),
    /// The file is not valid JSON (e.g. truncated mid-write).
    NotJson(String),
    /// The document failed artifact validation (schema, ISA version, payload
    /// hash, malformed field).
    Artifact(ArtifactError),
    /// The artifact was compiled for a different cache key (hash collision or
    /// a renamed/copied file).
    KeyMismatch {
        /// The key recorded in the artifact.
        stored: String,
    },
}

impl fmt::Display for InvalidationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidationReason::Unreadable(e) => write!(f, "unreadable: {e}"),
            InvalidationReason::NotJson(e) => write!(f, "not valid JSON: {e}"),
            InvalidationReason::Artifact(e) => write!(f, "{e}"),
            InvalidationReason::KeyMismatch { stored } => {
                write!(f, "artifact belongs to key `{stored}`")
            }
        }
    }
}

/// Counters of one cache instance (monotonic over its lifetime).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from disk without compiling.
    pub hits: u64,
    /// Requests that compiled because no artifact existed (or disk is off).
    pub compiled: u64,
    /// Requests that recompiled because a cached artifact failed validation.
    pub invalidated: u64,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compiled, {} hits, {} invalidated",
            self.compiled, self.hits, self.invalidated
        )
    }
}

/// An on-disk cache of [`CompiledWorkload`] artifacts.
#[derive(Debug)]
pub struct WorkloadCache {
    io: Arc<dyn StoreIo>,
    /// `None` when caching is disabled: every request compiles.
    dir: Option<PathBuf>,
    /// Set after the first filesystem error: the cache stops touching disk
    /// and compiles in memory for the rest of the process.
    degraded: AtomicBool,
    hits: AtomicU64,
    compiled: AtomicU64,
    invalidated: AtomicU64,
}

impl WorkloadCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self::with_io(Some(dir.into()), Arc::new(DiskIo))
    }

    /// A cache that never touches disk; every request compiles.
    pub fn disabled() -> Self {
        Self::with_io(None, Arc::new(DiskIo))
    }

    /// A cache over an explicit [`StoreIo`] backend — the fault-injection
    /// entry point.
    pub fn with_io(dir: Option<PathBuf>, io: Arc<dyn StoreIo>) -> Self {
        WorkloadCache {
            io,
            dir,
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            compiled: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// The cache the environment selects: `$LSQCA_CACHE_DIR` if set,
    /// disabled if `$LSQCA_NO_CACHE` is set to anything but `0`/empty,
    /// otherwise `lsqca-cache/` inside the build's `target/` directory.
    pub fn from_env() -> Self {
        if let Ok(no_cache) = std::env::var("LSQCA_NO_CACHE") {
            if !no_cache.is_empty() && no_cache != "0" {
                return WorkloadCache::disabled();
            }
        }
        if let Ok(dir) = std::env::var("LSQCA_CACHE_DIR") {
            if !dir.is_empty() {
                return WorkloadCache::at(dir);
            }
        }
        WorkloadCache::at(default_cache_dir())
    }

    /// The directory artifacts are stored in; `None` when disabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether the cache has degraded to in-memory compilation after a
    /// filesystem error.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// This instance's hit/compile/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            compiled: self.compiled.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }

    /// The full cache key for a workload descriptor under a compiler
    /// configuration: generator config + compiler config + ISA version +
    /// trace revision, per the invalidation contract of the module docs.
    pub fn key(descriptor: &str, config: &CompilerConfig) -> String {
        format!("{descriptor}|compiler={config:?}|isa=v{ISA_VERSION}|trace=v{TRACE_REVISION}")
    }

    /// The on-disk path the artifact for `(descriptor, config)` lives at.
    /// Returns `None` when caching is disabled.
    pub fn path_for(&self, descriptor: &str, config: &CompilerConfig) -> Option<PathBuf> {
        let key = Self::key(descriptor, config);
        self.dir.as_ref().map(|d| {
            d.join(format!(
                "{}-{:016x}.json",
                slug(descriptor),
                fnv1a64(key.as_bytes())
            ))
        })
    }

    /// Loads the artifact for `(descriptor, config)`, or compiles it by
    /// generating the circuit with `build` and stores the result. Returns the
    /// artifact and how it was obtained.
    pub fn load_or_compile(
        &self,
        descriptor: &str,
        config: CompilerConfig,
        build: impl FnOnce() -> Circuit,
    ) -> (CompiledWorkload, CacheEvent) {
        let key = Self::key(descriptor, &config);
        let path = if self.is_degraded() {
            None
        } else {
            self.path_for(descriptor, &config)
        };
        let Some(path) = path else {
            self.compiled.fetch_add(1, Ordering::Relaxed);
            let _span = lsqca_telemetry::span("workload.compile");
            return (
                CompiledWorkload::compile(key, &build(), config),
                CacheEvent::Compiled,
            );
        };
        let miss = {
            let _span = lsqca_telemetry::span("workload.cache_load");
            match load_artifact(self.io.as_ref(), &path, &key) {
                Ok(artifact) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (artifact, CacheEvent::Hit);
                }
                Err(miss) => miss,
            }
        };
        let compile_span = lsqca_telemetry::span("workload.compile");
        let artifact = CompiledWorkload::compile(key, &build(), config);
        drop(compile_span);
        if let Miss::Io(err) = &miss {
            // An unreadable cache (not just a missing or corrupt entry) means
            // the directory itself is unhealthy: degrade once instead of
            // warning on every entry.
            self.degrade("read", err);
        } else if let Err(err) = store_artifact(self.io.as_ref(), &path, &artifact) {
            self.degrade("write", &err);
        }
        let event = match miss {
            Miss::Absent | Miss::Io(_) => {
                self.compiled.fetch_add(1, Ordering::Relaxed);
                CacheEvent::Compiled
            }
            Miss::Invalid(reason) => {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                CacheEvent::Invalidated(reason)
            }
        };
        (artifact, event)
    }

    /// Deletes every artifact in the cache directory. A missing directory is
    /// not an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the directory not existing.
    pub fn clear(&self) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        match self.io.list_dir(dir) {
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
            Ok(entries) => {
                for path in entries {
                    if path.extension().is_some_and(|ext| ext == "json") {
                        self.io.remove_file(&path)?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Flip to in-memory compilation, warning exactly once.
    fn degrade(&self, what: &str, err: &io::Error) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            let dir = self
                .dir
                .as_deref()
                .map(|d| d.display().to_string())
                .unwrap_or_default();
            eprintln!(
                "warning: workload cache: {what} failed in {dir} ({err}); \
                 compiling in memory for the rest of this run"
            );
        }
    }
}

enum Miss {
    Absent,
    /// The filesystem failed (permissions, I/O error) — distinct from a
    /// present-but-invalid entry, this degrades the whole cache.
    Io(io::Error),
    Invalid(InvalidationReason),
}

fn load_artifact(io: &dyn StoreIo, path: &Path, key: &str) -> Result<CompiledWorkload, Miss> {
    let text = match io.read(path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => return Err(Miss::Absent),
        Err(e) => return Err(Miss::Io(e)),
    };
    let doc = lsqca_json::parse(&text)
        .map_err(|e| Miss::Invalid(InvalidationReason::NotJson(e.to_string())))?;
    let artifact = CompiledWorkload::from_json(&doc)
        .map_err(|e| Miss::Invalid(InvalidationReason::Artifact(e)))?;
    if artifact.descriptor() != key {
        return Err(Miss::Invalid(InvalidationReason::KeyMismatch {
            stored: artifact.descriptor().to_string(),
        }));
    }
    Ok(artifact)
}

fn store_artifact(io: &dyn StoreIo, path: &Path, artifact: &CompiledWorkload) -> io::Result<()> {
    atomic_write(io, path, artifact.to_json().pretty().as_bytes())
}

/// The default cache location: `lsqca-cache/` inside the `target/` directory
/// the running executable was built into, so binaries, tests, and benches all
/// share one cache per checkout. Falls back to `./target/lsqca-cache` when no
/// ancestor directory is named `target` (e.g. an installed binary).
fn default_cache_dir() -> PathBuf {
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors().skip(1) {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.join("lsqca-cache");
            }
        }
    }
    PathBuf::from("target").join("lsqca-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::compile_count;
    use crate::registry::{Benchmark, InstanceSize};
    use lsqca_store::FaultyIo;
    use std::fs;

    fn temp_cache(tag: &str) -> WorkloadCache {
        let dir =
            std::env::temp_dir().join(format!("lsqca-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        WorkloadCache::at(dir)
    }

    fn ghz() -> (String, impl Fn() -> Circuit) {
        let cfg = Benchmark::Ghz.config(InstanceSize::Reduced);
        (cfg.descriptor(), move || cfg.build())
    }

    #[test]
    fn second_request_is_a_hit_with_zero_compilation() {
        let cache = temp_cache("hit");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();

        let (first, event) = cache.load_or_compile(&desc, config, &build);
        assert_eq!(event, CacheEvent::Compiled);

        let before = compile_count();
        let (second, event) = cache.load_or_compile(&desc, config, &build);
        assert_eq!(event, CacheEvent::Hit);
        assert_eq!(compile_count(), before, "a cache hit must not compile");
        assert_eq!(first, second);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                compiled: 1,
                invalidated: 0
            }
        );
    }

    #[test]
    fn mutated_generator_config_changes_the_key() {
        let cache = temp_cache("config-key");
        let a = Benchmark::Ghz.config(InstanceSize::Reduced);
        let b = Benchmark::Ghz.config(InstanceSize::Paper);
        assert_ne!(a.descriptor(), b.descriptor());
        assert_ne!(
            cache.path_for(&a.descriptor(), &CompilerConfig::default()),
            cache.path_for(&b.descriptor(), &CompilerConfig::default()),
        );
        let (_, event) =
            cache.load_or_compile(&a.descriptor(), CompilerConfig::default(), || a.build());
        assert_eq!(event, CacheEvent::Compiled);
        // The paper-sized GHZ is cheap enough to build here; its mutated
        // config must not be served the reduced artifact.
        let (w, event) =
            cache.load_or_compile(&b.descriptor(), CompilerConfig::default(), || b.build());
        assert_eq!(event, CacheEvent::Compiled);
        assert_eq!(w.num_qubits, 127);
    }

    #[test]
    fn compiler_config_participates_in_the_key() {
        let cache = temp_cache("compiler-key");
        let (desc, build) = ghz();
        let in_memory = CompilerConfig::default();
        let load_store = CompilerConfig {
            use_in_memory_ops: false,
            ..CompilerConfig::default()
        };
        cache.load_or_compile(&desc, in_memory, &build);
        let (w, event) = cache.load_or_compile(&desc, load_store, &build);
        assert_eq!(event, CacheEvent::Compiled);
        assert!(w.program.iter().any(|i| !i.is_in_memory()));
        // Both artifacts now hit independently.
        assert_eq!(
            cache.load_or_compile(&desc, in_memory, &build).1,
            CacheEvent::Hit
        );
        assert_eq!(
            cache.load_or_compile(&desc, load_store, &build).1,
            CacheEvent::Hit
        );
    }

    #[test]
    fn truncated_artifact_is_recompiled_not_served() {
        let cache = temp_cache("truncated");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();
        let (original, _) = cache.load_or_compile(&desc, config, &build);

        let path = cache.path_for(&desc, &config).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();

        let (recompiled, event) = cache.load_or_compile(&desc, config, &build);
        assert!(
            matches!(
                event,
                CacheEvent::Invalidated(InvalidationReason::NotJson(_))
            ),
            "unexpected event {event:?}"
        );
        assert_eq!(recompiled, original);
        // The rewrite repaired the entry.
        assert_eq!(
            cache.load_or_compile(&desc, config, &build).1,
            CacheEvent::Hit
        );
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn bumped_isa_version_is_recompiled_not_served() {
        let cache = temp_cache("isa-version");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();
        cache.load_or_compile(&desc, config, &build);

        let path = cache.path_for(&desc, &config).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(
            &path,
            text.replace(
                &format!("\"isa_version\": {ISA_VERSION}"),
                "\"isa_version\": 999",
            ),
        )
        .unwrap();

        let (_, event) = cache.load_or_compile(&desc, config, &build);
        assert!(
            matches!(
                event,
                CacheEvent::Invalidated(InvalidationReason::Artifact(
                    ArtifactError::IsaVersionMismatch { found: 999, .. }
                ))
            ),
            "unexpected event {event:?}"
        );
    }

    #[test]
    fn bumped_trace_revision_is_quarantined_and_relowered() {
        let cache = temp_cache("trace-revision");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();
        cache.load_or_compile(&desc, config, &build);

        // Simulate an artifact lowered by a different trace revision landing
        // at this key's path (the key normally shifts with the revision, so
        // this is the hand-copied-file case).
        let path = cache.path_for(&desc, &config).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(
            &path,
            text.replace(
                &format!("\"trace_revision\": {TRACE_REVISION}"),
                "\"trace_revision\": 777",
            ),
        )
        .unwrap();

        let (w, event) = cache.load_or_compile(&desc, config, &build);
        assert!(
            matches!(
                &event,
                CacheEvent::Invalidated(InvalidationReason::Artifact(
                    ArtifactError::TraceRevisionMismatch { found: 777, .. }
                ))
            ),
            "unexpected event {event:?}"
        );
        assert_eq!(w.trace().len(), w.program.len(), "re-lowered on reject");
        // The quarantined entry was rewritten at the current revision.
        assert_eq!(
            cache.load_or_compile(&desc, config, &build).1,
            CacheEvent::Hit
        );
    }

    #[test]
    fn corrupted_payload_is_recompiled_not_served() {
        let cache = temp_cache("payload");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();
        cache.load_or_compile(&desc, config, &build);

        let path = cache.path_for(&desc, &config).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        // Swap one instruction for another: valid JSON, valid program text,
        // wrong content — only the payload hash catches it.
        assert!(text.contains("HD.M"));
        fs::write(&path, text.replacen("HD.M", "PH.M", 1)).unwrap();

        let (_, event) = cache.load_or_compile(&desc, config, &build);
        assert!(
            matches!(
                event,
                CacheEvent::Invalidated(InvalidationReason::Artifact(
                    ArtifactError::PayloadHashMismatch { .. }
                ))
            ),
            "unexpected event {event:?}"
        );
    }

    #[test]
    fn foreign_artifact_at_the_key_path_is_rejected() {
        let cache = temp_cache("key-mismatch");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();
        cache.load_or_compile(&desc, config, &build);

        let other = Benchmark::Cat.config(InstanceSize::Reduced);
        let from = cache.path_for(&desc, &config).unwrap();
        let to = cache.path_for(&other.descriptor(), &config).unwrap();
        fs::create_dir_all(to.parent().unwrap()).unwrap();
        fs::copy(&from, &to).unwrap();

        let (w, event) = cache.load_or_compile(&other.descriptor(), config, || other.build());
        assert!(
            matches!(
                event,
                CacheEvent::Invalidated(InvalidationReason::KeyMismatch { .. })
            ),
            "unexpected event {event:?}"
        );
        assert_eq!(w.num_qubits, 32, "the cat workload must be recompiled");
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let cache = WorkloadCache::disabled();
        let (desc, build) = ghz();
        assert!(cache.dir().is_none());
        assert!(cache.path_for(&desc, &CompilerConfig::default()).is_none());
        for _ in 0..2 {
            let (_, event) = cache.load_or_compile(&desc, CompilerConfig::default(), &build);
            assert_eq!(event, CacheEvent::Compiled);
        }
        assert_eq!(cache.stats().compiled, 2);
    }

    #[test]
    fn clear_removes_entries() {
        let cache = temp_cache("clear");
        let (desc, build) = ghz();
        let config = CompilerConfig::default();
        cache.load_or_compile(&desc, config, &build);
        assert!(cache.path_for(&desc, &config).unwrap().exists());
        cache.clear().unwrap();
        assert!(!cache.path_for(&desc, &config).unwrap().exists());
        // Clearing a never-created cache directory is fine too.
        temp_cache("clear-missing").clear().unwrap();
    }

    #[test]
    fn slugs_are_filesystem_friendly() {
        assert_eq!(
            slug("Ghz(GhzConfig { qubits: 16 })"),
            "ghz-ghzconfig---qubits--16"
        );
        assert_eq!(slug(""), "workload");
        assert!(slug(&"x".repeat(100)).len() <= 48);
    }

    #[test]
    fn unwritable_cache_degrades_once_and_still_compiles() {
        let cache = WorkloadCache::with_io(
            Some(PathBuf::from("/cache")),
            Arc::new(FaultyIo::unwritable()),
        );
        let (desc, build) = ghz();
        for _ in 0..3 {
            let (_, event) = cache.load_or_compile(&desc, CompilerConfig::default(), &build);
            assert_eq!(event, CacheEvent::Compiled);
        }
        assert!(cache.is_degraded());
        assert_eq!(cache.stats().compiled, 3);
        assert_eq!(cache.stats().invalidated, 0, "no per-entry errors");
    }

    #[test]
    fn stored_artifacts_survive_a_crash() {
        // The fsync-before-rename contract: an artifact served as a hit after
        // a simulated power cut must be the complete one.
        let io = Arc::new(FaultyIo::reliable());
        let cache = WorkloadCache::with_io(Some(PathBuf::from("/cache")), io.clone());
        let (desc, build) = ghz();
        let (first, event) = cache.load_or_compile(&desc, CompilerConfig::default(), &build);
        assert_eq!(event, CacheEvent::Compiled);
        io.crash();

        let fresh = WorkloadCache::with_io(Some(PathBuf::from("/cache")), io);
        let before = compile_count();
        let (second, event) = fresh.load_or_compile(&desc, CompilerConfig::default(), &build);
        assert_eq!(event, CacheEvent::Hit);
        assert_eq!(compile_count(), before);
        assert_eq!(first, second);
    }

    #[test]
    fn events_and_stats_render() {
        assert!(InvalidationReason::Unreadable("denied".into())
            .to_string()
            .contains("denied"));
        assert!(InvalidationReason::KeyMismatch { stored: "k".into() }
            .to_string()
            .contains("k"));
        let stats = CacheStats {
            hits: 2,
            compiled: 1,
            invalidated: 0,
        };
        assert_eq!(stats.to_string(), "1 compiled, 2 hits, 0 invalidated");
    }
}
