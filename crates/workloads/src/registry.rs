//! Registry of the paper's benchmark suite.

use crate::adder::{ripple_carry_adder, AdderConfig};
use crate::bv::{bernstein_vazirani, BvConfig};
use crate::cat::{cat_state, CatConfig};
use crate::ghz::{ghz_state, GhzConfig};
use crate::multiplier::{shift_add_multiplier, MultiplierConfig};
use crate::select::{select_heisenberg, SelectConfig};
use crate::square_root::{square_root_search, SquareRootConfig};
use lsqca_circuit::Circuit;
use std::fmt;

/// The seven benchmarks evaluated in Sec. VI-B of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Benchmark {
    /// 433-qubit ripple-carry adder.
    Adder,
    /// 280-qubit Bernstein–Vazirani.
    Bv,
    /// 260-qubit cat-state preparation.
    Cat,
    /// 127-qubit GHZ-state preparation.
    Ghz,
    /// 400-qubit shift-and-add multiplier.
    Multiplier,
    /// 60-qubit square root via amplitude amplification.
    SquareRoot,
    /// SELECT for the 11×11 2-D Heisenberg model (143 qubits).
    Select,
}

impl Benchmark {
    /// All benchmarks in the order the paper lists them.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Adder,
        Benchmark::Bv,
        Benchmark::Cat,
        Benchmark::Ghz,
        Benchmark::Multiplier,
        Benchmark::SquareRoot,
        Benchmark::Select,
    ];

    /// The short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Adder => "adder",
            Benchmark::Bv => "bv",
            Benchmark::Cat => "cat",
            Benchmark::Ghz => "ghz",
            Benchmark::Multiplier => "multiplier",
            Benchmark::SquareRoot => "square_root",
            Benchmark::Select => "SELECT",
        }
    }

    /// Parses a benchmark from its figure name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        let lower = name.to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().to_ascii_lowercase() == lower)
    }

    /// True for benchmarks that consume no magic states (purely Clifford), where
    /// the paper expects LSQCA's overhead to be largest.
    pub fn is_clifford_only(self) -> bool {
        matches!(self, Benchmark::Bv | Benchmark::Cat | Benchmark::Ghz)
    }

    /// The generator configuration for the given instance size. The returned
    /// [`BenchmarkConfig`] carries the concrete generator parameters, so its
    /// [`descriptor`](BenchmarkConfig::descriptor) is a content-accurate cache
    /// key: changing any parameter here changes the descriptor.
    pub fn config(self, size: InstanceSize) -> BenchmarkConfig {
        match size {
            InstanceSize::Paper => match self {
                Benchmark::Adder => BenchmarkConfig::Adder(AdderConfig::paper()),
                Benchmark::Bv => BenchmarkConfig::Bv(BvConfig::paper()),
                Benchmark::Cat => BenchmarkConfig::Cat(CatConfig::paper()),
                Benchmark::Ghz => BenchmarkConfig::Ghz(GhzConfig::paper()),
                Benchmark::Multiplier => BenchmarkConfig::Multiplier(MultiplierConfig::paper()),
                Benchmark::SquareRoot => BenchmarkConfig::SquareRoot(SquareRootConfig::paper()),
                Benchmark::Select => BenchmarkConfig::Select(SelectConfig::paper_benchmark()),
            },
            InstanceSize::Reduced => match self {
                Benchmark::Adder => BenchmarkConfig::Adder(AdderConfig { operand_bits: 16 }),
                Benchmark::Bv => BenchmarkConfig::Bv(BvConfig {
                    secret_bits: 31,
                    secret: None,
                    seed: 0x5eed,
                }),
                Benchmark::Cat => BenchmarkConfig::Cat(CatConfig { qubits: 32 }),
                Benchmark::Ghz => BenchmarkConfig::Ghz(GhzConfig { qubits: 16 }),
                Benchmark::Multiplier => BenchmarkConfig::Multiplier(MultiplierConfig {
                    operand_bits: 8,
                    partial_products: None,
                }),
                Benchmark::SquareRoot => BenchmarkConfig::SquareRoot(SquareRootConfig {
                    candidate_bits: 5,
                    grover_rounds: 1,
                    target: 9,
                }),
                Benchmark::Select => BenchmarkConfig::Select(SelectConfig::for_width(4)),
            },
        }
    }

    /// Generates the paper-sized instance of this benchmark.
    pub fn paper_instance(self) -> Circuit {
        self.config(InstanceSize::Paper).build()
    }

    /// Generates a reduced instance with the same structure, suitable for unit
    /// tests and quick benchmark runs (seconds instead of minutes).
    pub fn reduced_instance(self) -> Circuit {
        self.config(InstanceSize::Reduced).build()
    }
}

/// Which instance of a benchmark to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceSize {
    /// The reduced test/CI instance of [`Benchmark::reduced_instance`].
    Reduced,
    /// The paper-sized instance of [`Benchmark::paper_instance`].
    Paper,
}

/// The concrete generator configuration of one benchmark instance.
///
/// This is the value the on-disk workload cache hashes: the `Debug`
/// rendering includes every generator parameter, so two instances share a
/// cache entry exactly when their generators would produce the same circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchmarkConfig {
    /// Ripple-carry adder parameters.
    Adder(AdderConfig),
    /// Bernstein–Vazirani parameters.
    Bv(BvConfig),
    /// Cat-state parameters.
    Cat(CatConfig),
    /// GHZ-state parameters.
    Ghz(GhzConfig),
    /// Shift-and-add multiplier parameters.
    Multiplier(MultiplierConfig),
    /// Square-root amplitude-amplification parameters.
    SquareRoot(SquareRootConfig),
    /// SELECT-for-Heisenberg parameters.
    Select(SelectConfig),
}

impl BenchmarkConfig {
    /// Runs the generator this configuration parameterizes.
    pub fn build(&self) -> Circuit {
        match self {
            BenchmarkConfig::Adder(c) => ripple_carry_adder(*c),
            BenchmarkConfig::Bv(c) => bernstein_vazirani(c.clone()),
            BenchmarkConfig::Cat(c) => cat_state(*c),
            BenchmarkConfig::Ghz(c) => ghz_state(*c),
            BenchmarkConfig::Multiplier(c) => shift_add_multiplier(*c),
            BenchmarkConfig::SquareRoot(c) => square_root_search(*c),
            BenchmarkConfig::Select(c) => select_heisenberg(*c),
        }
    }

    /// Emission-logic revision of the generator this configuration names.
    /// Part of the cache key: bumping a generator's `REVISION` invalidates
    /// that generator's cached artifacts (and only those) even when the
    /// configuration is unchanged — the footgun a `Debug`-rendered config
    /// alone cannot catch. See `crate::cache` for the
    /// revision-vs-`ISA_VERSION` bump rule.
    pub fn revision(&self) -> u32 {
        match self {
            BenchmarkConfig::Adder(_) => crate::adder::REVISION,
            BenchmarkConfig::Bv(_) => crate::bv::REVISION,
            BenchmarkConfig::Cat(_) => crate::cat::REVISION,
            BenchmarkConfig::Ghz(_) => crate::ghz::REVISION,
            BenchmarkConfig::Multiplier(_) => crate::multiplier::REVISION,
            BenchmarkConfig::SquareRoot(_) => crate::square_root::REVISION,
            BenchmarkConfig::Select(_) => crate::select::REVISION,
        }
    }

    /// A content-accurate cache-key descriptor: the generator name, every
    /// parameter value, and the generator's emission-logic
    /// [`revision`](Self::revision).
    pub fn descriptor(&self) -> String {
        format!("{self:?}#rev{}", self.revision())
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Logical qubit count of the paper-sized instance (Sec. VI-B).
pub fn paper_qubit_count(benchmark: Benchmark) -> u32 {
    match benchmark {
        Benchmark::Adder => 433,
        Benchmark::Bv => 280,
        Benchmark::Cat => 260,
        Benchmark::Ghz => 127,
        Benchmark::Multiplier => 400,
        Benchmark::SquareRoot => 60,
        Benchmark::Select => 143,
    }
}

/// Generates the full paper benchmark suite as `(benchmark, circuit)` pairs.
///
/// Note that the multiplier and SELECT instances are large; generating the whole
/// suite takes a few seconds.
pub fn paper_suite() -> Vec<(Benchmark, Circuit)> {
    Benchmark::ALL
        .into_iter()
        .map(|b| (b, b.paper_instance()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_instances_build_for_every_benchmark() {
        for b in Benchmark::ALL {
            let c = b.reduced_instance();
            assert!(!c.is_empty(), "{b} reduced instance is empty");
            assert!(c.num_qubits() > 0);
        }
    }

    #[test]
    fn paper_qubit_counts_match_the_generators() {
        // The large generators are exercised for the cheaper benchmarks here;
        // the expensive ones (multiplier, SELECT, adder) verify their counts in
        // their own module tests and in integration tests.
        assert_eq!(
            Benchmark::Ghz.paper_instance().num_qubits(),
            paper_qubit_count(Benchmark::Ghz)
        );
        assert_eq!(
            Benchmark::Cat.paper_instance().num_qubits(),
            paper_qubit_count(Benchmark::Cat)
        );
        assert_eq!(
            Benchmark::Bv.paper_instance().num_qubits(),
            paper_qubit_count(Benchmark::Bv)
        );
        assert_eq!(
            Benchmark::SquareRoot.paper_instance().num_qubits(),
            paper_qubit_count(Benchmark::SquareRoot)
        );
    }

    #[test]
    fn name_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Benchmark::from_name("select"), Some(Benchmark::Select));
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn descriptors_carry_the_generator_revision() {
        for b in Benchmark::ALL {
            let cfg = b.config(InstanceSize::Reduced);
            let descriptor = cfg.descriptor();
            assert!(
                descriptor.ends_with(&format!("#rev{}", cfg.revision())),
                "descriptor `{descriptor}` must end with the revision suffix"
            );
            // A revision bump would change the descriptor (and therefore the
            // cache key) without any config change.
            let bumped = descriptor.replace(
                &format!("#rev{}", cfg.revision()),
                &format!("#rev{}", cfg.revision() + 1),
            );
            assert_ne!(descriptor, bumped);
        }
    }

    #[test]
    fn clifford_only_classification() {
        assert!(Benchmark::Bv.is_clifford_only());
        assert!(Benchmark::Cat.is_clifford_only());
        assert!(Benchmark::Ghz.is_clifford_only());
        assert!(!Benchmark::Multiplier.is_clifford_only());
        assert!(!Benchmark::Select.is_clifford_only());
    }
}
