//! Shift-and-add integer multiplier benchmark.
//!
//! Rebuilds the structure of the QASMBench 400-qubit multiplier: two `n`-bit
//! operand registers `a` and `b`, a `2n − 1`-bit product register `p`, and one
//! carry ancilla (`4n` qubits total, `n = 100` for the paper instance). The
//! classic shift-and-add schedule is used: for every bit `b_i`, the partial
//! product `a · b_i · 2^i` is accumulated into `p` with a controlled ripple-carry
//! sweep (Toffoli-dominated, carry travelling bit by bit through the single carry
//! ancilla).
//!
//! Two properties of this construction matter for the paper's evaluation and are
//! preserved faithfully: the *sequential* bit-index iteration (spatial locality
//! of memory references, Fig. 8c) and the high magic-state demand (≈ one T gate
//! every couple of code beats, which makes the MSF the bottleneck that hides
//! LSQCA's load/store latency). The product is accumulated modulo `2^(2n−1)`,
//! which keeps the register budget at the QASMBench value of exactly `4n` qubits.

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::{Circuit, Qubit};

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;

/// Parameters of the multiplier benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplierConfig {
    /// Width of each operand in bits; the circuit uses `4 * operand_bits` qubits.
    pub operand_bits: u32,
    /// Optional cap on how many partial products (bits of `b`) are accumulated.
    /// `None` processes every bit; smaller values produce shorter circuits with
    /// identical structure, useful for tests and quick benchmarks.
    pub partial_products: Option<u32>,
}

impl MultiplierConfig {
    /// The paper's instance: 100-bit operands, 400 logical qubits.
    pub const fn paper() -> Self {
        MultiplierConfig {
            operand_bits: 100,
            partial_products: None,
        }
    }

    /// Total logical qubits used by the circuit.
    pub const fn total_qubits(self) -> u32 {
        4 * self.operand_bits
    }
}

impl Default for MultiplierConfig {
    fn default() -> Self {
        MultiplierConfig::paper()
    }
}

/// One controlled full-adder step: adds `a_j AND b_i` plus the running carry into
/// the product bit `p_k`, updating the carry. Toffoli-dominated, mirroring the
/// per-bit cost of the QASMBench multiplier.
fn controlled_full_add(circuit: &mut Circuit, b_i: Qubit, a_j: Qubit, p_k: Qubit, carry: Qubit) {
    // Partial-product bit into the sum and the carry chain.
    circuit.toffoli(b_i, a_j, p_k);
    circuit.toffoli(p_k, a_j, carry);
    // Fold the running carry into the sum bit.
    circuit.cnot(carry, p_k);
    circuit.toffoli(b_i, carry, p_k);
}

/// Generates the shift-and-add multiplier circuit computing
/// `p ← a · b (mod 2^(2n−1))`.
///
/// Registers: `a` (operand, `n`), `b` (operand, `n`), `p` (result, `2n − 1`),
/// `carry` (1 ancilla).
///
/// # Panics
///
/// Panics if `operand_bits` is zero.
pub fn shift_add_multiplier(config: MultiplierConfig) -> Circuit {
    let n = config.operand_bits;
    assert!(n > 0, "multiplier needs at least one operand bit");
    let mut circuit = Circuit::with_registers(format!("multiplier_n{}", config.total_qubits()));
    let a = circuit.add_register("a", RegisterRole::Operand, n);
    let b = circuit.add_register("b", RegisterRole::Operand, n);
    let p = circuit.add_register("p", RegisterRole::Result, 2 * n - 1);
    let carry = circuit
        .add_register("carry", RegisterRole::Ancilla, 1)
        .start;

    for q in 0..circuit.num_qubits() {
        circuit.prep_z(q);
    }
    // Superpose both operands (the QASMBench circuit multiplies quantum inputs).
    for q in a.clone().chain(b.clone()) {
        circuit.h(q);
    }

    let a_bit = |j: u32| a.start + j;
    let b_bit = |i: u32| b.start + i;
    let p_bit = |k: u32| p.start + k;

    let partials = config.partial_products.unwrap_or(n).min(n);
    for i in 0..partials {
        // Accumulate a·2^i controlled on b_i, rippling through the carry ancilla.
        for j in 0..n {
            let k = i + j;
            if k >= 2 * n - 1 {
                break;
            }
            controlled_full_add(&mut circuit, b_bit(i), a_bit(j), p_bit(k), carry);
        }
        // Flush the final carry into the next product bit and reset the ancilla.
        if i + n < 2 * n - 1 {
            circuit.cnot(carry, p_bit(i + n));
            circuit.cnot(p_bit(i + n), carry);
        } else {
            // Top partial product: drop the carry (modular product).
            circuit.measure_z(carry);
            circuit.prep_z(carry);
        }
    }

    for q in p {
        circuit.measure_z(q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_400_qubits() {
        let cfg = MultiplierConfig::paper();
        assert_eq!(cfg.total_qubits(), 400);
        // Generating the full 100-bit instance is cheap enough to do in a test.
        let c = shift_add_multiplier(MultiplierConfig {
            operand_bits: 100,
            partial_products: Some(2),
        });
        assert_eq!(c.num_qubits(), 400);
        assert_eq!(c.name(), "multiplier_n400");
    }

    #[test]
    fn toffoli_count_scales_with_bit_pairs() {
        let c = shift_add_multiplier(MultiplierConfig {
            operand_bits: 6,
            partial_products: None,
        });
        let stats = c.stats();
        // Three Toffolis per (i, j) pair that stays inside the product register.
        let pairs: u64 = (0..6u64).map(|i| 6u64.min(2 * 6 - 1 - i)).sum();
        assert_eq!(stats.toffoli_count, 3 * pairs);
        assert!(stats.t_count == 0, "T gates appear only after lowering");
    }

    #[test]
    fn partial_product_cap_shortens_the_circuit() {
        let full = shift_add_multiplier(MultiplierConfig {
            operand_bits: 8,
            partial_products: None,
        });
        let short = shift_add_multiplier(MultiplierConfig {
            operand_bits: 8,
            partial_products: Some(2),
        });
        assert!(short.len() < full.len());
        assert_eq!(short.num_qubits(), full.num_qubits());
    }

    #[test]
    fn registers_match_the_layout() {
        let c = shift_add_multiplier(MultiplierConfig {
            operand_bits: 4,
            partial_products: None,
        });
        let regs = c.registers();
        assert_eq!(regs.by_name("a").unwrap().len(), 4);
        assert_eq!(regs.by_name("b").unwrap().len(), 4);
        assert_eq!(regs.by_name("p").unwrap().len(), 7);
        assert_eq!(regs.by_name("carry").unwrap().len(), 1);
        assert_eq!(c.num_qubits(), 16);
    }

    #[test]
    fn lowering_produces_t_gates() {
        let c = shift_add_multiplier(MultiplierConfig {
            operand_bits: 3,
            partial_products: None,
        });
        let lowered =
            lsqca_circuit::lower_to_clifford_t(&c, lsqca_circuit::DecomposeConfig::default());
        assert!(lowered.is_lowered());
        assert!(lowered.stats().t_count > 0);
    }

    #[test]
    #[should_panic(expected = "at least one operand bit")]
    fn zero_width_panics() {
        let _ = shift_add_multiplier(MultiplierConfig {
            operand_bits: 0,
            partial_products: None,
        });
    }
}
