//! Compiled-workload artifacts: compile once, simulate many times.
//!
//! The paper's evaluation re-simulates the same compiled benchmark across
//! dozens of SAM configurations (floorplans × factory counts × hybrid
//! fractions), so everything derivable from the circuit alone is worth
//! computing exactly once. A [`CompiledWorkload`] bundles that per-program
//! state:
//!
//! * the lowered LSQCA instruction stream,
//! * the precompiled per-instruction [`LatencyClass`] vector (immutable per
//!   program, previously re-derived by every `Simulator::run`),
//! * the operand tables — memory footprint and the circuit's register map,
//!   which role-based hybrid placement (Fig. 15) needs,
//! * qubit-count metadata (`num_qubits`, `t_gates`).
//!
//! Artifacts serialize to a JSON document (`lsqca-json`) whose integrity is
//! protected by an FNV-1a content hash, which is what the on-disk cache of
//! [`crate::cache`] stores; see that module for the keying and invalidation
//! rules.

use lsqca_circuit::{Circuit, RegisterMap, RegisterRole};
use lsqca_compiler::{compile, CompilerConfig};
use lsqca_isa::asm::{format_program, parse_program};
use lsqca_isa::{ExecutionTrace, LatencyClass, LatencyTable, Program, ISA_VERSION, TRACE_REVISION};
use lsqca_json::{Json, ToJson};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema identifier embedded in every serialized artifact.
pub const ARTIFACT_SCHEMA: &str = "lsqca-workload-artifact-v1";

/// Number of circuit compilations performed by this process (every
/// [`CompiledWorkload::compile`] call, cached or not). The warm-cache
/// acceptance tests assert this stays flat across a cache-served sweep.
static COMPILE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Total circuit compilations performed by this process so far.
pub fn compile_count() -> u64 {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

/// A workload compiled down to everything the simulator consumes, produced
/// once per `(generator config, compiler config)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledWorkload {
    /// The LSQCA instruction stream.
    pub program: Program,
    /// Number of data qubits (SAM addresses) the program was compiled for.
    pub num_qubits: u32,
    /// Number of T / T† gates translated into magic-state teleportations.
    pub t_gates: u64,
    descriptor: String,
    classes: Vec<LatencyClass>,
    trace: ExecutionTrace,
    memory_footprint: u32,
    registers: RegisterMap,
}

impl CompiledWorkload {
    /// Compiles `circuit` into an artifact. `descriptor` identifies the
    /// workload-generator configuration that produced the circuit and becomes
    /// part of the cache key; ad-hoc callers can pass any stable string.
    pub fn compile(
        descriptor: impl Into<String>,
        circuit: &Circuit,
        config: CompilerConfig,
    ) -> Self {
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        let compiled = compile(circuit, config);
        let classes = LatencyTable::paper().classify_program(&compiled.program);
        let trace = lsqca_isa::lower(&compiled.program);
        let memory_footprint = compiled
            .program
            .iter()
            .flat_map(|i| i.memory_operands())
            .map(|m| m.index() + 1)
            .max()
            .unwrap_or(0);
        CompiledWorkload {
            descriptor: descriptor.into(),
            classes,
            trace,
            memory_footprint,
            registers: circuit.registers().clone(),
            num_qubits: compiled.num_qubits,
            t_gates: compiled.t_gates,
            program: compiled.program,
        }
    }

    /// The workload-generator descriptor this artifact was compiled from.
    pub fn descriptor(&self) -> &str {
        &self.descriptor
    }

    /// The precompiled per-instruction latency classes (parallel to the
    /// instruction stream).
    pub fn classes(&self) -> &[LatencyClass] {
        &self.classes
    }

    /// The pre-lowered execution trace (parallel to the instruction stream).
    /// Lowered exactly once at [`CompiledWorkload::compile`] time — a cached
    /// artifact carries the serialized trace and decodes it on load, so warm
    /// sweeps perform zero lowerings (`lsqca_isa::lowering_count` stays flat).
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// One past the highest SAM address the program touches (0 for an empty
    /// program) — precomputed so per-run simulator sizing is O(1).
    pub fn memory_footprint(&self) -> u32 {
        self.memory_footprint
    }

    /// The circuit's register structure, kept so role-based hybrid placement
    /// works without the source circuit.
    pub fn registers(&self) -> &RegisterMap {
        &self.registers
    }

    /// The FNV-1a content hash covering every field that influences
    /// simulation results. The hash is defined over the *serialized text* of
    /// the program, class vector, and execution trace (passed together as
    /// `texts`, in that order), so loading verifies the stored strings
    /// directly without re-rendering a multi-megabyte instruction stream.
    fn payload_hash_of(
        descriptor: &str,
        num_qubits: u32,
        t_gates: u64,
        memory_footprint: u32,
        registers: &RegisterMap,
        texts: [&str; 3],
    ) -> u64 {
        let mut hash = Fnv1a::new();
        hash.update(descriptor.as_bytes());
        hash.update(b"\n");
        hash.update(
            format!("qubits={num_qubits} t_gates={t_gates} footprint={memory_footprint}\n")
                .as_bytes(),
        );
        for r in registers.registers() {
            hash.update(format!("reg {} {} {}\n", r.name, r.role, r.len()).as_bytes());
        }
        for text in texts {
            hash.update(text.as_bytes());
        }
        hash.finish()
    }

    /// The FNV-1a content hash of the artifact payload.
    pub fn payload_hash(&self) -> u64 {
        Self::payload_hash_of(
            &self.descriptor,
            self.num_qubits,
            self.t_gates,
            self.memory_footprint,
            &self.registers,
            [
                &format_program(&self.program),
                &encode_classes(&self.classes),
                &self.trace.encode(),
            ],
        )
    }

    /// Serializes the artifact to its on-disk JSON document.
    pub fn to_json(&self) -> Json {
        let program_text = format_program(&self.program);
        let classes_text = encode_classes(&self.classes);
        let trace_text = self.trace.encode();
        let payload_hash = Self::payload_hash_of(
            &self.descriptor,
            self.num_qubits,
            self.t_gates,
            self.memory_footprint,
            &self.registers,
            [&program_text, &classes_text, &trace_text],
        );
        Json::obj([
            ("schema", ARTIFACT_SCHEMA.to_json()),
            ("isa_version", ISA_VERSION.to_json()),
            ("trace_revision", TRACE_REVISION.to_json()),
            ("descriptor", self.descriptor.to_json()),
            ("name", self.program.name().to_json()),
            ("num_qubits", self.num_qubits.to_json()),
            ("t_gates", self.t_gates.to_json()),
            ("memory_footprint", self.memory_footprint.to_json()),
            (
                "registers",
                Json::arr(self.registers.registers().iter().map(|r| {
                    Json::obj([
                        ("name", r.name.to_json()),
                        ("role", r.role.name().to_json()),
                        ("len", (r.len() as u64).to_json()),
                    ])
                })),
            ),
            ("program", program_text.to_json()),
            ("classes", classes_text.to_json()),
            ("trace", trace_text.to_json()),
            ("payload_hash", format!("{payload_hash:016x}").to_json()),
        ])
    }

    /// Deserializes an artifact document, verifying schema, ISA version, and
    /// the payload hash.
    ///
    /// # Errors
    ///
    /// Returns an [`ArtifactError`] naming the first check that failed; the
    /// cache treats every variant as "recompile".
    pub fn from_json(doc: &Json) -> Result<Self, ArtifactError> {
        let field = |key: &'static str| {
            doc.get(key)
                .ok_or(ArtifactError::MissingField { field: key })
        };
        let str_field = |key: &'static str| {
            field(key).and_then(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or(ArtifactError::MissingField { field: key })
            })
        };
        let u64_field = |key: &'static str| {
            field(key).and_then(|v| v.as_u64().ok_or(ArtifactError::MissingField { field: key }))
        };

        let schema = str_field("schema")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(ArtifactError::SchemaMismatch { found: schema });
        }
        let isa_version = u64_field("isa_version")?;
        if isa_version != u64::from(ISA_VERSION) {
            return Err(ArtifactError::IsaVersionMismatch {
                found: isa_version,
                expected: ISA_VERSION,
            });
        }
        let trace_revision = u64_field("trace_revision")?;
        if trace_revision != u64::from(TRACE_REVISION) {
            return Err(ArtifactError::TraceRevisionMismatch {
                found: trace_revision,
                expected: TRACE_REVISION,
            });
        }

        let descriptor = str_field("descriptor")?;
        let name = str_field("name")?;
        let num_qubits = u64_field("num_qubits")? as u32;
        let t_gates = u64_field("t_gates")?;
        let memory_footprint = u64_field("memory_footprint")? as u32;

        let mut registers = RegisterMap::new();
        for entry in field("registers")?
            .as_array()
            .ok_or(ArtifactError::MissingField { field: "registers" })?
        {
            let reg_name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or(ArtifactError::MissingField { field: "registers" })?;
            let role_name = entry
                .get("role")
                .and_then(Json::as_str)
                .ok_or(ArtifactError::MissingField { field: "registers" })?;
            let role =
                RegisterRole::from_name(role_name).ok_or_else(|| ArtifactError::Malformed {
                    what: format!("unknown register role `{role_name}`"),
                })?;
            let len = entry
                .get("len")
                .and_then(Json::as_u64)
                .ok_or(ArtifactError::MissingField { field: "registers" })?;
            registers.add(reg_name, role, len as u32);
        }

        let program_text = str_field("program")?;
        let classes_text = str_field("classes")?;
        let trace_text = str_field("trace")?;

        // Verify the payload hash over the stored text *before* decoding the
        // (potentially multi-megabyte) instruction stream: corruption is
        // rejected at memcmp cost, and a verified artifact is decoded once.
        let stored_hash = str_field("payload_hash")?;
        let actual = format!(
            "{:016x}",
            Self::payload_hash_of(
                &descriptor,
                num_qubits,
                t_gates,
                memory_footprint,
                &registers,
                [&program_text, &classes_text, &trace_text],
            )
        );
        if stored_hash != actual {
            return Err(ArtifactError::PayloadHashMismatch {
                stored: stored_hash,
                actual,
            });
        }

        let program =
            parse_program(&name, &program_text).map_err(|e| ArtifactError::Malformed {
                what: format!("program text: {e}"),
            })?;
        let classes = decode_classes(&classes_text)?;
        if classes.len() != program.len() {
            return Err(ArtifactError::Malformed {
                what: format!(
                    "class vector length {} does not match the {}-instruction program",
                    classes.len(),
                    program.len()
                ),
            });
        }
        // Decoding (not re-lowering) keeps warm loads off the lowering
        // counter: a cache hit must leave `lsqca_isa::lowering_count` flat.
        let trace = ExecutionTrace::decode(&trace_text).map_err(|e| ArtifactError::Malformed {
            what: e.to_string(),
        })?;
        if trace.len() != program.len() {
            return Err(ArtifactError::Malformed {
                what: format!(
                    "execution trace length {} does not match the {}-instruction program (trace revision {TRACE_REVISION})",
                    trace.len(),
                    program.len()
                ),
            });
        }

        Ok(CompiledWorkload {
            descriptor,
            classes,
            trace,
            memory_footprint,
            registers,
            num_qubits,
            t_gates,
            program,
        })
    }
}

/// One ASCII digit per instruction (the `repr(u8)` discriminant).
fn encode_classes(classes: &[LatencyClass]) -> String {
    classes
        .iter()
        .map(|c| char::from(b'0' + c.as_u8()))
        .collect()
}

fn decode_classes(text: &str) -> Result<Vec<LatencyClass>, ArtifactError> {
    text.bytes()
        .map(|b| {
            b.checked_sub(b'0')
                .and_then(LatencyClass::from_u8)
                .ok_or_else(|| ArtifactError::Malformed {
                    what: format!("invalid latency-class byte `{}`", b as char),
                })
        })
        .collect()
}

// The FNV-1a hasher moved to `lsqca-store` so the result store and this cache
// share one implementation; re-exported here to keep the historical paths.
pub use lsqca_store::{fnv1a64, Fnv1a};

/// Why a serialized artifact was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The document lacks a required field (or it has the wrong type).
    MissingField {
        /// Name of the missing field.
        field: &'static str,
    },
    /// The document carries a different schema identifier.
    SchemaMismatch {
        /// The schema string found in the document.
        found: String,
    },
    /// The artifact was compiled against a different ISA version.
    IsaVersionMismatch {
        /// The version recorded in the document.
        found: u64,
        /// The version this build implements.
        expected: u32,
    },
    /// The artifact's execution trace was lowered by a different trace
    /// revision; the cache quarantines the artifact and re-lowers.
    TraceRevisionMismatch {
        /// The trace revision recorded in the document.
        found: u64,
        /// The trace revision this build lowers.
        expected: u32,
    },
    /// A field failed to decode (program text, class vector, register role).
    Malformed {
        /// Description of the malformed content.
        what: String,
    },
    /// The recomputed content hash disagrees with the stored one.
    PayloadHashMismatch {
        /// Hash recorded in the document.
        stored: String,
        /// Hash recomputed from the decoded payload.
        actual: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::MissingField { field } => {
                write!(f, "missing or mistyped field `{field}`")
            }
            ArtifactError::SchemaMismatch { found } => {
                write!(f, "schema `{found}` is not `{ARTIFACT_SCHEMA}`")
            }
            ArtifactError::IsaVersionMismatch { found, expected } => {
                write!(f, "ISA version {found} (this build implements {expected})")
            }
            ArtifactError::TraceRevisionMismatch { found, expected } => {
                write!(
                    f,
                    "trace revision {found} (this build lowers trace revision {expected})"
                )
            }
            ArtifactError::Malformed { what } => write!(f, "malformed artifact: {what}"),
            ArtifactError::PayloadHashMismatch { stored, actual } => {
                write!(f, "payload hash {stored} != recomputed {actual}")
            }
        }
    }
}

impl Error for ArtifactError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Benchmark, InstanceSize};
    use lsqca_isa::{Instruction, MemAddr};

    fn sample() -> CompiledWorkload {
        let cfg = Benchmark::Ghz.config(InstanceSize::Reduced);
        CompiledWorkload::compile(cfg.descriptor(), &cfg.build(), CompilerConfig::default())
    }

    #[test]
    fn compile_fills_every_table() {
        let before = compile_count();
        let w = sample();
        assert_eq!(compile_count(), before + 1);
        assert!(!w.program.is_empty());
        assert_eq!(w.classes().len(), w.program.len());
        assert_eq!(w.num_qubits, 16);
        assert!(w.memory_footprint() <= w.num_qubits);
        assert!(w.memory_footprint() > 0);
        assert!(w.descriptor().contains("Ghz"));
    }

    #[test]
    fn json_round_trip_preserves_the_artifact() {
        let select = Benchmark::Select.config(InstanceSize::Reduced);
        let w = CompiledWorkload::compile(
            select.descriptor(),
            &select.build(),
            CompilerConfig::default(),
        );
        let doc = w.to_json();
        let restored = CompiledWorkload::from_json(&doc).unwrap();
        assert_eq!(restored, w);
        assert!(!restored.registers().registers().is_empty());
        assert_eq!(
            restored.registers().qubits_with_role(RegisterRole::Control),
            w.registers().qubits_with_role(RegisterRole::Control)
        );
        assert!(!restored
            .registers()
            .qubits_with_role(RegisterRole::Control)
            .is_empty());
        // Round-trips through text too (the on-disk representation).
        let reparsed = lsqca_json::parse(&doc.pretty()).unwrap();
        assert_eq!(CompiledWorkload::from_json(&reparsed).unwrap(), w);
    }

    #[test]
    fn tampered_documents_are_rejected() {
        let w = sample();
        let pretty = w.to_json().pretty();

        // Flipped ISA version.
        let bumped = pretty.replace(
            &format!("\"isa_version\": {ISA_VERSION}"),
            "\"isa_version\": 999",
        );
        assert!(matches!(
            CompiledWorkload::from_json(&lsqca_json::parse(&bumped).unwrap()),
            Err(ArtifactError::IsaVersionMismatch { found: 999, .. })
        ));

        // Wrong schema string.
        let wrong = pretty.replace(ARTIFACT_SCHEMA, "lsqca-workload-artifact-v0");
        assert!(matches!(
            CompiledWorkload::from_json(&lsqca_json::parse(&wrong).unwrap()),
            Err(ArtifactError::SchemaMismatch { .. })
        ));

        // Mutated qubit count: caught by the payload hash.
        let mutated = pretty.replace(
            &format!("\"num_qubits\": {}", w.num_qubits),
            "\"num_qubits\": 1",
        );
        assert!(matches!(
            CompiledWorkload::from_json(&lsqca_json::parse(&mutated).unwrap()),
            Err(ArtifactError::PayloadHashMismatch { .. })
        ));

        // Missing field.
        let dropped = pretty.replace("\"t_gates\"", "\"t_gates_gone\"");
        assert!(matches!(
            CompiledWorkload::from_json(&lsqca_json::parse(&dropped).unwrap()),
            Err(ArtifactError::MissingField { field: "t_gates" })
        ));

        // Flipped trace revision: the error names both revisions.
        let relowered = pretty.replace(
            &format!("\"trace_revision\": {}", lsqca_isa::TRACE_REVISION),
            "\"trace_revision\": 777",
        );
        let err = CompiledWorkload::from_json(&lsqca_json::parse(&relowered).unwrap()).unwrap_err();
        assert!(matches!(
            err,
            ArtifactError::TraceRevisionMismatch { found: 777, .. }
        ));
        assert!(err.to_string().contains("trace revision 777"));
        assert!(err
            .to_string()
            .contains(&lsqca_isa::TRACE_REVISION.to_string()));
    }

    #[test]
    fn class_vector_must_match_the_program_length() {
        let mut w = sample();
        w.classes.pop();
        let doc = w.to_json();
        assert!(matches!(
            CompiledWorkload::from_json(&doc),
            Err(ArtifactError::Malformed { .. })
        ));
    }

    #[test]
    fn trace_must_match_the_program_length() {
        let mut w = sample();
        w.trace = lsqca_isa::ExecutionTrace::new();
        let doc = w.to_json();
        assert!(matches!(
            CompiledWorkload::from_json(&doc),
            Err(ArtifactError::Malformed { what }) if what.contains("trace revision")
        ));
    }

    #[test]
    fn loading_an_artifact_does_not_relower() {
        let w = sample();
        let doc = w.to_json();
        let before = lsqca_isa::lowering_count();
        let restored = CompiledWorkload::from_json(&doc).unwrap();
        assert_eq!(lsqca_isa::lowering_count(), before);
        assert_eq!(restored.trace(), w.trace());
        assert_eq!(restored.trace().len(), w.program.len());
    }

    #[test]
    fn classes_agree_with_fresh_classification() {
        let w = sample();
        assert_eq!(
            w.classes(),
            LatencyTable::paper()
                .classify_program(&w.program)
                .as_slice()
        );
    }

    #[test]
    fn empty_and_registerless_programs_serialize() {
        let circuit = Circuit::new("empty", 0);
        let w = CompiledWorkload::compile("adhoc:empty", &circuit, CompilerConfig::default());
        assert_eq!(w.memory_footprint(), 0);
        let restored = CompiledWorkload::from_json(&w.to_json()).unwrap();
        assert_eq!(restored, w);
    }

    #[test]
    fn footprint_tracks_the_highest_address() {
        let mut circuit = Circuit::new("wide", 9);
        circuit.h(8);
        let w = CompiledWorkload::compile("adhoc:wide", &circuit, CompilerConfig::default());
        assert_eq!(w.memory_footprint(), 9);
        assert!(w
            .program
            .iter()
            .any(|i| matches!(i, Instruction::HdM { mem } if *mem == MemAddr(8))));
    }

    #[test]
    fn fnv_is_stable() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn artifact_errors_render() {
        assert!(ArtifactError::MissingField { field: "x" }
            .to_string()
            .contains("x"));
        assert!(ArtifactError::IsaVersionMismatch {
            found: 9,
            expected: 1
        }
        .to_string()
        .contains("9"));
    }
}
