//! Cat-state preparation benchmark.
//!
//! The QASMBench `cat` circuit prepares the same state family as `ghz` but
//! fans the entangling CNOTs out from the first qubit instead of chaining them,
//! giving it much higher instruction-level parallelism on an architecture that
//! allows it. Like `ghz` and `bv` it is purely Clifford, so no magic-state
//! bottleneck exists to hide LSQCA's load/store latency behind — the paper uses
//! it as one of the adversarial cases in Fig. 13/14.

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::Circuit;

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;

/// Parameters of the cat-state benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatConfig {
    /// Number of qubits in the cat state.
    pub qubits: u32,
}

impl CatConfig {
    /// The paper's instance (260 qubits).
    pub const fn paper() -> Self {
        CatConfig { qubits: 260 }
    }
}

impl Default for CatConfig {
    fn default() -> Self {
        CatConfig::paper()
    }
}

/// Generates the cat-state preparation circuit: `H` on qubit 0 followed by a
/// CNOT fan-out `0→q` for every other qubit, then Z measurements.
///
/// # Panics
///
/// Panics if `config.qubits` is zero.
pub fn cat_state(config: CatConfig) -> Circuit {
    assert!(config.qubits > 0, "cat state needs at least one qubit");
    let mut circuit = Circuit::with_registers(format!("cat_n{}", config.qubits));
    let data = circuit.add_register("data", RegisterRole::Operand, config.qubits);
    for q in data.clone() {
        circuit.prep_z(q);
    }
    circuit.h(data.start);
    for q in data.start + 1..data.end {
        circuit.cnot(data.start, q);
    }
    for q in data {
        circuit.measure_z(q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_260_qubits() {
        let c = cat_state(CatConfig::paper());
        assert_eq!(c.num_qubits(), 260);
    }

    #[test]
    fn structure_is_clifford_fanout() {
        let c = cat_state(CatConfig { qubits: 8 });
        let stats = c.stats();
        assert_eq!(stats.two_qubit_gates, 7);
        assert_eq!(stats.t_count, 0);
        assert!(c.is_lowered());
        // Every CNOT shares the source qubit, so the DAG is still a chain on
        // qubit 0 even though the targets are disjoint.
        let dag = lsqca_circuit::CircuitDag::new(&c);
        assert!(dag.depth() >= 8);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_panics() {
        let _ = cat_state(CatConfig { qubits: 0 });
    }
}
