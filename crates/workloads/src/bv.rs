//! Bernstein–Vazirani benchmark.
//!
//! The Bernstein–Vazirani algorithm recovers a hidden bit string `s` with one
//! oracle query: prepare the input register in `|+⟩^n`, the target in `|−⟩`,
//! apply the oracle (a CNOT from every input bit where `s_i = 1` onto the
//! target), then Hadamard and measure the inputs. The circuit is purely
//! Clifford; the paper uses a 280-qubit instance.

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::Circuit;

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;
/// Deterministic seed-expanded bit stream (splitmix64), replacing the external
/// `rand` dependency for secret generation. Note: this produces a *different*
/// bit-string for a given seed than the previous `StdRng`-based stream, so the
/// generated BV oracle (and its CNOT count) changed once at this switch; it is
/// stable from here on. Pass an explicit `secret` to pin an exact oracle.
fn seeded_bits(seed: u64, count: u32) -> Vec<bool> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) & 1 == 1
        })
        .collect()
}

/// Parameters of the Bernstein–Vazirani benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BvConfig {
    /// Number of input (secret) bits; the circuit uses one extra target qubit.
    pub secret_bits: u32,
    /// The hidden bit string. When `None`, a pseudo-random string derived from
    /// `seed` with roughly half the bits set is used (QASMBench uses a dense
    /// secret, which maximizes oracle CNOT count).
    pub secret: Option<Vec<bool>>,
    /// Seed for the generated secret when `secret` is `None`.
    pub seed: u64,
}

impl BvConfig {
    /// The paper's instance: 280 qubits total (279 secret bits + 1 target).
    pub fn paper() -> Self {
        BvConfig {
            secret_bits: 279,
            secret: None,
            seed: 0x5eed,
        }
    }
}

impl Default for BvConfig {
    fn default() -> Self {
        BvConfig::paper()
    }
}

/// Generates the Bernstein–Vazirani circuit.
///
/// # Panics
///
/// Panics if `secret_bits` is zero or an explicit secret has the wrong length.
pub fn bernstein_vazirani(config: BvConfig) -> Circuit {
    assert!(config.secret_bits > 0, "bv needs at least one secret bit");
    let secret: Vec<bool> = match &config.secret {
        Some(s) => {
            assert_eq!(
                s.len(),
                config.secret_bits as usize,
                "secret length must equal secret_bits"
            );
            s.clone()
        }
        None => seeded_bits(config.seed, config.secret_bits),
    };

    let total = config.secret_bits + 1;
    let mut circuit = Circuit::with_registers(format!("bv_n{total}"));
    let inputs = circuit.add_register("input", RegisterRole::Operand, config.secret_bits);
    let target = circuit
        .add_register("target", RegisterRole::Ancilla, 1)
        .start;

    for q in inputs.clone() {
        circuit.prep_z(q);
        circuit.h(q);
    }
    // Target in |−⟩.
    circuit.prep_z(target);
    circuit.x(target);
    circuit.h(target);

    // Oracle: CNOT from each secret-one input onto the target.
    for (offset, &bit) in secret.iter().enumerate() {
        if bit {
            circuit.cnot(inputs.start + offset as u32, target);
        }
    }

    for q in inputs.clone() {
        circuit.h(q);
        circuit.measure_z(q);
    }
    circuit.measure_x(target);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_280_qubits() {
        let c = bernstein_vazirani(BvConfig::paper());
        assert_eq!(c.num_qubits(), 280);
        assert!(c.is_lowered());
        assert_eq!(c.stats().t_count, 0);
    }

    #[test]
    fn oracle_cnot_count_matches_secret_weight() {
        let secret = vec![true, false, true, true];
        let c = bernstein_vazirani(BvConfig {
            secret_bits: 4,
            secret: Some(secret),
            seed: 0,
        });
        assert_eq!(c.stats().two_qubit_gates, 3);
        // 2 H per input + 1 H on target = 9 Hadamards.
        assert_eq!(c.stats().per_gate["h"], 9);
    }

    #[test]
    fn generated_secret_is_deterministic_per_seed() {
        let a = bernstein_vazirani(BvConfig {
            secret_bits: 64,
            secret: None,
            seed: 7,
        });
        let b = bernstein_vazirani(BvConfig {
            secret_bits: 64,
            secret: None,
            seed: 7,
        });
        let c = bernstein_vazirani(BvConfig {
            secret_bits: 64,
            secret: None,
            seed: 8,
        });
        assert_eq!(a.gates(), b.gates());
        assert_ne!(a.gates(), c.gates());
    }

    #[test]
    #[should_panic(expected = "secret length")]
    fn wrong_secret_length_panics() {
        let _ = bernstein_vazirani(BvConfig {
            secret_bits: 4,
            secret: Some(vec![true]),
            seed: 0,
        });
    }

    #[test]
    #[should_panic(expected = "at least one secret bit")]
    fn zero_bits_panics() {
        let _ = bernstein_vazirani(BvConfig {
            secret_bits: 0,
            secret: None,
            seed: 0,
        });
    }
}
