//! Ripple-carry quantum adder benchmark.
//!
//! Rebuilds the structure of the QASMBench 433-qubit adder: two `n`-bit operand
//! registers plus one carry ancilla (`2n + 1` qubits, `n = 216` for the paper
//! instance), added in place with the Cuccaro–Draper–Kutin–Moulton (CDKM)
//! ripple-carry construction. Each bit position contributes one MAJ and one UMA
//! block (a Toffoli and two CNOTs each), so the carry ripples sequentially from
//! the least to the most significant bit — exactly the sequential access pattern
//! the paper's locality analysis relies on for arithmetic circuits.

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::{Circuit, Qubit};

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;

/// Parameters of the adder benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderConfig {
    /// Width of each operand in bits; the circuit uses `2 * operand_bits + 1`
    /// logical qubits.
    pub operand_bits: u32,
}

impl AdderConfig {
    /// The paper's instance: 216-bit operands, 433 logical qubits.
    pub const fn paper() -> Self {
        AdderConfig { operand_bits: 216 }
    }

    /// Total logical qubits used by the circuit.
    pub const fn total_qubits(self) -> u32 {
        2 * self.operand_bits + 1
    }
}

impl Default for AdderConfig {
    fn default() -> Self {
        AdderConfig::paper()
    }
}

/// Emits the MAJ (majority) block of the CDKM adder.
fn maj(circuit: &mut Circuit, c: Qubit, b: Qubit, a: Qubit) {
    circuit.cnot(a, b);
    circuit.cnot(a, c);
    circuit.toffoli(c, b, a);
}

/// Emits the UMA (un-majority and add) block of the CDKM adder.
fn uma(circuit: &mut Circuit, c: Qubit, b: Qubit, a: Qubit) {
    circuit.toffoli(c, b, a);
    circuit.cnot(a, c);
    circuit.cnot(c, b);
}

/// Generates the in-place ripple-carry adder circuit computing `b ← a + b (mod 2^n)`.
///
/// Registers: `a` (operand, `n` bits), `b` (operand and result, `n` bits),
/// `carry` (1 ancilla). The final carry-out is dropped (modular addition), which
/// keeps the qubit count at the QASMBench value of `2n + 1`.
///
/// # Panics
///
/// Panics if `operand_bits` is zero.
pub fn ripple_carry_adder(config: AdderConfig) -> Circuit {
    let n = config.operand_bits;
    assert!(n > 0, "adder needs at least one operand bit");
    let mut circuit = Circuit::with_registers(format!("adder_n{}", config.total_qubits()));
    let a = circuit.add_register("a", RegisterRole::Operand, n);
    let b = circuit.add_register("b", RegisterRole::Result, n);
    let carry = circuit
        .add_register("carry", RegisterRole::Ancilla, 1)
        .start;

    for q in a.clone().chain(b.clone()) {
        circuit.prep_z(q);
    }
    circuit.prep_z(carry);

    // Superpose the first operand so the addition is a genuinely quantum workload
    // (mirrors the QASMBench adder's input preparation).
    for q in a.clone() {
        circuit.h(q);
    }

    let a_bit = |j: u32| a.start + j;
    let b_bit = |j: u32| b.start + j;

    // Forward MAJ sweep: carries ripple from bit 0 upward.
    maj(&mut circuit, carry, b_bit(0), a_bit(0));
    for j in 1..n {
        maj(&mut circuit, a_bit(j - 1), b_bit(j), a_bit(j));
    }
    // Backward UMA sweep restores `a` and leaves the sum in `b`.
    for j in (1..n).rev() {
        uma(&mut circuit, a_bit(j - 1), b_bit(j), a_bit(j));
    }
    uma(&mut circuit, carry, b_bit(0), a_bit(0));

    for q in b {
        circuit.measure_z(q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_433_qubits() {
        let cfg = AdderConfig::paper();
        assert_eq!(cfg.total_qubits(), 433);
        let c = ripple_carry_adder(cfg);
        assert_eq!(c.num_qubits(), 433);
        assert_eq!(c.name(), "adder_n433");
    }

    #[test]
    fn toffoli_count_is_two_per_bit() {
        let c = ripple_carry_adder(AdderConfig { operand_bits: 8 });
        let stats = c.stats();
        // One MAJ + one UMA per bit, each with one Toffoli.
        assert_eq!(stats.toffoli_count, 16);
        // Each MAJ/UMA contributes two CNOTs.
        assert_eq!(stats.two_qubit_gates, 32);
        assert_eq!(stats.measurements, 8);
    }

    #[test]
    fn carry_chain_serializes_the_depth() {
        let c = ripple_carry_adder(AdderConfig { operand_bits: 16 });
        let dag = lsqca_circuit::CircuitDag::new(&c);
        // The ripple makes depth grow linearly with the operand width.
        assert!(dag.depth() >= 2 * 16);
    }

    #[test]
    fn registers_cover_operands_and_carry() {
        let c = ripple_carry_adder(AdderConfig { operand_bits: 4 });
        let regs = c.registers();
        assert_eq!(regs.by_name("a").unwrap().len(), 4);
        assert_eq!(regs.by_name("b").unwrap().len(), 4);
        assert_eq!(regs.by_name("carry").unwrap().len(), 1);
        assert_eq!(regs.total_qubits(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one operand bit")]
    fn zero_width_panics() {
        let _ = ripple_carry_adder(AdderConfig { operand_bits: 0 });
    }
}
