//! Benchmark workload generators for the LSQCA evaluation.
//!
//! The paper evaluates LSQCA on seven programs (Sec. III-B and VI-B):
//!
//! | benchmark | logical qubits | source in the paper |
//! |---|---|---|
//! | `adder` | 433 | QASMBench quantum adder |
//! | `bv` | 280 | Bernstein–Vazirani |
//! | `cat` | 260 | cat-state preparation |
//! | `ghz` | 127 | GHZ-state preparation |
//! | `multiplier` | 400 | QASMBench integer multiplier |
//! | `square_root` | 60 | square root via amplitude amplification |
//! | `select` | 143 (11×11 Heisenberg) | SELECT for 2-D Heisenberg models |
//!
//! The original circuits are QASMBench netlists and an in-house SELECT
//! synthesizer; this crate rebuilds structurally equivalent circuits from
//! scratch (same register widths, same arithmetic/iteration structure, same
//! Toffoli/T density), which is what the density/CPI evaluation depends on.
//! Every generator is parameterized so both the paper's instance sizes and
//! smaller test instances can be produced.
//!
//! # Example
//!
//! ```
//! use lsqca_workloads::{Benchmark, paper_qubit_count};
//!
//! let circuit = Benchmark::Ghz.paper_instance();
//! assert_eq!(circuit.num_qubits(), paper_qubit_count(Benchmark::Ghz));
//! assert_eq!(circuit.num_qubits(), 127);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod bv;
pub mod cache;
pub mod cat;
pub mod compiled;
pub mod ghz;
pub mod multiplier;
pub mod registry;
pub mod select;
pub mod square_root;

pub use adder::{ripple_carry_adder, AdderConfig};
pub use bv::{bernstein_vazirani, BvConfig};
pub use cache::{CacheEvent, CacheStats, InvalidationReason, WorkloadCache};
pub use cat::{cat_state, CatConfig};
pub use compiled::{compile_count, ArtifactError, CompiledWorkload, ARTIFACT_SCHEMA};
pub use ghz::{ghz_state, GhzConfig};
pub use multiplier::{shift_add_multiplier, MultiplierConfig};
pub use registry::{paper_qubit_count, paper_suite, Benchmark, BenchmarkConfig, InstanceSize};
pub use select::{select_heisenberg, HeisenbergModel, SelectConfig};
pub use square_root::{square_root_search, SquareRootConfig};
