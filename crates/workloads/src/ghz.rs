//! GHZ-state preparation benchmark.
//!
//! The QASMBench `ghz` circuit prepares `(|0…0⟩ + |1…1⟩)/√2` with one Hadamard
//! followed by a chain of CNOTs. It is purely Clifford (no magic states) and has
//! almost no instruction-level parallelism, which is exactly why the paper uses
//! it as a stress case where load/store latency cannot hide behind the
//! magic-state bottleneck.

use lsqca_circuit::register::RegisterRole;
use lsqca_circuit::Circuit;

/// Emission-logic revision of this generator, part of the workload-cache
/// key (see `lsqca_workloads::cache`). Bump it whenever the circuit emitted
/// for an *unchanged* configuration changes, so stale cached artifacts are
/// invalidated; a config-field change already changes the key by itself.
pub const REVISION: u32 = 1;

/// Parameters of the GHZ benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhzConfig {
    /// Number of qubits in the GHZ state.
    pub qubits: u32,
}

impl GhzConfig {
    /// The paper's instance (127 qubits).
    pub const fn paper() -> Self {
        GhzConfig { qubits: 127 }
    }
}

impl Default for GhzConfig {
    fn default() -> Self {
        GhzConfig::paper()
    }
}

/// Generates the GHZ-state preparation circuit: `H` on qubit 0 followed by a
/// CNOT chain `0→1→2→…`, then a Z measurement of every qubit.
///
/// # Panics
///
/// Panics if `config.qubits` is zero.
pub fn ghz_state(config: GhzConfig) -> Circuit {
    assert!(config.qubits > 0, "ghz needs at least one qubit");
    let mut circuit = Circuit::with_registers(format!("ghz_n{}", config.qubits));
    let data = circuit.add_register("data", RegisterRole::Operand, config.qubits);
    for q in data.clone() {
        circuit.prep_z(q);
    }
    circuit.h(data.start);
    for q in data.start + 1..data.end {
        circuit.cnot(q - 1, q);
    }
    for q in data {
        circuit.measure_z(q);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_127_qubits() {
        let c = ghz_state(GhzConfig::paper());
        assert_eq!(c.num_qubits(), 127);
        assert_eq!(c.name(), "ghz_n127");
    }

    #[test]
    fn structure_is_hadamard_plus_cnot_chain() {
        let c = ghz_state(GhzConfig { qubits: 5 });
        let stats = c.stats();
        assert_eq!(stats.two_qubit_gates, 4);
        assert_eq!(stats.t_count, 0);
        assert_eq!(stats.measurements, 5);
        assert_eq!(stats.preparations, 5);
        assert_eq!(stats.per_gate["h"], 1);
        assert!(c.is_lowered());
    }

    #[test]
    fn chain_serializes_the_dag() {
        let c = ghz_state(GhzConfig { qubits: 6 });
        let dag = lsqca_circuit::CircuitDag::new(&c);
        // preps (1 layer) + H + 5 CNOTs chained + final measurement layer.
        assert!(dag.depth() >= 7);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_panics() {
        let _ = ghz_state(GhzConfig { qubits: 0 });
    }
}
